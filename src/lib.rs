//! Umbrella package for the OCSP Must-Staple readiness study.
//!
//! This package exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual library
//! surface lives in the workspace crates; the most convenient entry point
//! is the [`mustaple`] crate, which re-exports everything.

#![forbid(unsafe_code)]

pub use mustaple as core;
