//! Streaming ≡ batch: the accumulator-fold contract (DESIGN.md §13).
//!
//! Every incremental accumulator added for bounded-memory scale must
//! reproduce its retained-vector counterpart *exactly* — quantiles to
//! the bit, folds to the byte — under arbitrary inputs, arbitrary
//! chunk splits, and the infinite-mass CDF cases pinned in the Cdf
//! quantile contract. If any property here fails, the `--streaming`
//! mode is silently changing artifacts.

use analysis::{Cdf, StreamingCdf, TimeSeries, Welford};
use asn1::Time;
use ecosystem::{AlexaList, AlexaStream, Corpus, CorpusStream};
use proptest::prelude::*;

/// Split `samples` into `chunks` contiguous pieces (some possibly
/// empty), fold each into its own accumulator, and merge in order —
/// the exact shape of the scanner's per-chunk folds.
fn chunked_streaming_cdf(samples: &[f64], chunks: usize) -> StreamingCdf {
    let size = samples.len().div_ceil(chunks.max(1)).max(1);
    let mut merged = StreamingCdf::new();
    for chunk in samples.chunks(size) {
        let mut partial = StreamingCdf::new();
        for &s in chunk {
            partial.add(s);
        }
        merged.merge(&partial);
    }
    merged
}

proptest! {
    #[test]
    fn streaming_cdf_quantiles_match_batch_bit_for_bit(
        samples in proptest::collection::vec(-1e9f64..1e9, 0..200),
        infinite in 0usize..4,
        chunks in 1usize..6,
    ) {
        let mut batch = Cdf::from_samples(samples.iter().copied());
        let mut streaming = chunked_streaming_cdf(&samples, chunks);
        for _ in 0..infinite {
            batch.add_infinite();
            streaming.add_infinite();
        }
        prop_assert_eq!(batch.len(), streaming.len());
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            prop_assert_eq!(
                batch.quantile(q),
                streaming.quantile(q),
                "quantile({}) diverged", q
            );
        }
        prop_assert_eq!(batch.curve(), streaming.curve());
        for &x in &samples {
            prop_assert_eq!(
                batch.fraction_at_most(x),
                streaming.fraction_at_most(x),
                "fraction_at_most({}) diverged", x
            );
        }
    }

    #[test]
    fn welford_matches_two_pass_statistics(
        samples in proptest::collection::vec(-1e6f64..1e6, 2..200),
    ) {
        let w = Welford::from_samples(samples.iter().copied());
        let mean = analysis::stats::mean(&samples);
        let stddev = analysis::stats::sample_stddev(&samples);
        // Welford is the *more* numerically stable of the two; agree to
        // a tight relative tolerance.
        let scale = samples.iter().fold(1.0f64, |m, s| m.max(s.abs()));
        prop_assert!(
            (w.mean() - mean).abs() <= 1e-9 * scale,
            "mean {} vs two-pass {}", w.mean(), mean
        );
        prop_assert!(
            (w.sample_stddev() - stddev).abs() <= 1e-6 * scale.max(stddev),
            "stddev {} vs two-pass {}", w.sample_stddev(), stddev
        );
    }

    #[test]
    fn welford_chunked_merge_equals_one_pass(
        samples in proptest::collection::vec(-1e6f64..1e6, 1..200),
        chunks in 1usize..6,
    ) {
        let whole = Welford::from_samples(samples.iter().copied());
        let size = samples.len().div_ceil(chunks).max(1);
        let mut merged = Welford::new();
        for chunk in samples.chunks(size) {
            merged.merge(&Welford::from_samples(chunk.iter().copied()));
        }
        prop_assert_eq!(whole.count(), merged.count());
        let scale = samples.iter().fold(1.0f64, |m, s| m.max(s.abs()));
        prop_assert!((whole.mean() - merged.mean()).abs() <= 1e-9 * scale);
        prop_assert!(
            (whole.sample_stddev() - merged.sample_stddev()).abs()
                <= 1e-6 * scale.max(whole.sample_stddev())
        );
    }

    #[test]
    fn time_series_chunked_folds_match_batch(
        observations in proptest::collection::vec((0i64..5_000, any::<bool>()), 0..200),
        chunks in 1usize..6,
    ) {
        let t0 = Time::from_civil(2018, 4, 25, 0, 0, 0);
        let mut batch = TimeSeries::new(3_600);
        for &(offset, hit) in &observations {
            batch.record_bool(t0 + offset * 60, hit);
        }
        let size = observations.len().div_ceil(chunks).max(1);
        let mut merged = TimeSeries::new(3_600);
        for chunk in observations.chunks(size) {
            let mut partial = TimeSeries::new(3_600);
            for &(offset, hit) in chunk {
                partial.record_bool(t0 + offset * 60, hit);
            }
            merged.merge(&partial);
        }
        prop_assert_eq!(batch.bin_count(), merged.bin_count());
        prop_assert_eq!(batch.fractions(), merged.fractions());
        prop_assert_eq!(batch.counts(), merged.counts());
        prop_assert_eq!(batch.overall_fraction(), merged.overall_fraction());
    }

    #[test]
    fn corpus_stream_fold_matches_batch_for_any_seed(
        seed in 0u64..1_000,
        size in 0usize..2_000,
    ) {
        let batch = Corpus::generate(seed, size);
        let mut stream = CorpusStream::new(seed, size);
        let streamed: Vec<_> = stream.by_ref().collect();
        prop_assert_eq!(batch.certs(), streamed.as_slice());
        let fold = stream.into_fold();
        prop_assert_eq!(&batch.stats(), fold.stats());
        prop_assert_eq!(batch.must_staple_by_issuer(), fold.must_staple_by_issuer());
    }

    #[test]
    fn alexa_stream_matches_batch_for_any_seed(
        seed in 0u64..1_000,
        size in 0usize..2_000,
    ) {
        let batch = AlexaList::generate(seed, size);
        let streamed: Vec<_> = AlexaStream::new(seed, size).collect();
        prop_assert_eq!(batch.sites().len(), streamed.len());
        for (a, b) in batch.sites().iter().zip(&streamed) {
            prop_assert_eq!(a.rank, b.rank);
            prop_assert_eq!(&a.domain, &b.domain);
            prop_assert_eq!(
                (a.https, a.ocsp, a.staples, a.must_staple),
                (b.https, b.ocsp, b.staples, b.must_staple)
            );
        }
    }
}

/// The infinite-mass quantile cases pinned when the Cdf contract was
/// fixed: quantiles landing inside the infinite mass are `None`, ones
/// on the finite side answer exactly.
#[test]
fn pinned_infinite_mass_cases_match_batch() {
    let mut batch = Cdf::from_samples([1.0, 2.0, 3.0]);
    batch.add_infinite();
    let mut streaming = StreamingCdf::from_samples([1.0, 2.0, 3.0]);
    streaming.add_infinite();

    for (q, expected) in [
        (0.0, Some(1.0)),
        (0.25, Some(1.0)),
        (0.5, Some(2.0)),
        (0.75, Some(3.0)),
        (0.76, None),
        (1.0, None),
    ] {
        assert_eq!(batch.quantile(q), expected, "batch quantile({q})");
        assert_eq!(streaming.quantile(q), expected, "streaming quantile({q})");
    }

    // All-infinite: every positive quantile is unbounded.
    let mut all_inf = StreamingCdf::new();
    all_inf.add_infinite();
    let mut batch_inf = Cdf::new();
    batch_inf.add_infinite();
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(batch_inf.quantile(q), all_inf.quantile(q));
    }
}

/// `+∞` routes to the infinite mass through `add` on both types.
#[test]
fn positive_infinity_routes_to_infinite_mass() {
    let mut streaming = StreamingCdf::new();
    streaming.add(1.0);
    streaming.add(f64::INFINITY);
    let mut batch = Cdf::new();
    batch.add(1.0);
    batch.add(f64::INFINITY);
    assert_eq!(streaming.len(), 2);
    assert_eq!(streaming.infinite_count(), 1);
    assert_eq!(batch.quantile(0.5), streaming.quantile(0.5));
    assert_eq!(batch.quantile(1.0), streaming.quantile(1.0));
}
