//! Adversarial scenarios: everything an attacker might try against the
//! revocation pipeline, and the exact layer that stops each attempt.

use mustaple::asn1::Time;
use mustaple::ocsp::{
    validate_response, CertId, CertStatus, OcspRequest, OcspResponse, Responder, ResponderProfile,
    ResponseError, SingleResponse,
};
use mustaple::pki::{CertificateAuthority, IssueParams, RevocationReason};
use rand::{rngs::StdRng, SeedableRng};
use simcrypto::KeyPair;

fn t0() -> Time {
    Time::from_civil(2018, 7, 15, 0, 0, 0)
}

struct Env {
    ca: CertificateAuthority,
    id: CertId,
}

fn env(seed: u64) -> Env {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ca = CertificateAuthority::new_root(&mut rng, "Victim", "Victim Root", "v.test", t0());
    let leaf = ca.issue(&mut rng, &IssueParams::new("victim.example", t0()));
    let id = CertId::for_certificate(&leaf, ca.certificate());
    Env { ca, id }
}

/// An attacker who runs their own CA cannot mint a Good response for a
/// victim CA's certificate: the signature doesn't chain.
#[test]
fn forged_response_from_foreign_ca_rejected() {
    let e = env(1);
    let mut rng = StdRng::seed_from_u64(99);
    let attacker_key = KeyPair::generate(&mut rng, 384);
    let forged = OcspResponse::successful(
        &attacker_key,
        t0(),
        vec![SingleResponse {
            cert_id: e.id.clone(),
            status: CertStatus::Good,
            this_update: t0() - 60,
            next_update: Some(t0() + 7 * 86_400),
        }],
        vec![],
    );
    let err = validate_response(
        &forged.to_der(),
        &e.id,
        e.ca.certificate(),
        t0(),
        Default::default(),
    )
    .unwrap_err();
    assert_eq!(err, ResponseError::SignatureInvalid);
}

/// A certificate the victim CA issued *without* the OCSP-signing EKU
/// cannot act as a delegated responder, even though its signature chains.
#[test]
fn non_delegated_certificate_cannot_sign_responses() {
    let mut e = env(2);
    let mut rng = StdRng::seed_from_u64(100);
    // A perfectly valid leaf certificate from the victim CA — but it is
    // a TLS cert, not an OCSP signer.
    let mallory_params = IssueParams::new("mallory.example", t0());
    let mallory_cert = e.ca.issue(&mut rng, &mallory_params);
    // Mallory cannot use the CA's leaf key (she doesn't have it), so this
    // models the strongest variant: she somehow controls a key whose cert
    // chains but lacks the EKU. Build that situation with a delegated
    // signer whose EKU we do NOT include by using her own keypair and a
    // fabricated response.
    let mallory_key = KeyPair::generate(&mut rng, 384);
    let response = OcspResponse::successful(
        &mallory_key,
        t0(),
        vec![SingleResponse {
            cert_id: e.id.clone(),
            status: CertStatus::Good,
            this_update: t0() - 60,
            next_update: Some(t0() + 7 * 86_400),
        }],
        vec![mallory_cert], // chains to the CA, but no id-kp-OCSPSigning
    );
    let err = validate_response(
        &response.to_der(),
        &e.id,
        e.ca.certificate(),
        t0(),
        Default::default(),
    )
    .unwrap_err();
    // The attached certificate did not sign the response (different
    // key), so this surfaces as a signature failure.
    assert_eq!(err, ResponseError::SignatureInvalid);
}

/// Even when the attacker controls a key whose certificate the CA
/// signed, the response is rejected unless that certificate carries the
/// OCSP-signing EKU.
#[test]
fn chaining_signer_without_eku_rejected() {
    let e = env(3);
    let mut rng = StdRng::seed_from_u64(101);
    // Build a CA we control to mint a *chained but non-delegated* pair:
    // reuse the victim CA object to issue a leaf, then sign the response
    // with the CA's own *leaf* key (shared leaf key model) — the cert
    // chains and the signature matches that cert's key, but there is no
    // EKU.
    let mut ca = e.ca.clone();
    let impostor = ca.issue(&mut rng, &IssueParams::new("impostor.example", t0()));
    // The CA's shared leaf key signed `impostor`'s public key — in our
    // model the CA engine holds that key, an attacker does not. Simulate
    // the worst case anyway by constructing the response through the
    // engine-internal key is not exposed; instead verify the validator's
    // EKU check directly: a response signed by a key whose certificate
    // chains but has no OCSP EKU must be UntrustedDelegate.
    let signer_key = KeyPair::generate(&mut rng, 384);
    let mut tbs = impostor.tbs().clone();
    tbs.public_key = signer_key.public().clone();
    let resigned = mustaple::pki::Certificate::assemble(
        tbs.clone(),
        // Forged signature bytes: correct length, wrong everything.
        vec![0x42; e.ca.certificate().public_key().modulus_len()],
    );
    let response = OcspResponse::successful(
        &signer_key,
        t0(),
        vec![SingleResponse {
            cert_id: e.id.clone(),
            status: CertStatus::Good,
            this_update: t0() - 60,
            next_update: Some(t0() + 7 * 86_400),
        }],
        vec![resigned],
    );
    let err = validate_response(
        &response.to_der(),
        &e.id,
        e.ca.certificate(),
        t0(),
        Default::default(),
    )
    .unwrap_err();
    // The signer's certificate lacks the EKU → UntrustedDelegate.
    assert_eq!(err, ResponseError::UntrustedDelegate);
}

/// Replaying a stale (pre-revocation) Good response works only inside
/// its validity window — the fundamental Must-Staple exposure bound.
#[test]
fn stale_good_response_replay_is_time_bounded() {
    let mut e = env(4);
    let mut responder = Responder::new(
        "u",
        ResponderProfile::healthy().margin(0).validity(3 * 86_400),
    );
    let captured = responder.handle(&e.ca, &OcspRequest::single(e.id.clone()), t0());

    // The CA revokes one hour later; the attacker replays the capture.
    let serial = e.id.serial.clone();
    e.ca.revoke(&serial, t0() + 3_600, Some(RevocationReason::KeyCompromise));

    // Within the window: the replay still validates (says Good) — this
    // is the exposure the paper accepts in exchange for hard-fail.
    let inside = validate_response(
        &captured,
        &e.id,
        e.ca.certificate(),
        t0() + 86_400,
        Default::default(),
    )
    .unwrap();
    assert_eq!(inside.status, CertStatus::Good);

    // Past nextUpdate: the replay dies.
    let err = validate_response(
        &captured,
        &e.id,
        e.ca.certificate(),
        t0() + 3 * 86_400 + 1,
        Default::default(),
    )
    .unwrap_err();
    assert!(matches!(err, ResponseError::Expired { .. }));

    // And a fresh fetch now reports Revoked.
    let fresh = responder.handle(&e.ca, &OcspRequest::single(e.id.clone()), t0() + 2 * 3_600);
    let v = validate_response(
        &fresh,
        &e.id,
        e.ca.certificate(),
        t0() + 2 * 3_600,
        Default::default(),
    )
    .unwrap();
    assert!(matches!(v.status, CertStatus::Revoked { .. }));
}

/// A response for a *different* serial cannot be repurposed: the
/// validator matches serials exactly.
#[test]
fn response_for_sibling_certificate_rejected() {
    let mut e = env(5);
    let mut rng = StdRng::seed_from_u64(102);
    let sibling =
        e.ca.issue(&mut rng, &IssueParams::new("sibling.example", t0()));
    let sibling_id = CertId::for_certificate(&sibling, e.ca.certificate());
    let mut responder = Responder::new("u", ResponderProfile::healthy());
    let sibling_response = responder.handle(&e.ca, &OcspRequest::single(sibling_id), t0());
    let err = validate_response(
        &sibling_response,
        &e.id,
        e.ca.certificate(),
        t0(),
        Default::default(),
    )
    .unwrap_err();
    assert_eq!(err, ResponseError::SerialMismatch);
}

/// Unknown status is not a free pass: the validator surfaces it, and a
/// careful client can treat Unknown-for-a-known-cert as suspicious
/// (Table 1's gsalphasha2g2 would otherwise hide 5,375 revocations).
#[test]
fn unknown_for_revoked_certificate_is_visible() {
    let mut e = env(6);
    let serial = e.id.serial.clone();
    e.ca.revoke(&serial, t0(), None);
    e.ca.mark_ocsp_unknown(&serial); // the Table 1 database-loss fault
    let mut responder = Responder::new("u", ResponderProfile::healthy());
    let body = responder.handle(&e.ca, &OcspRequest::single(e.id.clone()), t0() + 60);
    let v = validate_response(
        &body,
        &e.id,
        e.ca.certificate(),
        t0() + 60,
        Default::default(),
    )
    .unwrap();
    assert_eq!(v.status, CertStatus::Unknown);
    // Meanwhile the CRL still tells the truth.
    let crl = e.ca.generate_crl(t0() + 60, None);
    assert!(crl.is_revoked(&serial));
}
