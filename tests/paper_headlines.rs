//! Shape checks against the paper's headline numbers, at a mid scale
//! large enough for the calibrated marginals to show through.
//!
//! These assert *shapes* (who wins, rough magnitudes, where crossovers
//! fall), not exact values — the corpus is scaled ~1:1000 and the clock
//! is simulated.

use mustaple::ecosystem::{Corpus, EcosystemConfig, LiveEcosystem};
use mustaple::netsim::Region;
use mustaple::scanner::consistency::ConsistencyStudy;
use mustaple::scanner::hourly::HourlyCampaign;
use mustaple::Study;

fn mid_config() -> EcosystemConfig {
    let mut config = EcosystemConfig::tiny();
    config.responders = 92; // all named operators present, plus fillers
    config.certs_per_responder = 2;
    config.revoked_pool = 600;
    config
}

#[test]
fn sec4_shapes_hold_at_scale() {
    let corpus = Corpus::generate(99, 300_000);
    let stats = corpus.stats();
    // 95.4% OCSP.
    assert!(
        (stats.ocsp_fraction() - 0.954).abs() < 0.01,
        "{}",
        stats.ocsp_fraction()
    );
    // Must-Staple well under 0.1%.
    assert!(stats.must_staple_fraction() < 0.001);
    assert!(stats.must_staple > 0, "but not zero at 300k certs");
    // Let's Encrypt dominates Must-Staple issuance.
    assert!(stats.lets_encrypt_must_staple_share() > 0.85);
    // Multi-responder certificates are vanishingly rare but present.
    assert!(stats.multi_responder < stats.total / 1_000);
}

#[test]
fn availability_shapes_hold() {
    let eco = LiveEcosystem::generate(mid_config());
    let dataset = HourlyCampaign::new(&eco).run();

    // Small overall failure rate, São Paulo worse than Virginia (the
    // paper: 5.7% vs 2.2% — ours differs in level but must match order).
    let overall = dataset.overall_failure_rate();
    assert!(overall > 0.001 && overall < 0.15, "overall {overall}");
    let sp = dataset.region_failure_rate(Region::SaoPaulo);
    let va = dataset.region_failure_rate(Region::Virginia);
    assert!(sp > va, "São Paulo {sp} must exceed Virginia {va}");

    // The two IdenTrust-style responders never answer anywhere.
    assert_eq!(dataset.responders_never_reachable(), 2);
    // Some responders are dead from a strict subset of vantage points.
    assert!(dataset.responders_partially_dead() >= 1);

    // A sizable minority of responders had at least one outage.
    let transient = dataset.transient_outage_fraction();
    assert!((0.15..0.75).contains(&transient), "transient {transient}");
}

#[test]
fn quality_shapes_hold() {
    let eco = LiveEcosystem::generate(mid_config());
    let dataset = HourlyCampaign::new(&eco).run();

    // Figure 6: most responders send one certificate; a tail sends more,
    // with the cpc.gov.ae-style responder at 4+.
    let mut certs = dataset.cdf_cert_counts();
    assert!(
        certs.fraction_at_most(0.51) > 0.6,
        "most responders send <= ~0 extra certs"
    );
    assert!(certs.max().unwrap() >= 4.0, "the 4-chain responder exists");

    // Figure 7: overwhelmingly one serial, with a 20-serial tail.
    let mut serials = dataset.cdf_serial_counts();
    assert!(serials.fraction_at_most(1.01) > 0.85);
    assert!(serials.max().unwrap() >= 19.0);

    // Figure 8: validity median in the days; some blank (infinite) mass;
    // a >1-month tail.
    let mut validity = dataset.cdf_validity();
    let median = validity.median().unwrap();
    assert!(
        (86_400.0..15.0 * 86_400.0).contains(&median),
        "median validity {median}"
    );
    assert!(validity.infinite_count() > 0, "blank nextUpdate mass");

    // Figure 9: a nonzero share of responders at (or below) zero margin.
    let zero = dataset.zero_margin_fraction();
    assert!((0.05..0.5).contains(&zero), "zero-margin share {zero}");

    // §5.4 freshness: both generation modes, and at least one
    // non-overlapping responder (hinet/cnnic).
    let freshness = dataset.freshness();
    assert!(freshness.on_demand > 0);
    assert!(freshness.pre_generated > 0);
    assert!(
        !freshness.non_overlapping.is_empty(),
        "hinet/cnnic-style responders must be flagged"
    );
    assert!(
        freshness
            .non_overlapping
            .iter()
            .any(|url| url.contains("hinet") || url.contains("cnnic")),
        "{:?}",
        freshness.non_overlapping
    );
    // Footnote 17: the CNNIC multi-instance skew shows up as producedAt
    // regressions.
    assert!(
        freshness
            .produced_at_regressions
            .iter()
            .any(|url| url.contains("cnnic")),
        "{:?}",
        freshness.produced_at_regressions
    );
}

#[test]
fn consistency_shapes_hold() {
    let eco = LiveEcosystem::generate(mid_config());
    let at = eco.config.campaign_start + 6 * 86_400;
    let summary = ConsistencyStudy::run(&eco, at, Region::Virginia);

    // Collection rate near-complete.
    assert!(summary.responses_collected as f64 / summary.requests as f64 > 0.9);

    // Table 1: a handful of discrepant responders, including both shapes.
    assert!(
        (1..=12).contains(&summary.table1.len()),
        "{} discrepant responders",
        summary.table1.len()
    );
    assert!(summary.table1.iter().any(|r| r.good > 0));
    assert!(summary
        .table1
        .iter()
        .any(|r| r.unknown > 0 && r.revoked == 0));

    // Figure 10: time differences are rare; negatives exist; msocsp-like
    // lags of >= 7h exist.
    let diff_fraction = summary.time_diff_fraction();
    assert!(diff_fraction < 0.25, "diff fraction {diff_fraction}");
    assert!(summary
        .time_diffs
        .max()
        .is_some_and(|d| d >= (7 * 3_600) as f64));

    // Reason codes: discrepancies exist and all are CRL-only.
    assert!(summary.reason_crl_only > 0);
    assert_eq!(summary.reason_other_mismatch, 0);
}

#[test]
fn full_study_conclusion_matches_the_paper() {
    let results = Study::new(mid_config()).run();
    let report = results.readiness_report();
    assert!(!report.web_is_ready(), "2018's web must not be ready");
    // Browsers: 4/16; servers: Apache+Nginx fail at least one experiment.
    assert_eq!(
        results
            .browsers
            .iter()
            .filter(|r| r.respected_must_staple)
            .count(),
        4
    );
    let apache = results
        .table3
        .iter()
        .find(|r| r.server == mustaple::webserver::ServerKind::Apache)
        .unwrap();
    assert!(!apache.respects_next_update && !apache.retains_on_error);
    let nginx = results
        .table3
        .iter()
        .find(|r| r.server == mustaple::webserver::ServerKind::Nginx)
        .unwrap();
    assert!(nginx.respects_next_update && nginx.retains_on_error);
}
