//! The ensemble determinism gate: multi-seed runs must produce
//! byte-identical companions, manifests, and expositions for every
//! worker count, and replica 0 must reproduce a standalone study
//! exactly.
//!
//! This extends the single-run contract of `tests/determinism.rs` one
//! level up: replicas are scheduled as top-level work units on the same
//! executor, so the scheduling of *whole studies* across workers must
//! be as unobservable as the scheduling of shards within one.

use ecosystem::EcosystemConfig;
use mustaple::Study;
use mustaple_bench::build;
use mustaple_bench::ensemble::{seeds_for, Ensemble};

const ARTIFACTS: [&str; 4] = ["fig2", "fig5", "fig8", "telemetry"];

#[test]
fn ensemble_output_is_invariant_to_replica_scheduling() {
    let seeds = seeds_for(EcosystemConfig::tiny().seed, 3);
    let serial = Ensemble::run(&EcosystemConfig::tiny().with_parallelism(1), &seeds);
    let parallel = Ensemble::run(&EcosystemConfig::tiny().with_parallelism(4), &seeds);

    assert_eq!(serial.seeds(), parallel.seeds());
    assert_eq!(serial.seeds_manifest(), parallel.seeds_manifest());
    for name in ARTIFACTS {
        let a = serial.companion(name).expect("serial companion");
        let b = parallel.companion(name).expect("parallel companion");
        assert!(
            a.to_csv().as_bytes() == b.to_csv().as_bytes(),
            "companion `{name}.ens.csv` differs between serial and 4-worker ensembles"
        );
    }
    assert!(
        serial.to_prometheus().as_bytes() == parallel.to_prometheus().as_bytes(),
        "seeded telemetry.prom differs between serial and 4-worker ensembles"
    );
}

#[test]
fn replica_zero_reproduces_a_standalone_study_and_stats_are_sane() {
    let config = EcosystemConfig::tiny().with_parallelism(1);
    let n = 3;
    let ensemble = Ensemble::run(&config, &seeds_for(config.seed, n));

    // Replica 0 runs under the base seed itself: its artifacts are the
    // bytes a plain single-seed `figures` run would have written.
    let standalone = Study::new(config.clone()).run();
    for name in ARTIFACTS {
        let primary = build(name, ensemble.primary()).expect("primary artifact");
        let plain = build(name, &standalone).expect("standalone artifact");
        assert!(
            primary.table.to_csv().as_bytes() == plain.table.to_csv().as_bytes(),
            "primary artifact `{name}` differs from a standalone run"
        );
    }

    // Companion shape: every row summarizes all n seeds, the interval
    // contains the mean, and the envelope bounds it.
    let mut nondegenerate = 0usize;
    for name in ARTIFACTS {
        let companion = ensemble.companion(name).expect("companion");
        for row in companion.rows() {
            let metric = &row[0];
            let stat =
                |i: usize| -> f64 { row[i].parse().unwrap_or_else(|_| panic!("{metric}[{i}]")) };
            let (mean, ci_lo, ci_hi) = (stat(1), stat(2), stat(3));
            let (stddev, min, max) = (stat(5), stat(6), stat(7));
            assert_eq!(row[4], n.to_string(), "{name}/{metric}: wrong n");
            assert!(
                ci_lo <= mean && mean <= ci_hi,
                "{name}/{metric}: CI excludes mean"
            );
            assert!(
                min <= mean && mean <= max,
                "{name}/{metric}: envelope excludes mean"
            );
            assert!(stddev >= 0.0, "{name}/{metric}: negative stddev");
            if stddev > 0.0 {
                assert!(ci_hi > ci_lo, "{name}/{metric}: variance but zero-width CI");
                nondegenerate += 1;
            }
        }
    }
    assert!(
        nondegenerate > 0,
        "every companion cell is zero-variance — the ensemble measured nothing"
    );
}
