//! End-to-end integration: the full revocation lifecycle across every
//! crate — CA issuance, OCSP stapling through real web-server models,
//! TLS wire messages, and browser verdicts.

use mustaple::asn1::Time;
use mustaple::browser::{BrowserClient, NoTransport, Verdict, BROWSER_MATRIX};
use mustaple::ocsp::{CertId, OcspRequest, Responder, ResponderProfile};
use mustaple::pki::{
    validate_chain, CertificateAuthority, IssueParams, RevocationReason, RootStore,
};
use mustaple::webserver::server::SiteConfig;
use mustaple::webserver::{FetchOutcome, FnFetcher, Ideal, Nginx, StaplingServer};
use rand::{rngs::StdRng, SeedableRng};

fn t0() -> Time {
    Time::from_civil(2018, 6, 1, 0, 0, 0)
}

struct Pki {
    ca: CertificateAuthority,
    site: SiteConfig,
    cert_id: CertId,
    roots: RootStore,
}

fn pki(seed: u64, must_staple: bool) -> Pki {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ca =
        CertificateAuthority::new_root(&mut rng, "E2E CA", "E2E Root", "e2e-ca.test", t0());
    let cert = ca.issue(
        &mut rng,
        &IssueParams::new("e2e.example", t0()).must_staple(must_staple),
    );
    let cert_id = CertId::for_certificate(&cert, ca.certificate());
    let mut roots = RootStore::new("e2e");
    roots.add(ca.certificate().clone());
    let site = SiteConfig {
        chain: vec![cert, ca.certificate().clone()],
    };
    Pki {
        ca,
        site,
        cert_id,
        roots,
    }
}

fn live_fetcher(ca: &CertificateAuthority, id: &CertId, validity: i64) -> FnFetcher {
    let ca = ca.clone();
    let id = id.clone();
    FnFetcher::new(move |now| {
        let mut responder = Responder::new(
            "http://ocsp.e2e-ca.test/",
            ResponderProfile::healthy().validity(validity),
        );
        let body = responder.handle(&ca, &OcspRequest::single(id.clone()), now);
        FetchOutcome::Fetched {
            body,
            latency_ms: 30.0,
        }
    })
}

fn firefox() -> BrowserClient {
    BrowserClient::new(
        *BROWSER_MATRIX
            .iter()
            .find(|p| p.name == "Firefox 60")
            .unwrap(),
    )
}

fn chrome() -> BrowserClient {
    BrowserClient::new(
        *BROWSER_MATRIX
            .iter()
            .find(|p| p.name == "Chrome 66")
            .unwrap(),
    )
}

#[test]
fn revoked_certificate_is_caught_through_the_staple() {
    let mut p = pki(1, true);
    // Healthy lifecycle first.
    let mut server = Ideal::new(p.site.clone());
    let mut fetcher = live_fetcher(&p.ca, &p.cert_id, 7_200);
    server.tick(t0(), &mut fetcher);
    let ok = firefox().connect(
        &mut server,
        &mut fetcher,
        &mut NoTransport::new(),
        "e2e.example",
        &p.roots,
        t0() + 60,
    );
    assert!(ok.verdict.is_accepted());

    // The CA revokes the certificate; once the server refreshes its
    // staple past the old validity, every browser sees Revoked.
    let serial = p.site.chain[0].serial().clone();
    p.ca.revoke(&serial, t0() + 100, Some(RevocationReason::KeyCompromise));
    let mut fetcher = live_fetcher(&p.ca, &p.cert_id, 7_200);
    let mut server = Ideal::new(p.site.clone());
    server.tick(t0() + 10_000, &mut fetcher);
    for client in [firefox(), chrome()] {
        let outcome = client.connect(
            &mut server,
            &mut fetcher,
            &mut NoTransport::new(),
            "e2e.example",
            &p.roots,
            t0() + 10_060,
        );
        assert_eq!(
            outcome.verdict,
            Verdict::Rejected(mustaple::browser::RejectReason::CertificateRevoked),
            "{}",
            client.profile.label()
        );
    }
}

#[test]
fn soft_fail_gap_only_firefox_blocks_a_stripped_staple() {
    let p = pki(2, true);
    // Nginx with a dead responder: first client gets no staple at all.
    let mut server = Nginx::new(p.site.clone());
    let mut fetcher = mustaple::webserver::ScriptedFetcher::down();
    let ff = firefox().connect(
        &mut server,
        &mut fetcher,
        &mut NoTransport::new(),
        "e2e.example",
        &p.roots,
        t0(),
    );
    assert!(!ff.verdict.is_accepted(), "Firefox hard-fails");
    let ch = chrome().connect(
        &mut server,
        &mut fetcher,
        &mut NoTransport::new(),
        "e2e.example",
        &p.roots,
        t0() + 1,
    );
    assert!(ch.verdict.is_accepted(), "Chrome soft-fails");
}

#[test]
fn non_must_staple_certificates_never_hard_fail() {
    let p = pki(3, false);
    let mut server = Nginx::new(p.site.clone());
    let mut fetcher = mustaple::webserver::ScriptedFetcher::down();
    for profile in BROWSER_MATRIX {
        let outcome = BrowserClient::new(profile).connect(
            &mut server,
            &mut fetcher,
            &mut NoTransport::new(),
            "e2e.example",
            &p.roots,
            t0(),
        );
        assert!(
            outcome.verdict.is_accepted(),
            "{} must soft-fail a plain certificate",
            profile.label()
        );
    }
}

#[test]
fn crl_and_ocsp_agree_for_a_healthy_ca() {
    let mut p = pki(4, false);
    let serial = p.site.chain[0].serial().clone();
    p.ca.revoke(&serial, t0() + 50, Some(RevocationReason::Superseded));

    // CRL channel.
    let crl = p.ca.generate_crl(t0() + 100, Some(t0() + 100 + 7 * 86_400));
    assert!(crl.verify_signature(p.ca.certificate().public_key()));
    let entry = crl.find(&serial).expect("revoked in CRL");
    assert_eq!(entry.revocation_time, t0() + 50);
    assert_eq!(entry.reason, Some(RevocationReason::Superseded));

    // OCSP channel.
    let mut responder = Responder::new("u", ResponderProfile::healthy());
    let body = responder.handle(&p.ca, &OcspRequest::single(p.cert_id.clone()), t0() + 100);
    let validated = mustaple::ocsp::validate_response(
        &body,
        &p.cert_id,
        p.ca.certificate(),
        t0() + 100,
        Default::default(),
    )
    .unwrap();
    match validated.status {
        mustaple::ocsp::CertStatus::Revoked { time, reason } => {
            assert_eq!(time, entry.revocation_time);
            assert_eq!(reason, entry.reason);
        }
        other => panic!("expected Revoked, got {other:?}"),
    }
}

#[test]
fn full_chain_validation_spans_intermediates() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut root =
        CertificateAuthority::new_root(&mut rng, "Chain Co", "Chain Root", "chain.test", t0());
    let mut inter =
        root.issue_intermediate(&mut rng, "Chain Co", "Chain CA 1", "ca1.chain.test", t0());
    let leaf = inter.issue(&mut rng, &IssueParams::new("deep.example", t0()));
    let mut roots = RootStore::new("chain");
    roots.add(root.certificate().clone());

    let chain = vec![leaf, inter.certificate().clone()];
    validate_chain(&chain, &roots, t0() + 10, Some("deep.example")).unwrap();

    // Through the browser too.
    let site = SiteConfig { chain };
    let cert_id = CertId::for_certificate(&site.chain[0], inter.certificate());
    let mut server = Ideal::new(site);
    let mut fetcher = live_fetcher(&inter, &cert_id, 7_200);
    server.tick(t0(), &mut fetcher);
    let outcome = firefox().connect(
        &mut server,
        &mut fetcher,
        &mut NoTransport::new(),
        "deep.example",
        &roots,
        t0() + 60,
    );
    assert!(outcome.verdict.is_accepted(), "{:?}", outcome.verdict);
}

#[test]
fn expired_staple_from_nginx_clamp_is_rejected_by_firefox_on_must_staple() {
    let p = pki(6, true);
    // 2-minute validity, so the staple expires inside nginx's 5-minute
    // refresh clamp (the paper's footnote 28).
    let mut server = Nginx::new(p.site.clone());
    let mut fetcher = live_fetcher(&p.ca, &p.cert_id, 120);
    server.serve(t0(), &mut fetcher); // background fetch
                                      // At +200s the cached staple is expired and the clamp blocks refresh.
    let outcome = firefox().connect(
        &mut server,
        &mut fetcher,
        &mut NoTransport::new(),
        "e2e.example",
        &p.roots,
        t0() + 200,
    );
    assert!(
        matches!(
            outcome.verdict,
            Verdict::Rejected(mustaple::browser::RejectReason::BadStaple(_))
        ),
        "{:?}",
        outcome.verdict
    );
}
