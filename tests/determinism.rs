//! The determinism gate: the scan campaigns must produce byte-identical
//! artifacts for every worker count.
//!
//! This is the repo's contract for the sharded executor — parallelism
//! is a wall-clock knob only. The same study runs once serially
//! (`--serial` equivalent: one worker) and once on four workers, and
//! every scan-derived artifact's CSV must match byte for byte. CI runs
//! this test plus a binary-level `figures` diff.

use ecosystem::{Chunking, EcosystemConfig, Engine};
use mustaple::{Study, StudyResults};
use mustaple_bench::{build, ALL_ARTIFACTS};

fn run_study(workers: usize) -> StudyResults {
    Study::new(EcosystemConfig::tiny().with_parallelism(workers)).run()
}

fn run_study_on(workers: usize, engine: Engine) -> StudyResults {
    Study::new(
        EcosystemConfig::tiny()
            .with_parallelism(workers)
            .with_engine(engine),
    )
    .run()
}

#[test]
fn serial_and_parallel_artifacts_are_byte_identical() {
    let serial = run_study(1);
    let parallel = run_study(4);

    for name in ALL_ARTIFACTS
        .iter()
        .chain(["freshness", "recommendations", "telemetry"].iter())
    {
        let a = build(name, &serial).unwrap_or_else(|| panic!("missing artifact {name}"));
        let b = build(name, &parallel).unwrap_or_else(|| panic!("missing artifact {name}"));
        let csv_a = a.table.to_csv();
        let csv_b = b.table.to_csv();
        assert!(
            csv_a.as_bytes() == csv_b.as_bytes(),
            "artifact `{name}` differs between serial and 4-worker runs:\n\
             --- serial ---\n{csv_a}\n--- parallel ---\n{csv_b}"
        );
    }

    // The merged telemetry registries themselves must agree — both as
    // values (counters + histograms; wall-clock spans are excluded from
    // equality) and as the bytes `figures --telemetry` writes.
    assert_eq!(
        serial.telemetry, parallel.telemetry,
        "telemetry registries diverged"
    );
    assert!(
        serial.telemetry.to_csv().as_bytes() == parallel.telemetry.to_csv().as_bytes(),
        "telemetry.csv differs between serial and 4-worker runs"
    );

    // The readiness verdict is derived from everything above; it must
    // agree too.
    assert_eq!(
        serial.readiness_report().render(),
        parallel.readiness_report().render(),
        "readiness reports diverged"
    );

    // The exported telemetry surface — the Prometheus exposition and the
    // simulated-clock span tree — is part of the same contract: the
    // bytes `figures --telemetry` writes to `telemetry.prom` and
    // `trace.jsonl` must not depend on the worker count.
    let two = run_study(2);
    for (workers, run) in [(2usize, &two), (4, &parallel)] {
        assert!(
            serial.telemetry.to_prometheus().as_bytes() == run.telemetry.to_prometheus().as_bytes(),
            "telemetry.prom differs between serial and {workers}-worker runs"
        );
        assert!(
            serial.trace.to_jsonl().as_bytes() == run.trace.to_jsonl().as_bytes(),
            "trace.jsonl differs between serial and {workers}-worker runs"
        );
        assert!(
            serial.events.to_jsonl().as_bytes() == run.events.to_jsonl().as_bytes(),
            "events.jsonl differs between serial and {workers}-worker runs"
        );
    }
    // And the exposition must survive its own parser unchanged, so
    // `teldiff` sees exactly what was measured.
    let parsed = telemetry::prom::Exposition::parse(&serial.telemetry.to_prometheus())
        .expect("exposition round-trip");
    assert_eq!(parsed.render(), serial.telemetry.to_prometheus());
}

#[test]
fn reactor_engine_artifacts_are_byte_identical_to_threads() {
    // The engine axis of the same contract (DESIGN.md §12): the
    // simulated-time reactor must reproduce the threads engine's whole
    // artifact surface byte for byte, at every worker count.
    let threads = run_study_on(1, Engine::Threads);
    for workers in [1usize, 2, 4] {
        let reactor = run_study_on(workers, Engine::Reactor);
        for name in ALL_ARTIFACTS
            .iter()
            .chain(["freshness", "recommendations", "telemetry"].iter())
        {
            let a = build(name, &threads).unwrap_or_else(|| panic!("missing artifact {name}"));
            let b = build(name, &reactor).unwrap_or_else(|| panic!("missing artifact {name}"));
            assert!(
                a.table.to_csv().as_bytes() == b.table.to_csv().as_bytes(),
                "artifact `{name}` differs between threads and {workers}-worker reactor runs"
            );
        }
        assert_eq!(
            threads.telemetry, reactor.telemetry,
            "telemetry diverged at {workers} reactor workers"
        );
        assert!(
            threads.telemetry.to_prometheus().as_bytes()
                == reactor.telemetry.to_prometheus().as_bytes(),
            "telemetry.prom differs between threads and {workers}-worker reactor runs"
        );
        assert!(
            threads.trace.to_jsonl().as_bytes() == reactor.trace.to_jsonl().as_bytes(),
            "trace.jsonl differs between threads and {workers}-worker reactor runs"
        );
        assert!(
            threads.events.to_jsonl().as_bytes() == reactor.events.to_jsonl().as_bytes(),
            "events.jsonl differs between threads and {workers}-worker reactor runs"
        );
        assert_eq!(
            threads.readiness_report().render(),
            reactor.readiness_report().render(),
            "readiness reports diverged at {workers} reactor workers"
        );
    }
}

#[test]
fn event_bus_is_byte_identical_across_the_whole_split_matrix() {
    // The event bus joins trace.jsonl under the determinism contract:
    // health transitions, outages, rollovers, and revocation events
    // must render the same bytes for every worker count × engine ×
    // chunking, and the health-state machine's exported counters must
    // agree with them.
    let reference = Study::new(
        EcosystemConfig::tiny()
            .with_parallelism(1)
            .with_engine(Engine::Threads)
            .with_chunking(Chunking::PerResponder),
    )
    .run();
    let baseline = reference.events.to_jsonl();
    assert!(!baseline.is_empty(), "tiny scale must produce events");

    // The artifact honours the same strict-parse round-trip contract
    // as trace.jsonl.
    let parsed = mustaple::opsmon::EventLog::parse_jsonl(&baseline).expect("events round-trip");
    assert_eq!(parsed.to_jsonl(), baseline);

    for engine in [Engine::Threads, Engine::Reactor] {
        for chunking in [Chunking::PerResponder, Chunking::TimeSliced] {
            for workers in [1usize, 4] {
                let run = Study::new(
                    EcosystemConfig::tiny()
                        .with_parallelism(workers)
                        .with_engine(engine)
                        .with_chunking(chunking),
                )
                .run();
                assert!(
                    run.events.to_jsonl().as_bytes() == baseline.as_bytes(),
                    "events.jsonl differs at {workers} workers / {engine:?} / {chunking:?}"
                );
                assert_eq!(
                    run.hourly.health, reference.hourly.health,
                    "hourly health report differs at {workers} workers / {engine:?} / {chunking:?}"
                );
                assert_eq!(
                    run.consistency.health, reference.consistency.health,
                    "consistency health differs at {workers} workers / {engine:?} / {chunking:?}"
                );
            }
        }
    }
}

#[test]
fn repeated_parallel_runs_are_byte_identical() {
    // Same seed, same worker count, two fresh runs: scheduling noise
    // must not be observable.
    let first = run_study(3);
    let second = run_study(3);
    for name in ["fig3", "fig4", "fig5", "table1", "fig10"] {
        let a = build(name, &first).expect("artifact");
        let b = build(name, &second).expect("artifact");
        assert!(
            a.table.to_csv().as_bytes() == b.table.to_csv().as_bytes(),
            "artifact `{name}` differs between two identical runs"
        );
    }
}
