//! Cross-crate wire interoperability: bytes produced by one subsystem
//! must parse in every other subsystem that consumes them, and the
//! schema-less ASN.1 diagnostics must agree with the schema-driven
//! parsers about what is and is not DER.

use mustaple::asn1::{Time, Value};
use mustaple::ocsp::{CertId, MalformMode, OcspRequest, OcspResponse, Responder, ResponderProfile};
use mustaple::pki::{Certificate, CertificateAuthority, Crl, IssueParams};
use mustaple::tls::wire::{CertificateMsg, ClientHello};
use mustaple::tls::{ServerFlight, Transcript};
use rand::{rngs::StdRng, SeedableRng};

fn t0() -> Time {
    Time::from_civil(2018, 7, 1, 0, 0, 0)
}

struct Env {
    ca: CertificateAuthority,
    leaf: Certificate,
    id: CertId,
}

fn env(seed: u64) -> Env {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ca =
        CertificateAuthority::new_root(&mut rng, "Interop", "Interop Root", "io.test", t0());
    let leaf = ca.issue(
        &mut rng,
        &IssueParams::new("interop.example", t0()).must_staple(true),
    );
    let id = CertId::for_certificate(&leaf, ca.certificate());
    Env { ca, leaf, id }
}

#[test]
fn certificate_der_is_universally_parseable() {
    let e = env(1);
    let der = e.leaf.to_der();

    // The schema-less parser sees a well-formed SEQUENCE tree.
    let value = Value::parse(&der).expect("generic DER parse");
    assert!(value.shape().starts_with("SEQ(SEQ("), "{}", value.shape());
    // And re-encodes to the identical bytes (DER canonicality).
    assert_eq!(value.encode(), der);

    // The TLS Certificate message carries it byte-identically.
    let msg = CertificateMsg {
        chain: vec![e.leaf.clone(), e.ca.certificate().clone()],
    };
    let parsed = CertificateMsg::decode(&msg.encode()).unwrap();
    assert_eq!(parsed.chain[0].to_der(), der);
}

#[test]
fn ocsp_bytes_flow_through_tls_unaltered() {
    let e = env(2);
    let mut responder = Responder::new("u", ResponderProfile::healthy());
    let body = responder.handle(&e.ca, &OcspRequest::single(e.id.clone()), t0());

    // Server staples the exact responder bytes; the client's transcript
    // recovers them bit for bit, and they validate.
    let flight = ServerFlight::new(
        vec![e.leaf.clone(), e.ca.certificate().clone()],
        Some(body.clone()),
        0.0,
    );
    let hello = ClientHello::new("interop.example", true);
    let transcript = Transcript::record(&hello, &flight);
    let recovered = transcript.stapled_ocsp().unwrap().unwrap();
    assert_eq!(recovered, body);
    mustaple::ocsp::validate_response(
        &recovered,
        &e.id,
        e.ca.certificate(),
        t0(),
        Default::default(),
    )
    .unwrap();
}

#[test]
fn generic_parser_and_schema_parser_agree_on_garbage() {
    let e = env(3);
    // Everything the fault injector emits as "malformed" must be
    // rejected by both the generic ASN.1 parser and the OCSP parser.
    for mode in [
        MalformMode::LiteralZero,
        MalformMode::Empty,
        MalformMode::JavascriptPage,
    ] {
        let mut responder = Responder::new("u", ResponderProfile::healthy().malformed(mode));
        let body = responder.handle(&e.ca, &OcspRequest::single(e.id.clone()), t0());
        assert!(Value::parse(&body).is_err(), "{mode:?} generic");
        assert!(OcspResponse::from_der(&body).is_err(), "{mode:?} schema");
    }
    // TruncatedDer may keep a structurally complete prefix invalid only
    // at the schema level; the schema parser must still reject it.
    let mut responder = Responder::new(
        "u",
        ResponderProfile::healthy().malformed(MalformMode::TruncatedDer),
    );
    let body = responder.handle(&e.ca, &OcspRequest::single(e.id.clone()), t0());
    assert!(OcspResponse::from_der(&body).is_err());
}

#[test]
fn crl_der_parses_generically_and_carries_the_extension_shape() {
    let mut e = env(4);
    e.ca.revoke(
        e.leaf.serial(),
        t0(),
        Some(mustaple::pki::RevocationReason::KeyCompromise),
    );
    let crl = e.ca.generate_crl(t0() + 10, Some(t0() + 7 * 86_400));
    let der = crl.to_der();
    let value = Value::parse(&der).unwrap();
    assert_eq!(value.encode(), der);
    let reparsed = Crl::from_der(&der).unwrap();
    assert!(reparsed.is_revoked(e.leaf.serial()));
}

#[test]
fn transcript_bytes_are_self_describing() {
    let e = env(5);
    let hello = ClientHello::new("interop.example", true);
    let flight = ServerFlight::new(vec![e.leaf.clone(), e.ca.certificate().clone()], None, 0.0);
    let transcript = Transcript::record(&hello, &flight);

    // The raw ClientHello bytes re-parse and identify the solicitation.
    let reparsed = ClientHello::decode(&transcript.client_hello).unwrap();
    assert!(reparsed.status_request);
    assert_eq!(reparsed.server_name, "interop.example");
    // The chain parses out of the raw Certificate message and still
    // carries the Must-Staple extension end to end.
    let chain = transcript.server_chain().unwrap();
    assert!(chain[0].has_must_staple());
    assert!(chain[0].verify_signature(chain[1].public_key()));
}
