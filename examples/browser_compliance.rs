//! Browser compliance: regenerate the paper's Table 2 with the §6 test
//! suite — a controlled domain, a Must-Staple certificate, and a server
//! with stapling deliberately disabled.
//!
//! ```sh
//! cargo run --example browser_compliance
//! ```

use mustaple::asn1::Time;
use mustaple::browser::testsuite::{render_table2, row_matches_paper, run_browser_suite};
use mustaple::pki::RootStore;
use mustaple::webserver::experiment::TestBench;

fn main() {
    let t0 = Time::from_civil(2018, 5, 15, 0, 0, 0);

    // The §6 methodology: "we purchase a domain name and obtain a valid
    // certificate with the Must-Staple extension... we deliberately
    // disable OCSP Stapling".
    let bench = TestBench::new(2018, t0);
    let mut roots = RootStore::new("compliance");
    roots.add(bench.site.chain.last().unwrap().clone());

    let rows = run_browser_suite(&bench, &roots, t0);
    println!("{}", render_table2(&rows));

    let respecting: Vec<_> = rows
        .iter()
        .filter(|r| r.respected_must_staple)
        .map(|r| r.profile.label())
        .collect();
    println!("browsers that hard-fail an unstapled Must-Staple certificate:");
    for name in &respecting {
        println!("  - {name}");
    }
    println!(
        "\n{} of {} tested browser/OS combinations respect OCSP Must-Staple.",
        respecting.len(),
        rows.len()
    );
    let matches = rows.iter().filter(|r| row_matches_paper(r)).count();
    println!(
        "{matches}/{} rows match the paper's Table 2 exactly.",
        rows.len()
    );
}
