//! Responder audit: run the §5 quality checks against a set of OCSP
//! responders and print a findings report — the tool the paper says CAs
//! should run against themselves ("OCSP responders ought to test the
//! validity of their responses. Test harnesses like ours can help").
//!
//! ```sh
//! cargo run --example responder_audit
//! ```

use mustaple::asn1::Time;
use mustaple::ocsp::{
    validate_response, CertId, MalformMode, OcspRequest, Responder, ResponderProfile,
    ResponseError, ValidationConfig,
};
use mustaple::pki::{CertificateAuthority, IssueParams};
use rand::{rngs::StdRng, SeedableRng};

struct Finding {
    severity: &'static str,
    message: String,
}

fn main() {
    let now = Time::from_civil(2018, 5, 1, 12, 0, 0);
    let mut rng = StdRng::seed_from_u64(2);
    let mut ca =
        CertificateAuthority::new_root(&mut rng, "Audit CA", "Audit Root", "audit-ca.test", now);
    let cert = ca.issue(&mut rng, &IssueParams::new("audit.example", now));
    let id = CertId::for_certificate(&cert, ca.certificate());

    // The audit targets: one healthy responder and a rogue's gallery of
    // real-world misbehaviors from §5.
    let subjects: Vec<(&str, ResponderProfile)> = vec![
        ("healthy.example", ResponderProfile::healthy()),
        (
            "zero-body.example (sheca-style)",
            ResponderProfile::healthy().malformed(MalformMode::LiteralZero),
        ),
        (
            "js-page.example",
            ResponderProfile::healthy().malformed(MalformMode::JavascriptPage),
        ),
        (
            "wrong-serial.example",
            ResponderProfile::healthy().wrong_serial(),
        ),
        (
            "bad-signature.example",
            ResponderProfile::healthy().corrupt_signature(),
        ),
        ("zero-margin.example", ResponderProfile::healthy().margin(0)),
        (
            "future-dated.example",
            ResponderProfile::healthy().margin(-300),
        ),
        (
            "blank-next-update.example",
            ResponderProfile::healthy().blank_next_update(),
        ),
        (
            "month-validity.example",
            ResponderProfile::healthy().validity(45 * 86_400),
        ),
        (
            "hinet-style.example",
            ResponderProfile::healthy()
                .margin(0)
                .validity(7_200)
                .pre_generated(7_200),
        ),
        (
            "bloated.example (cpc.gov.ae-style)",
            ResponderProfile::healthy()
                .superfluous_certs(4)
                .extra_serials(19),
        ),
    ];

    println!(
        "auditing {} responders against the §5 quality checks\n",
        subjects.len()
    );
    for (name, profile) in subjects {
        let non_overlapping = profile.has_non_overlapping_windows();
        let mut responder = Responder::new("http://audit/", profile);
        let body = responder.handle(&ca, &OcspRequest::single(id.clone()), now);
        let mut findings: Vec<Finding> = Vec::new();

        // Check with an accurate clock and with a slightly slow one.
        for (label, skew) in [("accurate clock", 0i64), ("30s-slow clock", -30)] {
            let result = validate_response(
                &body,
                &id,
                ca.certificate(),
                now,
                ValidationConfig {
                    clock_skew: skew,
                    require_next_update: false,
                },
            );
            match result {
                Ok(v) => {
                    if skew == 0 {
                        if v.blank_next_update {
                            findings.push(Finding {
                                severity: "WARN",
                                message: "blank nextUpdate: response never expires; \
                                          clients may cache it forever"
                                    .into(),
                            });
                        }
                        if let Some(validity) = v.validity_period() {
                            if validity > 30 * 86_400 {
                                findings.push(Finding {
                                    severity: "WARN",
                                    message: format!(
                                        "validity period {}d: revocations propagate slowly",
                                        validity / 86_400
                                    ),
                                });
                            }
                        }
                        if v.this_update_margin == 0 {
                            findings.push(Finding {
                                severity: "WARN",
                                message: "zero thisUpdate margin: slow-clocked clients will \
                                          reject this response"
                                    .into(),
                            });
                        }
                        if v.cert_count > 1 {
                            findings.push(Finding {
                                severity: "INFO",
                                message: format!(
                                    "{} certificates attached (1 expected): response bloat",
                                    v.cert_count
                                ),
                            });
                        }
                        if v.serial_count > 1 {
                            findings.push(Finding {
                                severity: "INFO",
                                message: format!(
                                    "{} serials in response (1 requested): response bloat",
                                    v.serial_count
                                ),
                            });
                        }
                    }
                }
                Err(err) => {
                    let severity = match err {
                        ResponseError::NotYetValid { .. } if skew != 0 => "WARN",
                        _ => "FAIL",
                    };
                    findings.push(Finding {
                        severity,
                        message: format!("({label}) {err}"),
                    });
                }
            }
        }
        if non_overlapping {
            findings.push(Finding {
                severity: "WARN",
                message: "validity period equals refresh interval: clients can never \
                          fetch an overlapping fresh response (hinet/cnnic hazard)"
                    .into(),
            });
        }

        println!("{name}");
        if findings.is_empty() {
            println!("  PASS: no findings");
        }
        // Dedup repeated messages from the two clock runs.
        findings.dedup_by(|a, b| a.message == b.message);
        for finding in findings {
            println!("  {}: {}", finding.severity, finding.message);
        }
        println!();
    }
}
