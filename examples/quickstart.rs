//! Quickstart: issue a Must-Staple certificate, staple a response,
//! and watch a hard-fail client accept it — then reject it when the
//! staple disappears.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mustaple::asn1::Time;
use mustaple::browser::{BrowserClient, NoTransport, BROWSER_MATRIX};
use mustaple::ocsp::{CertId, OcspRequest, Responder, ResponderProfile};
use mustaple::pki::{CertificateAuthority, IssueParams, RootStore};
use mustaple::webserver::server::SiteConfig;
use mustaple::webserver::{FetchOutcome, FnFetcher, Ideal, ScriptedFetcher, StaplingServer};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let now = Time::from_civil(2018, 6, 1, 12, 0, 0);
    let mut rng = StdRng::seed_from_u64(1);

    // 1. A CA issues a Must-Staple certificate for our site.
    let mut ca =
        CertificateAuthority::new_root(&mut rng, "Demo CA", "Demo Root", "demo-ca.test", now);
    let cert = ca.issue(
        &mut rng,
        &IssueParams::new("quickstart.example", now).must_staple(true),
    );
    println!(
        "issued {} (must-staple: {})",
        cert.subject(),
        cert.has_must_staple()
    );

    let mut roots = RootStore::new("demo");
    roots.add(ca.certificate().clone());
    let site = SiteConfig {
        chain: vec![cert.clone(), ca.certificate().clone()],
    };
    let cert_id = CertId::for_certificate(&cert, ca.certificate());

    // 2. A web server that follows the paper's §8 recommendation:
    //    prefetch, refresh ahead of expiry, retain through errors.
    let mut server = Ideal::new(site.clone());
    let ca_for_fetcher = ca.clone();
    let id = cert_id.clone();
    let mut fetcher = FnFetcher::new(move |t| {
        let mut responder =
            Responder::new("http://ocsp.demo-ca.test/", ResponderProfile::healthy());
        let body = responder.handle(&ca_for_fetcher, &OcspRequest::single(id.clone()), t);
        FetchOutcome::Fetched {
            body,
            latency_ms: 40.0,
        }
    });
    server.tick(now, &mut fetcher); // the prefetch

    // 3. Firefox (a Must-Staple-respecting client) connects.
    let firefox = BrowserClient::new(
        *BROWSER_MATRIX
            .iter()
            .find(|p| p.name == "Firefox 60")
            .unwrap(),
    );
    let outcome = firefox.connect(
        &mut server,
        &mut fetcher,
        &mut NoTransport::new(),
        "quickstart.example",
        &roots,
        now + 60,
    );
    println!(
        "with a staple:  firefox solicited staple = {}, verdict = {:?}",
        outcome.sent_status_request, outcome.verdict
    );
    assert!(outcome.verdict.is_accepted());

    // 4. The same connection against a server whose responder is down
    //    and whose cache is empty: hard failure.
    let mut cold_server = Ideal::new(site);
    let mut dead = ScriptedFetcher::down();
    let outcome = firefox.connect(
        &mut cold_server,
        &mut dead,
        &mut NoTransport::new(),
        "quickstart.example",
        &roots,
        now + 120,
    );
    println!("without staple: verdict = {:?}", outcome.verdict);
    assert!(!outcome.verdict.is_accepted());

    println!("\nquickstart complete: hard-fail works when every principal cooperates.");
}
