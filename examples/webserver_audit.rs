//! Web-server audit: regenerate the paper's Table 3 — the four
//! controlled stapling experiments against Apache, Nginx, and the §8
//! recommended policy — then demonstrate the Apache bug the authors
//! reported (Bugzilla #62400: expired responses served from cache).
//!
//! ```sh
//! cargo run --example webserver_audit
//! ```

use mustaple::asn1::Time;
use mustaple::ocsp::{OcspResponse, ResponseStatus};
use mustaple::webserver::experiment::{render_table3, run_table3_experiments, TestBench};
use mustaple::webserver::fetcher::FnFetcher;
use mustaple::webserver::server::{CachedStaple, StaplingServer};
use mustaple::webserver::{Apache, FetchOutcome, Ideal, Nginx};

fn main() {
    let t0 = Time::from_civil(2018, 5, 20, 0, 0, 0);
    let bench = TestBench::new(7, t0);

    println!("running the four Table 3 experiments against each server model...\n");
    let rows = vec![
        run_table3_experiments(&bench, Apache::new),
        run_table3_experiments(&bench, Nginx::new),
        run_table3_experiments(&bench, Ideal::new),
    ];
    println!("{}", render_table3(&rows));

    // The Bugzilla #62400 demonstration: a 10-minute-validity response
    // is still being stapled 30 minutes later because Apache's own cache
    // entry has an hour to live.
    println!("demonstrating Apache bug #62400 (expired staple served from cache):");
    let mut apache = Apache::new(bench.site.clone());
    let mut fetcher = bench.live_fetcher(600);
    apache.serve(t0, &mut fetcher); // first client pays the fetch
    let late = t0 + 1_800;
    let flight = apache.serve(late, &mut fetcher);
    let staple = flight.stapled_ocsp.expect("Apache still staples");
    let meta = CachedStaple::from_fetch(staple.clone(), late);
    println!(
        "  t+30min: staple present = true, OCSP-fresh = {} (nextUpdate was t+10min)",
        meta.ocsp_fresh(late)
    );
    assert!(!meta.ocsp_fresh(late));

    // And the error-stapling behavior: Apache staples a tryLater.
    println!("\ndemonstrating Apache stapling an OCSP error response:");
    let mut apache = Apache::new(bench.site.clone());
    let try_later = OcspResponse::error(ResponseStatus::TryLater).to_der();
    let mut flaky = FnFetcher::new(move |_t| FetchOutcome::Fetched {
        body: try_later.clone(),
        latency_ms: 50.0,
    });
    let flight = apache.serve(t0, &mut flaky);
    let parsed = OcspResponse::from_der(&flight.stapled_ocsp.expect("stapled")).unwrap();
    println!(
        "  first client received a stapled response with status {:?}",
        parsed.status
    );
    assert_eq!(parsed.status, ResponseStatus::TryLater);

    println!("\nconclusion: neither Apache nor Nginx fully supports what Must-Staple needs;");
    println!(
        "the recommended policy (prefetch + refresh-ahead + retain-on-error) passes all four."
    );
}
