//! The full study, end to end: generate the ecosystem, run every
//! measurement campaign, and print the §8 readiness report.
//!
//! ```sh
//! cargo run --release --example full_study            # tiny scale (~1s)
//! cargo run --release --example full_study -- figures # paper scale (minutes)
//! ```

use mustaple::ecosystem::EcosystemConfig;
use mustaple::Study;

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "tiny".into());
    let config = match scale.as_str() {
        "tiny" => EcosystemConfig::tiny(),
        "figures" => EcosystemConfig::figures(),
        other => {
            eprintln!("unknown scale `{other}`; use tiny or figures");
            std::process::exit(2);
        }
    };

    eprintln!(
        "running the full study at `{scale}` scale: {} responders, {} certificates, {} scan rounds",
        config.responders,
        config.responders * config.certs_per_responder,
        config.scan_rounds()
    );
    let results = Study::new(config).run();

    println!("--- campaign overview -------------------------------------");
    println!("probes sent:               {}", results.hourly.requests);
    println!(
        "overall failure rate:      {:.2}% (paper: 1.7%)",
        results.hourly.overall_failure_rate() * 100.0
    );
    println!(
        "responders with outages:   {:.1}% (paper: 36.8%)",
        results.hourly.transient_outage_fraction() * 100.0
    );
    println!(
        "consistency: {} discrepant responders (paper: 7 CRLs)",
        results.consistency.table1.len()
    );
    println!(
        "browsers respecting MS:    {}/16 (paper: 4/16)",
        results
            .browsers
            .iter()
            .filter(|r| r.respected_must_staple)
            .count()
    );
    println!();
    println!("{}", results.readiness_report().render());
}
