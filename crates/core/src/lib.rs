//! **mustaple** — a full reproduction of *"Is the Web Ready for OCSP
//! Must-Staple?"* (Chung et al., IMC 2018) as a Rust library.
//!
//! The paper measures whether the three principals of the web PKI are
//! ready for hard-fail OCSP stapling: certificate authorities (are their
//! responders available and correct?), clients (do browsers respect the
//! Must-Staple extension?), and web servers (do Apache/Nginx implement
//! stapling correctly?). This crate ties the whole reproduction
//! together:
//!
//! * [`Study`] runs every measurement campaign end to end against a
//!   synthetic-but-calibrated ecosystem and returns a [`StudyResults`]
//!   with everything each figure and table needs;
//! * [`readiness`] distills the §8 conclusion: per-principal verdicts
//!   and the overall "the web is not ready" assessment;
//! * everything else re-exports the underlying crates, so a downstream
//!   user needs only this one dependency.
//!
//! # Quick start
//!
//! ```
//! use mustaple::{Study, ecosystem::EcosystemConfig};
//!
//! let results = Study::new(EcosystemConfig::tiny()).run();
//! let report = results.readiness_report();
//! assert!(!report.web_is_ready());
//! println!("{}", report.render());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod readiness;
pub mod study;

pub use readiness::{PrincipalVerdict, ReadinessReport};
pub use study::{Study, StudyResults};

// Re-export the subsystem crates under stable names.
pub use analysis;
pub use asn1;
pub use browser;
pub use ecosystem;
pub use netsim;
pub use ocsp;
pub use opsmon;
pub use pki;
pub use scanner;
pub use simcrypto;
pub use tls;
pub use webserver;
