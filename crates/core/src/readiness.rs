//! The §8 concluding assessment.
//!
//! "Considering OCSP Must-Staple can operate only if each of the
//! principals in the PKI performs correctly, we conclude that,
//! currently, the web is not ready for OCSP Must-Staple."

use crate::study::StudyResults;
use webserver::experiment::PrefetchBehavior;
use webserver::ServerKind;

/// A per-principal verdict with the evidence behind it.
#[derive(Debug, Clone)]
pub struct PrincipalVerdict {
    /// The principal ("Certificate authorities", …).
    pub principal: &'static str,
    /// Whether this principal is ready today.
    pub ready: bool,
    /// One-line findings supporting the verdict.
    pub findings: Vec<String>,
}

/// The overall readiness report.
#[derive(Debug, Clone)]
pub struct ReadinessReport {
    /// One verdict per principal.
    pub verdicts: Vec<PrincipalVerdict>,
}

impl ReadinessReport {
    /// Build the report from study results.
    pub fn from_results(results: &StudyResults) -> ReadinessReport {
        let mut verdicts = Vec::new();

        // --- Certificate authorities (OCSP responders) ------------------
        let failure_rate = results.hourly.overall_failure_rate();
        let transient = results.hourly.transient_outage_fraction();
        let discrepant = results.consistency.table1.len();
        let ca_findings = vec![
            format!(
                "{:.1}% of OCSP requests fail on average",
                failure_rate * 100.0
            ),
            format!(
                "{:.1}% of responders had at least one outage during the campaign",
                transient * 100.0
            ),
            format!(
                "{} responders answer Good/Unknown for CRL-revoked certificates",
                discrepant
            ),
            format!(
                "median response validity {} — outages are survivable if servers prefetch",
                match results.hourly.cdf_validity().clone().median() {
                    Some(v) => analysis::table::secs(v),
                    None => "unknown".to_string(),
                }
            ),
        ];
        // The paper's nuance: responders are imperfect but "would not be
        // a barrier" thanks to caching — yet the quality defects mean
        // they are not *fully* ready either.
        let ca_ready = failure_rate < 0.005 && discrepant == 0;
        verdicts.push(PrincipalVerdict {
            principal: "Certificate authorities",
            ready: ca_ready,
            findings: ca_findings,
        });

        // --- Deployment (certificate issuance) --------------------------
        let ms_fraction = results.corpus.must_staple_fraction();
        verdicts.push(PrincipalVerdict {
            principal: "Deployment",
            ready: ms_fraction > 0.05,
            findings: vec![
                format!(
                    "only {:.3}% of valid certificates carry OCSP Must-Staple",
                    ms_fraction * 100.0
                ),
                format!(
                    "{:.1}% of Must-Staple certificates come from a single CA (Let's Encrypt)",
                    results.corpus.lets_encrypt_must_staple_share() * 100.0
                ),
            ],
        });

        // --- Clients (browsers) ------------------------------------------
        let respecting = results
            .browsers
            .iter()
            .filter(|r| r.respected_must_staple)
            .count();
        let total = results.browsers.len();
        let own_ocsp = results
            .browsers
            .iter()
            .filter_map(|r| r.sent_own_ocsp)
            .filter(|&sent| sent)
            .count();
        verdicts.push(PrincipalVerdict {
            principal: "Clients (browsers)",
            ready: respecting == total,
            findings: vec![
                format!("all {total} tested browsers solicit stapled responses"),
                format!(
                    "only {respecting}/{total} hard-fail an unstapled Must-Staple certificate \
                     (Firefox on desktop and Android)"
                ),
                format!("{own_ocsp} accepting browsers fall back to their own OCSP request"),
            ],
        });

        // --- Web servers ---------------------------------------------------
        let apache = results
            .table3
            .iter()
            .find(|r| r.server == ServerKind::Apache);
        let nginx = results
            .table3
            .iter()
            .find(|r| r.server == ServerKind::Nginx);
        let servers_ready = results
            .table3
            .iter()
            .filter(|r| r.server != ServerKind::Ideal)
            .all(|r| {
                r.prefetch == PrefetchBehavior::Prefetches
                    && r.caches
                    && r.respects_next_update
                    && r.retains_on_error
            });
        let mut server_findings = Vec::new();
        if let Some(apache) = apache {
            server_findings.push(format!(
                "Apache: prefetch {:?}, respects nextUpdate {}, retains on error {}",
                apache.prefetch, apache.respects_next_update, apache.retains_on_error
            ));
        }
        if let Some(nginx) = nginx {
            server_findings.push(format!(
                "Nginx: prefetch {:?}, respects nextUpdate {}, retains on error {}",
                nginx.prefetch, nginx.respects_next_update, nginx.retains_on_error
            ));
        }
        server_findings
            .push("neither server prefetches; first clients stall or go unstapled".to_string());
        verdicts.push(PrincipalVerdict {
            principal: "Web server software",
            ready: servers_ready,
            findings: server_findings,
        });

        ReadinessReport { verdicts }
    }

    /// The paper's bottom line: every principal must be ready.
    pub fn web_is_ready(&self) -> bool {
        self.verdicts.iter().all(|v| v.ready)
    }

    /// Render a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Is the web ready for OCSP Must-Staple?\n");
        out.push_str("=======================================\n\n");
        for verdict in &self.verdicts {
            out.push_str(&format!(
                "{} — {}\n",
                verdict.principal,
                if verdict.ready { "ready" } else { "NOT ready" }
            ));
            for finding in &verdict.findings {
                out.push_str(&format!("  * {finding}\n"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "Conclusion: the web is {} for OCSP Must-Staple.\n",
            if self.web_is_ready() {
                "ready"
            } else {
                "NOT ready"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::study::Study;
    use ecosystem::EcosystemConfig;

    #[test]
    fn report_structure_and_conclusion() {
        let results = Study::new(EcosystemConfig::tiny()).run();
        let report = results.readiness_report();
        assert_eq!(report.verdicts.len(), 4);
        // The paper's state of the world: clients and servers are not
        // ready; deployment is minuscule.
        let by_name: std::collections::HashMap<&str, bool> = report
            .verdicts
            .iter()
            .map(|v| (v.principal, v.ready))
            .collect();
        assert!(!by_name["Clients (browsers)"]);
        assert!(!by_name["Web server software"]);
        assert!(!by_name["Deployment"]);
        assert!(!report.web_is_ready());
        let text = report.render();
        assert!(text.contains("Clients (browsers)"));
        assert!(text.contains("Conclusion"));
    }
}
