//! The end-to-end study driver.

use crate::readiness::ReadinessReport;
use analysis::AlexaAdoption;
use browser::testsuite::{run_browser_suite, SuiteRow};
use ecosystem::{
    AlexaList, AlexaStream, ChurnStream, Corpus, CorpusStats, CorpusStream, EcosystemConfig,
    LiveEcosystem,
};
use netsim::Region;
use pki::RootStore;
use scanner::alexa1m::{Alexa1mScan, Alexa1mSummary};
use scanner::cdnlog::{CdnStudy, CdnSummary};
use scanner::consistency::{ConsistencyStudy, ConsistencySummary};
use scanner::executor::Executor;
use scanner::hourly::{HourlyCampaign, HourlyDataset};
use telemetry::catalog;
use webserver::experiment::{run_table3_experiments, Table3Row, TestBench};
use webserver::{Apache, Ideal, Nginx};

/// The configured study, ready to run.
pub struct Study {
    config: EcosystemConfig,
}

/// Everything the paper's evaluation section reports, in one place.
pub struct StudyResults {
    /// The generation configuration used.
    pub config: EcosystemConfig,
    /// §4: corpus statistics (OCSP support, Must-Staple share, CA
    /// breakdown).
    pub corpus: CorpusStats,
    /// §4: the per-CA Must-Staple breakdown.
    pub must_staple_by_ca: Vec<(String, usize)>,
    /// §4 / Figures 2 & 11: the folded Alexa rank-adoption summary.
    /// Batch and streaming runs produce identical folds (the batch
    /// path records the materialized list through the same
    /// accumulator), so every downstream artifact is byte-identical
    /// either way (DESIGN.md §13).
    pub alexa: AlexaAdoption,
    /// §5: the Hourly campaign aggregation (Figures 3, 5–9, freshness).
    pub hourly: HourlyDataset,
    /// §5.2 / Figure 4: the Alexa-impact summary.
    pub alexa1m: Alexa1mSummary,
    /// §5.4 / Table 1 / Figure 10: the consistency study.
    pub consistency: ConsistencySummary,
    /// §5.2: the CDN-perspective study.
    pub cdn: CdnSummary,
    /// §6 / Table 2: the browser suite.
    pub browsers: Vec<SuiteRow>,
    /// §7.2 / Table 3: the web-server experiments (Apache, Nginx, Ideal).
    pub table3: Vec<Table3Row>,
    /// Telemetry from every campaign, merged in a fixed order (hourly,
    /// alexa1m, consistency, cdn, table3 rows) so the combined registry
    /// is identical for every worker count.
    pub telemetry: telemetry::Registry,
    /// Deterministic self-profile: a `campaign` root span over the four
    /// scan pipelines' span trees (the `trace.jsonl` artifact; see
    /// [`telemetry::trace`]).
    pub trace: telemetry::trace::Span,
    /// The operational event bus (the `events.jsonl` artifact): health
    /// transitions, outage open/close pairs, window rollovers, and
    /// revocation events from the hourly and consistency pipelines,
    /// merged into one canonically-sorted stream. Byte-identical for
    /// every worker count, engine, and chunking, like `trace.jsonl`.
    pub events: opsmon::EventLog,
}

impl Study {
    /// Configure a study.
    pub fn new(config: EcosystemConfig) -> Study {
        Study { config }
    }

    /// Run every campaign. At [`EcosystemConfig::tiny`] scale this takes
    /// around a second; at [`EcosystemConfig::figures`] scale, minutes.
    pub fn run(self) -> StudyResults {
        // §4: the statistical corpus and Alexa list, at the scaled
        // sizes. Scan populations below intentionally keep the *base*
        // sizes, so `scale_mult` moves only these statistical passes.
        let corpus_size = self.config.scaled_corpus_size();
        let alexa_size = self.config.scaled_alexa_size();
        let (corpus_stats, must_staple_by_ca, alexa) = if self.config.streaming {
            // Bounded memory: drain the feeds, keep only the folds.
            let mut corpus_stream = CorpusStream::new(self.config.seed, corpus_size);
            for _ in corpus_stream.by_ref() {}
            let fold = corpus_stream.into_fold();
            let mut adoption = AlexaAdoption::new(alexa_size);
            for site in AlexaStream::new(self.config.seed, alexa_size) {
                adoption.record(site.rank, site.https, site.ocsp, site.staples);
            }
            (fold.stats().clone(), fold.must_staple_by_issuer(), adoption)
        } else {
            let corpus = Corpus::generate(self.config.seed, corpus_size);
            let list = AlexaList::generate(self.config.seed, alexa_size);
            let mut adoption = AlexaAdoption::new(list.len());
            for site in list.sites() {
                adoption.record(site.rank, site.https, site.ocsp, site.staples);
            }
            (corpus.stats(), corpus.must_staple_by_issuer(), adoption)
        };

        // §5: the live ecosystem and its campaigns. One executor, sized
        // by `config.parallelism`, drives all of them; every worker
        // count produces bit-identical results.
        let executor = Executor::new(self.config.parallelism);
        let eco = LiveEcosystem::generate(self.config.clone());
        let hourly = HourlyCampaign::new(&eco).run_with(&executor);
        let alexa1m = Alexa1mScan::summarize_with(&hourly, &executor);
        let consistency = ConsistencyStudy::run_with(
            &eco,
            self.config.campaign_start + 6 * 86_400, // the paper: May 1st
            Region::Virginia,
            &executor,
        );
        let cdn = CdnStudy::run_with(&eco, self.config.campaign_start + 86_400, 60, 40, &executor);

        // §6: the browser suite, against a controlled bench.
        let bench = TestBench::new(self.config.seed, self.config.campaign_start);
        let mut roots = RootStore::new("suite");
        roots.add(bench.site.chain.last().expect("bench chain").clone());
        let browsers = run_browser_suite(&bench, &roots, self.config.campaign_start);

        // §7.2: the web-server experiments.
        let table3 = vec![
            run_table3_experiments(&bench, Apache::new),
            run_table3_experiments(&bench, Nginx::new),
            run_table3_experiments(&bench, Ideal::new),
        ];

        let mut telemetry = telemetry::Registry::new();
        telemetry.merge(&hourly.telemetry);
        telemetry.merge(&alexa1m.telemetry);
        telemetry.merge(&consistency.telemetry);
        telemetry.merge(&cdn.telemetry);
        for row in &table3 {
            telemetry.merge(&row.telemetry);
        }

        // Optional mid-campaign churn: a churn-salted RNG stream, so the
        // base populations are untouched. Its summary lands in gauges,
        // which are excluded from every artifact-equality surface —
        // enabling churn changes no committed artifact.
        if let Some(churn) = &self.config.churn {
            let mut events =
                ChurnStream::new(self.config.seed, churn.clone(), self.config.scan_rounds());
            for _ in events.by_ref() {}
            let summary = events.summary();
            telemetry.set_gauge(catalog::ECOSYSTEM_CHURN_ISSUED, summary.issued);
            telemetry.set_gauge(catalog::ECOSYSTEM_CHURN_EXPIRED, summary.expired);
            telemetry.set_gauge(catalog::ECOSYSTEM_CHURN_REVOKED, summary.revoked);
            telemetry.set_gauge(catalog::ECOSYSTEM_CHURN_LIVE, summary.live);
        }

        // The event bus: both probing pipelines feed one stream. The
        // merge order is irrelevant — `to_jsonl` sorts canonically.
        let mut events = hourly.events.clone();
        events.merge(consistency.events.clone());

        // One root over the four pipelines, in the fixed merge order.
        let trace = telemetry::trace::Span::aggregate(
            "campaign",
            vec![
                hourly.trace.clone(),
                alexa1m.trace.clone(),
                consistency.trace.clone(),
                cdn.trace.clone(),
            ],
        );

        StudyResults {
            config: self.config,
            corpus: corpus_stats,
            must_staple_by_ca,
            alexa,
            hourly,
            alexa1m,
            consistency,
            cdn,
            browsers,
            table3,
            telemetry,
            trace,
            events,
        }
    }
}

impl StudyResults {
    /// Distill the §8 readiness verdicts.
    pub fn readiness_report(&self) -> ReadinessReport {
        ReadinessReport::from_results(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_study_runs_at_tiny_scale() {
        let results = Study::new(EcosystemConfig::tiny()).run();
        // §4 shapes.
        assert!(results.corpus.ocsp_fraction() > 0.9);
        assert!(results.corpus.must_staple_fraction() < 0.01);
        // §5 shapes.
        assert!(results.hourly.requests > 0);
        assert!(results.hourly.overall_failure_rate() < 0.2);
        assert!(results.alexa1m.total_domains > 0);
        assert!(results.consistency.responses_collected > 0);
        assert!(results.cdn.cache_hit_ratio > 0.3);
        // §6: sixteen browsers, four respecting.
        assert_eq!(results.browsers.len(), 16);
        assert_eq!(
            results
                .browsers
                .iter()
                .filter(|r| r.respected_must_staple)
                .count(),
            4
        );
        // §7.2: three server rows (Apache, Nginx, Ideal).
        assert_eq!(results.table3.len(), 3);
        // The verdict.
        let report = results.readiness_report();
        assert!(!report.web_is_ready());
        let rendered = report.render();
        assert!(rendered.contains("NOT ready"));
    }
}
