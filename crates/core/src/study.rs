//! The end-to-end study driver.

use crate::readiness::ReadinessReport;
use browser::testsuite::{run_browser_suite, SuiteRow};
use ecosystem::{AlexaList, Corpus, CorpusStats, EcosystemConfig, LiveEcosystem};
use netsim::Region;
use pki::RootStore;
use scanner::alexa1m::{Alexa1mScan, Alexa1mSummary};
use scanner::cdnlog::{CdnStudy, CdnSummary};
use scanner::consistency::{ConsistencyStudy, ConsistencySummary};
use scanner::executor::Executor;
use scanner::hourly::{HourlyCampaign, HourlyDataset};
use webserver::experiment::{run_table3_experiments, Table3Row, TestBench};
use webserver::{Apache, Ideal, Nginx};

/// The configured study, ready to run.
pub struct Study {
    config: EcosystemConfig,
}

/// Everything the paper's evaluation section reports, in one place.
pub struct StudyResults {
    /// The generation configuration used.
    pub config: EcosystemConfig,
    /// §4: corpus statistics (OCSP support, Must-Staple share, CA
    /// breakdown).
    pub corpus: CorpusStats,
    /// §4: the per-CA Must-Staple breakdown.
    pub must_staple_by_ca: Vec<(String, usize)>,
    /// §4 / Figures 2 & 11: the Alexa list.
    pub alexa: AlexaList,
    /// §5: the Hourly campaign aggregation (Figures 3, 5–9, freshness).
    pub hourly: HourlyDataset,
    /// §5.2 / Figure 4: the Alexa-impact summary.
    pub alexa1m: Alexa1mSummary,
    /// §5.4 / Table 1 / Figure 10: the consistency study.
    pub consistency: ConsistencySummary,
    /// §5.2: the CDN-perspective study.
    pub cdn: CdnSummary,
    /// §6 / Table 2: the browser suite.
    pub browsers: Vec<SuiteRow>,
    /// §7.2 / Table 3: the web-server experiments (Apache, Nginx, Ideal).
    pub table3: Vec<Table3Row>,
    /// Telemetry from every campaign, merged in a fixed order (hourly,
    /// alexa1m, consistency, cdn, table3 rows) so the combined registry
    /// is identical for every worker count.
    pub telemetry: telemetry::Registry,
    /// Deterministic self-profile: a `campaign` root span over the four
    /// scan pipelines' span trees (the `trace.jsonl` artifact; see
    /// [`telemetry::trace`]).
    pub trace: telemetry::trace::Span,
}

impl Study {
    /// Configure a study.
    pub fn new(config: EcosystemConfig) -> Study {
        Study { config }
    }

    /// Run every campaign. At [`EcosystemConfig::tiny`] scale this takes
    /// around a second; at [`EcosystemConfig::figures`] scale, minutes.
    pub fn run(self) -> StudyResults {
        // §4: the statistical corpus and Alexa list.
        let corpus = Corpus::generate(self.config.seed, self.config.corpus_size);
        let corpus_stats = corpus.stats();
        let must_staple_by_ca = corpus.must_staple_by_issuer();
        let alexa = AlexaList::generate(self.config.seed, self.config.alexa_size);

        // §5: the live ecosystem and its campaigns. One executor, sized
        // by `config.parallelism`, drives all of them; every worker
        // count produces bit-identical results.
        let executor = Executor::new(self.config.parallelism);
        let eco = LiveEcosystem::generate(self.config.clone());
        let hourly = HourlyCampaign::new(&eco).run_with(&executor);
        let alexa1m = Alexa1mScan::summarize_with(&hourly, &executor);
        let consistency = ConsistencyStudy::run_with(
            &eco,
            self.config.campaign_start + 6 * 86_400, // the paper: May 1st
            Region::Virginia,
            &executor,
        );
        let cdn = CdnStudy::run_with(&eco, self.config.campaign_start + 86_400, 60, 40, &executor);

        // §6: the browser suite, against a controlled bench.
        let bench = TestBench::new(self.config.seed, self.config.campaign_start);
        let mut roots = RootStore::new("suite");
        roots.add(bench.site.chain.last().expect("bench chain").clone());
        let browsers = run_browser_suite(&bench, &roots, self.config.campaign_start);

        // §7.2: the web-server experiments.
        let table3 = vec![
            run_table3_experiments(&bench, Apache::new),
            run_table3_experiments(&bench, Nginx::new),
            run_table3_experiments(&bench, Ideal::new),
        ];

        let mut telemetry = telemetry::Registry::new();
        telemetry.merge(&hourly.telemetry);
        telemetry.merge(&alexa1m.telemetry);
        telemetry.merge(&consistency.telemetry);
        telemetry.merge(&cdn.telemetry);
        for row in &table3 {
            telemetry.merge(&row.telemetry);
        }

        // One root over the four pipelines, in the fixed merge order.
        let trace = telemetry::trace::Span::aggregate(
            "campaign",
            vec![
                hourly.trace.clone(),
                alexa1m.trace.clone(),
                consistency.trace.clone(),
                cdn.trace.clone(),
            ],
        );

        StudyResults {
            config: self.config,
            corpus: corpus_stats,
            must_staple_by_ca,
            alexa,
            hourly,
            alexa1m,
            consistency,
            cdn,
            browsers,
            table3,
            telemetry,
            trace,
        }
    }
}

impl StudyResults {
    /// Distill the §8 readiness verdicts.
    pub fn readiness_report(&self) -> ReadinessReport {
        ReadinessReport::from_results(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_study_runs_at_tiny_scale() {
        let results = Study::new(EcosystemConfig::tiny()).run();
        // §4 shapes.
        assert!(results.corpus.ocsp_fraction() > 0.9);
        assert!(results.corpus.must_staple_fraction() < 0.01);
        // §5 shapes.
        assert!(results.hourly.requests > 0);
        assert!(results.hourly.overall_failure_rate() < 0.2);
        assert!(results.alexa1m.total_domains > 0);
        assert!(results.consistency.responses_collected > 0);
        assert!(results.cdn.cache_hit_ratio > 0.3);
        // §6: sixteen browsers, four respecting.
        assert_eq!(results.browsers.len(), 16);
        assert_eq!(
            results
                .browsers
                .iter()
                .filter(|r| r.respected_must_staple)
                .count(),
            4
        );
        // §7.2: three server rows (Apache, Nginx, Ideal).
        assert_eq!(results.table3.len(), 3);
        // The verdict.
        let report = results.readiness_report();
        assert!(!report.web_is_ready());
        let rendered = report.render();
        assert!(rendered.contains("NOT ready"));
    }
}
