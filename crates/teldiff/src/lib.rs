//! Cross-run telemetry regression diffing.
//!
//! The repo's telemetry is deterministic by construction (serial ≡
//! parallel, byte for byte), which makes run-over-run comparison a
//! *regression gate*: any drift between two runs of the same code and
//! config is a bug, and drift across PRs is either intentional (re-
//! baseline) or a silent behavior change (fail). This crate is that
//! gate:
//!
//! * [`Snapshot::parse`] loads either exposition format the telemetry
//!   crate emits — the Prometheus text exposition (`telemetry.prom`)
//!   or the `kind,metric,label,value` CSV (`telemetry.csv`) — into a
//!   flat `(metric, label, part)` → value series map;
//! * [`diff`] aligns two snapshots and classifies every series as
//!   added, removed, or changed;
//! * [`Thresholds`] (parsed from `teldiff.toml`, a hand-rolled TOML
//!   subset — the build environment has no registry access) decides
//!   which changes are tolerable: a change passes if its absolute delta
//!   is within `abs` **or** its relative delta is within `rel`. The
//!   defaults are zero, so an unconfigured metric must match exactly.
//!
//! The `part` component keeps histogram series comparable: a CSV
//! histogram row contributes `count`/`sum`/`min`/`max` parts, a
//! Prometheus one contributes `count`/`sum` plus one part per `le`
//! bucket. When the two snapshots come from *different* formats, the
//! diff restricts itself to the parts both carry (counters and
//! histogram `count`/`sum`), so `teldiff a.prom b.csv` is meaningful.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use telemetry::csv::CsvSnapshot;
use telemetry::prom::Exposition;

/// Which exposition format a snapshot was parsed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `kind,metric,label,value` CSV (`Registry::to_csv`).
    Csv,
    /// Prometheus text exposition (`Registry::to_prometheus`).
    Prom,
}

/// One comparable series: a `(metric, label)` pair plus the `part`
/// distinguishing the scalar within a histogram family (empty for
/// counters).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesId {
    /// Original (dotted) registry metric name.
    pub metric: String,
    /// Registry label.
    pub label: String,
    /// `""` for counters; `count`/`sum`/`min`/`max` or `bucket(le=…)`
    /// for histogram scalars.
    pub part: String,
}

impl fmt::Display for SeriesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{{}}}", self.metric, self.label)?;
        if !self.part.is_empty() {
            write!(f, ".{}", self.part)?;
        }
        Ok(())
    }
}

/// A flattened, format-agnostic view of one run's telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The format the snapshot was parsed from.
    pub format: Format,
    /// Every scalar series, in canonical order.
    pub series: BTreeMap<SeriesId, u64>,
}

/// The parts both exposition formats carry for a histogram.
const SHARED_HISTOGRAM_PARTS: [&str; 2] = ["count", "sum"];

impl Snapshot {
    /// Parse either exposition format, autodetected: input whose first
    /// line is the `kind,metric,label,value` CSV header parses as CSV,
    /// anything else as a Prometheus exposition.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        if text.lines().next() == Some("kind,metric,label,value") {
            Ok(Snapshot::from_csv(&CsvSnapshot::parse(text)?))
        } else {
            Ok(Snapshot::from_exposition(&Exposition::parse(text)?))
        }
    }

    /// Flatten a parsed CSV snapshot.
    pub fn from_csv(csv: &CsvSnapshot) -> Snapshot {
        let mut series = BTreeMap::new();
        for ((metric, label), &value) in &csv.counters {
            series.insert(id(metric, label, ""), value);
        }
        for ((metric, label), row) in &csv.histograms {
            series.insert(id(metric, label, "count"), row.count);
            series.insert(id(metric, label, "sum"), row.sum);
            series.insert(id(metric, label, "min"), row.min);
            series.insert(id(metric, label, "max"), row.max);
        }
        Snapshot {
            format: Format::Csv,
            series,
        }
    }

    /// Flatten a parsed Prometheus exposition. The redundant `+Inf`
    /// bucket (always equal to `count`) is skipped so a count change is
    /// reported once, not twice. Ensemble series (the `seed` label) fold
    /// the seed into the flattened label as `label,seed=N`, so each
    /// replica's telemetry stays an independently-diffed series.
    pub fn from_exposition(exposition: &Exposition) -> Snapshot {
        let flat = |key: &telemetry::prom::SeriesKey| match &key.seed {
            None => key.label.clone(),
            Some(seed) => format!("{},seed={seed}", key.label),
        };
        let mut series = BTreeMap::new();
        for (metric, key, value) in exposition.counters() {
            series.insert(id(metric, &flat(key), ""), value);
        }
        for (metric, key, h) in exposition.histograms() {
            let label = flat(key);
            series.insert(id(metric, &label, "count"), h.count);
            series.insert(id(metric, &label, "sum"), h.sum);
            for (le, cumulative) in &h.buckets {
                if le != "+Inf" {
                    series.insert(id(metric, &label, &format!("bucket(le={le})")), *cumulative);
                }
            }
        }
        Snapshot {
            format: Format::Prom,
            series,
        }
    }

    /// The series this snapshot can fairly be compared on against a
    /// snapshot in `other` format: everything when the formats match,
    /// otherwise only counters and the shared histogram parts.
    fn comparable(&self, other: Format) -> BTreeMap<&SeriesId, u64> {
        self.series
            .iter()
            .filter(|(series_id, _)| {
                self.format == other
                    || series_id.part.is_empty()
                    || SHARED_HISTOGRAM_PARTS.contains(&series_id.part.as_str())
            })
            .map(|(series_id, &v)| (series_id, v))
            .collect()
    }
}

fn id(metric: &str, label: &str, part: &str) -> SeriesId {
    SeriesId {
        metric: metric.to_owned(),
        label: label.to_owned(),
        part: part.to_owned(),
    }
}

/// The tolerance for one metric's changes. A change passes if
/// `|after − before| ≤ abs` **or** `|after − before| / before ≤ rel`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rule {
    /// Maximum absolute delta.
    pub abs: f64,
    /// Maximum relative delta (fraction of the baseline value; a
    /// baseline of zero never passes the relative test).
    pub rel: f64,
}

/// The exact-match default: any change breaches.
impl Default for Rule {
    fn default() -> Rule {
        Rule { abs: 0.0, rel: 0.0 }
    }
}

impl Rule {
    /// Whether a `before → after` change is within tolerance.
    pub fn allows(&self, before: u64, after: u64) -> bool {
        let abs_delta = before.abs_diff(after) as f64;
        if abs_delta <= self.abs {
            return true;
        }
        before > 0 && abs_delta / before as f64 <= self.rel
    }
}

/// Per-metric change tolerances, keyed by the original (dotted) metric
/// name, with a `[default]` fallback.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Thresholds {
    /// The fallback rule for metrics without their own section.
    pub default: Rule,
    /// Per-metric overrides.
    pub per_metric: BTreeMap<String, Rule>,
}

impl Thresholds {
    /// The rule governing one metric.
    pub fn rule_for(&self, metric: &str) -> Rule {
        self.per_metric.get(metric).copied().unwrap_or(self.default)
    }

    /// Parse a `teldiff.toml`. The accepted subset:
    ///
    /// ```toml
    /// # comments and blank lines
    /// [default]
    /// abs = 0
    /// rel = 0.0
    ///
    /// ["scan.hourly.probes"]   # quoted section = metric name
    /// rel = 0.05
    /// ```
    ///
    /// Sections are `[default]` or a (optionally quoted) metric name;
    /// keys are `abs` and `rel` with non-negative numeric values.
    /// Anything else is an error — better loud than a silently ignored
    /// threshold.
    pub fn parse(text: &str) -> Result<Thresholds, String> {
        let mut thresholds = Thresholds::default();
        // None = before any section header.
        let mut current: Option<String> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let name = header
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated section header"))?
                    .trim();
                let name = name
                    .strip_prefix('"')
                    .and_then(|n| n.strip_suffix('"'))
                    .unwrap_or(name);
                if name.is_empty() {
                    return Err(format!("line {lineno}: empty section name"));
                }
                if name != "default" {
                    thresholds
                        .per_metric
                        .entry(name.to_owned())
                        .or_insert_with(Rule::default);
                }
                current = Some(name.to_owned());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("line {lineno}: bad number `{}`", value.trim()))?;
            if value < 0.0 {
                return Err(format!("line {lineno}: thresholds must be non-negative"));
            }
            let section = current
                .as_deref()
                .ok_or_else(|| format!("line {lineno}: key before any [section]"))?;
            let rule = if section == "default" {
                &mut thresholds.default
            } else {
                // Inserted when the header was read.
                match thresholds.per_metric.get_mut(section) {
                    Some(rule) => rule,
                    None => return Err(format!("line {lineno}: unknown section `{section}`")),
                }
            };
            match key.trim() {
                "abs" => rule.abs = value,
                "rel" => rule.rel = value,
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            }
        }
        Ok(thresholds)
    }
}

/// Cut a `#` comment, respecting double-quoted strings (metric names in
/// section headers may contain `#`).
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

/// One series present in both snapshots with different values.
#[derive(Debug, Clone, PartialEq)]
pub struct Changed {
    /// The series.
    pub id: SeriesId,
    /// Baseline value.
    pub before: u64,
    /// Current value.
    pub after: u64,
    /// Whether the change exceeds the metric's thresholds.
    pub breach: bool,
}

impl Changed {
    /// Relative delta as a fraction of the baseline (`None` when the
    /// baseline is zero).
    pub fn rel_delta(&self) -> Option<f64> {
        (self.before > 0).then(|| self.before.abs_diff(self.after) as f64 / self.before as f64)
    }
}

/// The outcome of aligning two snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Series only in the current snapshot.
    pub added: Vec<(SeriesId, u64)>,
    /// Series only in the baseline snapshot.
    pub removed: Vec<(SeriesId, u64)>,
    /// Series in both with differing values.
    pub changed: Vec<Changed>,
}

impl DiffReport {
    /// No differences at all.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Whether anything exceeds tolerance. Added and removed series are
    /// always breaches: a series appearing or vanishing is a structural
    /// change no numeric threshold can bless — re-baseline if it is
    /// intentional.
    pub fn has_breach(&self) -> bool {
        !self.added.is_empty() || !self.removed.is_empty() || self.changed.iter().any(|c| c.breach)
    }

    /// Human-readable report: one line per difference, then a summary.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return String::from("no differences\n");
        }
        let mut out = String::new();
        for (series_id, value) in &self.added {
            let _ = writeln!(out, "+ added   {series_id} = {value}");
        }
        for (series_id, value) in &self.removed {
            let _ = writeln!(out, "- removed {series_id} = {value}");
        }
        for c in &self.changed {
            let verdict = if c.breach { "BREACH" } else { "ok" };
            let rel = match c.rel_delta() {
                Some(r) => format!("{:+.2}%", r * 100.0 * delta_sign(c.before, c.after)),
                None => String::from("from zero"),
            };
            let _ = writeln!(
                out,
                "~ changed {} {} -> {} ({rel}) {verdict}",
                c.id, c.before, c.after
            );
        }
        let breaches = self.changed.iter().filter(|c| c.breach).count()
            + self.added.len()
            + self.removed.len();
        let _ = writeln!(
            out,
            "{} added, {} removed, {} changed; {breaches} past threshold",
            self.added.len(),
            self.removed.len(),
            self.changed.len(),
        );
        out
    }
}

fn delta_sign(before: u64, after: u64) -> f64 {
    if after >= before {
        1.0
    } else {
        -1.0
    }
}

/// Align `current` against `baseline` and classify every series. When
/// the snapshots come from different formats, only the parts both
/// formats carry participate (see the crate docs).
pub fn diff(baseline: &Snapshot, current: &Snapshot, thresholds: &Thresholds) -> DiffReport {
    let before = baseline.comparable(current.format);
    let after = current.comparable(baseline.format);
    let mut report = DiffReport::default();
    for (&series_id, &value) in &before {
        match after.get(series_id) {
            None => report.removed.push((series_id.clone(), value)),
            Some(&new_value) if new_value != value => {
                let rule = thresholds.rule_for(&series_id.metric);
                report.changed.push(Changed {
                    id: series_id.clone(),
                    before: value,
                    after: new_value,
                    breach: !rule.allows(value, new_value),
                });
            }
            Some(_) => {}
        }
    }
    for (&series_id, &value) in &after {
        if !before.contains_key(series_id) {
            report.added.push((series_id.clone(), value));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::Registry;

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.add("scan.probes", "r0", 100);
        r.add("scan.probes", "r1", 50);
        r.incr("net.failure.tcp", "Virginia");
        r.observe("latency", "Virginia", 12);
        r.observe("latency", "Virginia", 80);
        r
    }

    #[test]
    fn identical_snapshots_diff_empty_in_both_formats() {
        let r = registry();
        for text in [r.to_prometheus(), r.to_csv()] {
            let a = Snapshot::parse(&text).expect("parse");
            let b = Snapshot::parse(&text).expect("parse");
            let report = diff(&a, &b, &Thresholds::default());
            assert!(report.is_empty(), "{}", report.render());
            assert!(!report.has_breach());
            assert_eq!(report.render(), "no differences\n");
        }
    }

    #[test]
    fn seeded_ensemble_series_diff_independently() {
        use telemetry::prom::Exposition;
        let a = registry();
        let mut b = registry();
        b.incr("scan.probes", "r0");
        let baseline =
            Snapshot::from_exposition(&Exposition::from_seeded_registries([(7, &a), (9, &b)]));
        // Same ensemble, but replica 9 gains one more probe on r0.
        let mut b2 = registry();
        b2.add("scan.probes", "r0", 2);
        let current =
            Snapshot::from_exposition(&Exposition::from_seeded_registries([(7, &a), (9, &b2)]));
        let report = diff(&baseline, &current, &Thresholds::default());
        assert!(report.has_breach());
        assert_eq!(report.changed.len(), 1);
        assert_eq!(report.changed[0].id.to_string(), "scan.probes{r0,seed=9}");
        assert_eq!(
            (report.changed[0].before, report.changed[0].after),
            (101, 102)
        );
    }

    #[test]
    fn perturbed_counter_breaches_exact_default() {
        let baseline = Snapshot::parse(&registry().to_prometheus()).expect("parse");
        let mut r = registry();
        r.incr("scan.probes", "r0");
        let current = Snapshot::parse(&r.to_prometheus()).expect("parse");
        let report = diff(&baseline, &current, &Thresholds::default());
        assert!(report.has_breach());
        assert_eq!(report.changed.len(), 1);
        assert_eq!(report.changed[0].id.to_string(), "scan.probes{r0}");
        assert_eq!(
            (report.changed[0].before, report.changed[0].after),
            (100, 101)
        );
        assert!(report.render().contains("BREACH"));
    }

    #[test]
    fn thresholds_bless_small_changes() {
        let toml = "[default]\nabs = 0\n\n[\"scan.probes\"]\nrel = 0.05\n";
        let thresholds = Thresholds::parse(toml).expect("parse toml");
        let baseline = Snapshot::parse(&registry().to_prometheus()).expect("parse");
        let mut r = registry();
        r.add("scan.probes", "r0", 4); // +4 % — within rel = 0.05
        let current = Snapshot::parse(&r.to_prometheus()).expect("parse");
        let report = diff(&baseline, &current, &thresholds);
        assert_eq!(report.changed.len(), 1);
        assert!(!report.changed[0].breach);
        assert!(!report.has_breach());
        assert!(report.render().contains("ok"));

        // +10 % is past the blessing.
        let mut r = registry();
        r.add("scan.probes", "r0", 10);
        let current = Snapshot::parse(&r.to_prometheus()).expect("parse");
        assert!(diff(&baseline, &current, &thresholds).has_breach());
    }

    #[test]
    fn abs_threshold_works_independently_of_rel() {
        let rule = Rule { abs: 5.0, rel: 0.0 };
        assert!(rule.allows(100, 105));
        assert!(!rule.allows(100, 106));
        assert!(rule.allows(0, 5)); // abs covers the zero baseline
        let rel_only = Rule { abs: 0.0, rel: 0.5 };
        assert!(!rel_only.allows(0, 1), "zero baseline never passes rel");
    }

    #[test]
    fn added_and_removed_series_always_breach() {
        let baseline = Snapshot::parse(&registry().to_prometheus()).expect("parse");
        let mut r = registry();
        r.incr("brand.new", "x");
        let current = Snapshot::parse(&r.to_prometheus()).expect("parse");
        let generous = Thresholds {
            default: Rule {
                abs: 1e18,
                rel: 1e18,
            },
            per_metric: BTreeMap::new(),
        };
        let report = diff(&baseline, &current, &generous);
        assert_eq!(report.added.len(), 1);
        assert!(report.has_breach(), "new series must breach");
        let report = diff(&current, &baseline, &generous);
        assert_eq!(report.removed.len(), 1);
        assert!(report.has_breach(), "vanished series must breach");
    }

    #[test]
    fn histogram_changes_surface_as_parts() {
        let baseline = Snapshot::parse(&registry().to_prometheus()).expect("parse");
        let mut r = registry();
        r.observe("latency", "Virginia", 80);
        let current = Snapshot::parse(&r.to_prometheus()).expect("parse");
        let report = diff(&baseline, &current, &Thresholds::default());
        let parts: Vec<String> = report.changed.iter().map(|c| c.id.to_string()).collect();
        assert!(
            parts.contains(&"latency{Virginia}.count".to_string()),
            "{parts:?}"
        );
        assert!(parts.contains(&"latency{Virginia}.sum".to_string()));
        assert!(parts.contains(&"latency{Virginia}.bucket(le=127)".to_string()));
    }

    #[test]
    fn cross_format_diff_compares_only_shared_parts() {
        let r = registry();
        let prom = Snapshot::parse(&r.to_prometheus()).expect("prom");
        let csv = Snapshot::parse(&r.to_csv()).expect("csv");
        assert_eq!(prom.format, Format::Prom);
        assert_eq!(csv.format, Format::Csv);
        // Same registry through different formats: no differences, even
        // though CSV has min/max and prom has buckets.
        let report = diff(&prom, &csv, &Thresholds::default());
        assert!(report.is_empty(), "{}", report.render());
        let report = diff(&csv, &prom, &Thresholds::default());
        assert!(report.is_empty(), "{}", report.render());
    }

    #[test]
    fn toml_subset_parses_and_rejects() {
        let toml = "# comment\n[default]\nabs = 2\nrel = 0.25  # inline\n\n[\"a.b\"]\nabs = 7\n[plain]\nrel = 1\n";
        let t = Thresholds::parse(toml).expect("parse");
        assert_eq!(
            t.default,
            Rule {
                abs: 2.0,
                rel: 0.25
            }
        );
        assert_eq!(t.rule_for("a.b").abs, 7.0);
        assert_eq!(t.rule_for("plain").rel, 1.0);
        assert_eq!(t.rule_for("absent"), t.default);

        assert!(
            Thresholds::parse("abs = 1\n").is_err(),
            "key before section"
        );
        assert!(
            Thresholds::parse("[default]\nwat = 1\n").is_err(),
            "unknown key"
        );
        assert!(
            Thresholds::parse("[default]\nabs = x\n").is_err(),
            "bad number"
        );
        assert!(
            Thresholds::parse("[default]\nabs = -1\n").is_err(),
            "negative"
        );
        assert!(Thresholds::parse("[oops\n").is_err(), "unterminated header");
        assert!(Thresholds::parse("[]\n").is_err(), "empty section");
        assert!(Thresholds::parse("").is_ok(), "empty config is the default");
    }

    #[test]
    fn format_autodetect_rejects_garbage() {
        assert!(Snapshot::parse("kind,metric,label,value\nbogus\n").is_err());
        assert!(Snapshot::parse("# TYPE m gauge\n").is_err());
        // An empty prom exposition is a valid, empty snapshot.
        let empty = Snapshot::parse("").expect("empty");
        assert!(empty.series.is_empty());
    }
}
