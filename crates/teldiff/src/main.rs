//! The `teldiff` CLI.
//!
//! ```text
//! cargo run -p teldiff -- BASELINE CURRENT             # diff two expositions
//! cargo run -p teldiff -- --config teldiff.toml A B    # with thresholds
//! cargo run -p teldiff -- --quiet A B                  # exit code only
//! ```
//!
//! `BASELINE`/`CURRENT` are telemetry expositions in either format the
//! telemetry crate writes (`telemetry.prom` or `telemetry.csv`),
//! autodetected per file. Without `--config`, `./teldiff.toml` is used
//! when present; otherwise every metric must match exactly.
//!
//! Exit codes: `0` no differences (or all within thresholds), `1`
//! usage/IO/parse error, `2` threshold breach.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use teldiff::{diff, Snapshot, Thresholds};

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    config: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut config = None;
    let mut quiet = false;
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => {
                config = Some(PathBuf::from(it.next().ok_or("--config needs a path")?));
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "teldiff: diff two telemetry expositions (prom or csv, autodetected)\n\
                     usage: teldiff [--config teldiff.toml] [--quiet] BASELINE CURRENT\n\
                     exit codes: 0 within thresholds, 1 error, 2 breach"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?} (try --help)"));
            }
            path => positional.push(PathBuf::from(path)),
        }
    }
    let [baseline, current]: [PathBuf; 2] = positional
        .try_into()
        .map_err(|p: Vec<PathBuf>| format!("expected BASELINE CURRENT, got {} paths", p.len()))?;
    Ok(Args {
        baseline,
        current,
        config,
        quiet,
    })
}

fn load_snapshot(path: &PathBuf) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Snapshot::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn load_thresholds(config: Option<&PathBuf>) -> Result<Thresholds, String> {
    let path = match config {
        Some(path) => path.clone(),
        None => {
            // Opt-in default: the repo-root config, when present.
            let implicit = PathBuf::from("teldiff.toml");
            if !implicit.exists() {
                return Ok(Thresholds::default());
            }
            implicit
        }
    };
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Thresholds::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let thresholds = load_thresholds(args.config.as_ref())?;
    let baseline = load_snapshot(&args.baseline)?;
    let current = load_snapshot(&args.current)?;
    let report = diff(&baseline, &current, &thresholds);
    if !args.quiet {
        print!("{}", report.render());
    }
    Ok(if report.has_breach() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("teldiff: {message}");
            ExitCode::FAILURE
        }
    }
}
