//! End-to-end tests of the `teldiff` binary: exit codes and report
//! output over real exposition files.

use std::path::PathBuf;
use std::process::{Command, Output};
use telemetry::Registry;

fn registry() -> Registry {
    let mut r = Registry::new();
    r.add("scan.probes", "r0", 100);
    r.incr("net.failure.tcp", "Virginia");
    r.observe("latency", "Virginia", 40);
    r
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write fixture");
    path
}

fn teldiff(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_teldiff"))
        .args(args)
        .output()
        .expect("run teldiff")
}

#[test]
fn identical_runs_exit_zero() {
    let a = write_temp("same-a.prom", &registry().to_prometheus());
    let b = write_temp("same-b.prom", &registry().to_prometheus());
    let out = teldiff(&[a.to_str().expect("path"), b.to_str().expect("path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(String::from_utf8_lossy(&out.stdout), "no differences\n");
}

#[test]
fn perturbed_counter_exits_two() {
    let a = write_temp("perturb-a.prom", &registry().to_prometheus());
    let mut r = registry();
    r.incr("scan.probes", "r0");
    let b = write_temp("perturb-b.prom", &r.to_prometheus());
    let out = teldiff(&[a.to_str().expect("path"), b.to_str().expect("path")]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scan.probes{r0} 100 -> 101"), "{stdout}");
    assert!(stdout.contains("BREACH"), "{stdout}");
}

#[test]
fn thresholds_config_blesses_the_same_change() {
    let a = write_temp("blessed-a.prom", &registry().to_prometheus());
    let mut r = registry();
    r.incr("scan.probes", "r0");
    let b = write_temp("blessed-b.prom", &r.to_prometheus());
    let config = write_temp("blessed.toml", "[\"scan.probes\"]\nrel = 0.05\n");
    let out = teldiff(&[
        "--config",
        config.to_str().expect("path"),
        a.to_str().expect("path"),
        b.to_str().expect("path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok"), "{stdout}");
    assert!(!stdout.contains("BREACH"), "{stdout}");
}

#[test]
fn csv_and_prom_of_the_same_run_agree() {
    let a = write_temp("cross.prom", &registry().to_prometheus());
    let b = write_temp("cross.csv", &registry().to_csv());
    let out = teldiff(&[a.to_str().expect("path"), b.to_str().expect("path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn quiet_suppresses_the_report() {
    let a = write_temp("quiet-a.prom", &registry().to_prometheus());
    let mut r = registry();
    r.incr("brand.new", "x");
    let b = write_temp("quiet-b.prom", &r.to_prometheus());
    let out = teldiff(&[
        "--quiet",
        a.to_str().expect("path"),
        b.to_str().expect("path"),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(out.stdout.is_empty());
}

#[test]
fn usage_and_io_errors_exit_one() {
    let out = teldiff(&["only-one-path"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let a = write_temp("errors-a.prom", &registry().to_prometheus());
    let out = teldiff(&[a.to_str().expect("path"), "/definitely/not/a/file"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("teldiff:"));
    let bad = write_temp("errors-bad.prom", "# TYPE m gauge\n");
    let out = teldiff(&[a.to_str().expect("path"), bad.to_str().expect("path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}
