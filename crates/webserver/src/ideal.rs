//! The paper's recommended server behavior (§8, recommendation 2).
//!
//! "Web server software should pre-fetch OCSP responses from the OCSP
//! responders on a regular basis even if there are no clients who have
//! attempted to make TLS connections. This will help reduce unnecessary
//! latency to clients during their TLS handshakes and cope with
//! intermittent unavailability and errors of OCSP responders."
//!
//! [`Ideal`] prefetches on `tick`, refreshes when half the validity
//! window has elapsed, retries (with backoff bounded by the tick cadence)
//! while the responder is down, retains the old response through errors,
//! and never staples an expired or error response.

use crate::fetcher::{FetchOutcome, OcspFetcher};
use crate::server::{CachedStaple, ServerKind, SiteConfig, StaplingServer};
use asn1::Time;
use telemetry::{catalog, Registry};
use tls::ServerFlight;

/// The recommended model.
pub struct Ideal {
    site: SiteConfig,
    cache: Option<CachedStaple>,
    telemetry: Registry,
}

impl Ideal {
    /// A server for `site`.
    pub fn new(site: SiteConfig) -> Ideal {
        Ideal {
            site,
            cache: None,
            telemetry: Registry::new(),
        }
    }

    fn needs_refresh(&self, now: Time) -> bool {
        match &self.cache {
            None => true,
            Some(c) => match c.next_update {
                // Refresh once past the midpoint of the validity window.
                Some(nu) => {
                    let midpoint = c.fetched_at + (nu - c.fetched_at) / 2;
                    now >= midpoint
                }
                None => false,
            },
        }
    }

    /// `fetch_metric` distinguishes timer-driven prefetches from the
    /// serve-path safety net in the telemetry.
    fn refresh(&mut self, now: Time, fetcher: &mut dyn OcspFetcher, fetch_metric: &str) {
        if !self.needs_refresh(now) {
            return;
        }
        self.telemetry.incr(fetch_metric, "Ideal");
        if let FetchOutcome::Fetched { body, .. } = fetcher.fetch(now) {
            let fresh = CachedStaple::from_fetch(body, now);
            if fresh.is_successful_response && fresh.ocsp_fresh(now) {
                self.cache = Some(fresh);
                self.telemetry
                    .incr(catalog::WEBSERVER_STAPLE_INSTALL, "Ideal");
            } else {
                // Error responses and stale responses are ignored; the
                // old staple stays.
                self.telemetry
                    .incr(catalog::WEBSERVER_STAPLE_REJECT_ERROR, "Ideal");
            }
        } else {
            // Unreachable: old staple stays; the next tick retries.
            self.telemetry
                .incr(catalog::WEBSERVER_STAPLE_RETAIN, "Ideal");
        }
    }
}

impl StaplingServer for Ideal {
    fn kind(&self) -> ServerKind {
        ServerKind::Ideal
    }

    fn serve(&mut self, now: Time, fetcher: &mut dyn OcspFetcher) -> ServerFlight {
        // Safety net: if ticks never ran (misconfigured deployment),
        // behave like a prefetch that happens to occur now, in the
        // background (never stall, never fail closed beyond this one
        // connection).
        if self.cache.is_none() {
            self.refresh(now, fetcher, catalog::WEBSERVER_FETCH_BACKGROUND);
        }
        // Never staple an expired response.
        let staple = self
            .cache
            .as_ref()
            .filter(|c| c.ocsp_fresh(now))
            .map(|c| c.body.clone());
        if staple.is_some() {
            self.telemetry.incr(catalog::WEBSERVER_CACHE_HIT, "Ideal");
        }
        self.site.flight(staple, 0.0)
    }

    fn tick(&mut self, now: Time, fetcher: &mut dyn OcspFetcher) {
        self.refresh(now, fetcher, catalog::WEBSERVER_PREFETCH);
    }

    fn telemetry(&self) -> Option<&Registry> {
        Some(&self.telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetcher::ScriptedFetcher;
    use crate::testutil::{expired_staple_at, fixture, staple_bytes, try_later_bytes};

    fn t0() -> Time {
        Time::from_civil(2018, 6, 1, 0, 0, 0)
    }

    #[test]
    fn prefetches_before_first_connection() {
        let f = fixture(41);
        let mut server = Ideal::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::always(staple_bytes(&f, t0()));
        server.tick(t0(), &mut fetcher);
        let flight = server.serve(t0() + 60, &mut fetcher);
        assert!(flight.stapled_ocsp.is_some(), "first client is stapled");
        assert_eq!(flight.stall_ms, 0.0, "without any stall");
        assert_eq!(fetcher.attempts(), 1);
    }

    #[test]
    fn refreshes_ahead_of_expiry() {
        let f = fixture(42);
        let mut server = Ideal::new(f.site.clone());
        let first = expired_staple_at(&f, t0(), 7_200);
        let second = expired_staple_at(&f, t0() + 3_700, 7_200);
        let mut fetcher = ScriptedFetcher::new(vec![
            FetchOutcome::Fetched {
                body: first,
                latency_ms: 50.0,
            },
            FetchOutcome::Fetched {
                body: second,
                latency_ms: 50.0,
            },
        ]);
        server.tick(t0(), &mut fetcher);
        // Past the midpoint (t0+3600) the next tick refreshes.
        server.tick(t0() + 3_700, &mut fetcher);
        assert_eq!(fetcher.attempts(), 2);
        let flight = server.serve(t0() + 7_300, &mut fetcher); // old would have expired
        assert!(flight.stapled_ocsp.is_some());
    }

    #[test]
    fn retains_through_outages_and_never_staples_expired() {
        let f = fixture(43);
        let mut server = Ideal::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::new(vec![
            FetchOutcome::Fetched {
                body: expired_staple_at(&f, t0(), 7_200),
                latency_ms: 50.0,
            },
            FetchOutcome::Unreachable {
                latency_ms: 1_000.0,
            },
        ]);
        server.tick(t0(), &mut fetcher);
        server.tick(t0() + 4_000, &mut fetcher); // refresh fails
                                                 // Still valid: staple retained.
        assert!(server
            .serve(t0() + 5_000, &mut fetcher)
            .stapled_ocsp
            .is_some());
        // After expiry with the responder still down: no staple, but
        // crucially also no expired staple.
        let flight = server.serve(t0() + 8_000, &mut fetcher);
        assert_eq!(flight.stapled_ocsp, None);
    }

    #[test]
    fn never_installs_error_responses() {
        let f = fixture(44);
        let mut server = Ideal::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::new(vec![
            FetchOutcome::Fetched {
                body: expired_staple_at(&f, t0(), 7_200),
                latency_ms: 50.0,
            },
            FetchOutcome::Fetched {
                body: try_later_bytes(),
                latency_ms: 50.0,
            },
        ]);
        server.tick(t0(), &mut fetcher);
        server.tick(t0() + 4_000, &mut fetcher); // tryLater ignored
        let staple = server
            .serve(t0() + 5_000, &mut fetcher)
            .stapled_ocsp
            .unwrap();
        let parsed = ocsp::OcspResponse::from_der(&staple).unwrap();
        assert_eq!(parsed.status, ocsp::ResponseStatus::Successful);
    }
}
