//! The §7.2 web-server test suite — regenerates Table 3.
//!
//! The paper's harness: a controlled CA + OCSP responder, a certificate
//! with the Must-Staple extension, and four controlled experiments per
//! server implementation. This module is that harness as a library.

use crate::fetcher::{FetchOutcome, FnFetcher, OcspFetcher, ScriptedFetcher};
use crate::server::{CachedStaple, ServerKind, SiteConfig, StaplingServer};
use asn1::Time;
use ocsp::{CertId, OcspRequest, Responder, ResponderProfile};
use pki::{CertificateAuthority, IssueParams};
use rand::{rngs::StdRng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// How a server treats its first-ever client (the prefetch experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchBehavior {
    /// A staple was ready before the first connection (paper: neither
    /// Apache nor Nginx; the §8 recommendation).
    Prefetches,
    /// The first handshake stalls while the response is fetched (Apache).
    PausesConnection,
    /// The first client simply gets no staple (Nginx).
    NoResponse,
}

impl PrefetchBehavior {
    /// Table cell rendering, matching the paper's notation.
    pub fn cell(self) -> &'static str {
        match self {
            PrefetchBehavior::Prefetches => "\u{2713}",
            PrefetchBehavior::PausesConnection => "\u{2717} (pause conn.)",
            PrefetchBehavior::NoResponse => "\u{2717} (provide no resp.)",
        }
    }
}

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table3Row {
    /// Which server.
    pub server: ServerKind,
    /// Prefetch experiment result.
    pub prefetch: PrefetchBehavior,
    /// Does the server cache OCSP responses at all?
    pub caches: bool,
    /// Does it stop serving a response once its `nextUpdate` passes?
    pub respects_next_update: bool,
    /// Does it keep a valid cached response when a refresh fails?
    pub retains_on_error: bool,
    /// Telemetry merged from the four experiments' server instances, in
    /// experiment order (prefetch, cache, nextUpdate, error).
    pub telemetry: telemetry::Registry,
}

/// The controlled environment: CA + Must-Staple site + live responder.
pub struct TestBench {
    ca: CertificateAuthority,
    cert_id: CertId,
    /// The site configuration servers under test present.
    pub site: SiteConfig,
    t0: Time,
}

impl TestBench {
    /// Build the bench (deterministic from `seed`).
    pub fn new(seed: u64, t0: Time) -> TestBench {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ca =
            CertificateAuthority::new_root(&mut rng, "Bench CA", "Bench Root", "bench.test", t0);
        let leaf = ca.issue(
            &mut rng,
            &IssueParams::new("bench.example", t0).must_staple(true),
        );
        let cert_id = CertId::for_certificate(&leaf, ca.certificate());
        let site = SiteConfig {
            chain: vec![leaf, ca.certificate().clone()],
        };
        TestBench {
            ca,
            cert_id,
            site,
            t0,
        }
    }

    /// Start of the bench's timeline.
    pub fn t0(&self) -> Time {
        self.t0
    }

    /// The bench CA (for experiments that drive the responder directly).
    pub fn ca(&self) -> &CertificateAuthority {
        &self.ca
    }

    /// The CertID of the bench site's certificate.
    pub fn cert_id(&self) -> &CertId {
        &self.cert_id
    }

    /// A fetcher wired to a live healthy responder with `validity_secs`
    /// of validity and zero margin, generating fresh responses at fetch
    /// time.
    pub fn live_fetcher(&self, validity_secs: i64) -> FnFetcher {
        let responder = Rc::new(RefCell::new(Responder::new(
            "http://ocsp.bench.test/",
            ResponderProfile::healthy()
                .margin(0)
                .validity(validity_secs),
        )));
        let ca = self.ca.clone();
        let id = self.cert_id.clone();
        FnFetcher::new(move |now| {
            let body = responder
                .borrow_mut()
                .handle(&ca, &OcspRequest::single(id.clone()), now);
            FetchOutcome::Fetched {
                body,
                latency_ms: 80.0,
            }
        })
    }

    /// One pre-generated healthy staple body (7-day validity).
    pub fn staple_at(&self, now: Time, validity_secs: i64) -> Vec<u8> {
        let mut responder = Responder::new(
            "http://ocsp.bench.test/",
            ResponderProfile::healthy()
                .margin(0)
                .validity(validity_secs),
        );
        responder.handle(&self.ca, &OcspRequest::single(self.cert_id.clone()), now)
    }
}

/// Run all four Table 3 experiments against servers produced by `make`.
/// Each experiment gets a fresh server instance.
pub fn run_table3_experiments<S: StaplingServer>(
    bench: &TestBench,
    make: impl Fn(SiteConfig) -> S,
) -> Table3Row {
    let kind = make(bench.site.clone()).kind();
    let mut telemetry = telemetry::Registry::new();
    let (prefetch, t1) = prefetch_experiment(bench, &make);
    let (caches, t2) = cache_experiment(bench, &make);
    let (respects_next_update, t3) = next_update_experiment(bench, &make);
    let (retains_on_error, t4) = error_experiment(bench, &make);
    for t in [t1, t2, t3, t4].iter().flatten() {
        telemetry.merge(t);
    }
    Table3Row {
        server: kind,
        prefetch,
        caches,
        respects_next_update,
        retains_on_error,
        telemetry,
    }
}

/// Experiment 1: is a staple ready for the very first client, and at
/// what cost?
fn prefetch_experiment<S: StaplingServer>(
    bench: &TestBench,
    make: &impl Fn(SiteConfig) -> S,
) -> (PrefetchBehavior, Option<telemetry::Registry>) {
    let mut server = make(bench.site.clone());
    let mut fetcher = bench.live_fetcher(7 * 86_400);
    let t0 = bench.t0();
    // Give prefetching implementations their timers.
    server.tick(t0, &mut fetcher);
    server.tick(t0 + 60, &mut fetcher);
    let flight = server.serve(t0 + 120, &mut fetcher);
    let behavior = match (&flight.stapled_ocsp, flight.stall_ms > 0.0) {
        (Some(_), false) => {
            // Stapled without stalling — but was it *pre*-fetched, or
            // fetched in background during this serve? Distinguish by
            // whether a fetch happened before the serve.
            if fetcher.attempts() >= 1 && flight.stall_ms == 0.0 {
                PrefetchBehavior::Prefetches
            } else {
                PrefetchBehavior::NoResponse
            }
        }
        (Some(_), true) => PrefetchBehavior::PausesConnection,
        (None, _) => PrefetchBehavior::NoResponse,
    };
    (behavior, server.telemetry().cloned())
}

/// Experiment 2: are responses cached across connections?
fn cache_experiment<S: StaplingServer>(
    bench: &TestBench,
    make: &impl Fn(SiteConfig) -> S,
) -> (bool, Option<telemetry::Registry>) {
    let mut server = make(bench.site.clone());
    let mut fetcher = bench.live_fetcher(7 * 86_400);
    let t0 = bench.t0();
    // Warm: tick + two serves.
    server.tick(t0, &mut fetcher);
    server.serve(t0 + 1, &mut fetcher);
    server.serve(t0 + 2, &mut fetcher);
    let warm_attempts = fetcher.attempts();
    // Two more connections shortly after must not refetch.
    server.serve(t0 + 30, &mut fetcher);
    server.serve(t0 + 60, &mut fetcher);
    (
        fetcher.attempts() == warm_attempts,
        server.telemetry().cloned(),
    )
}

/// Experiment 3: once `nextUpdate` passes, do clients stop receiving the
/// stale response? Uses a 10-minute validity (shorter than Apache's
/// 1-hour cache) and probes 30 minutes in.
fn next_update_experiment<S: StaplingServer>(
    bench: &TestBench,
    make: &impl Fn(SiteConfig) -> S,
) -> (bool, Option<telemetry::Registry>) {
    let mut server = make(bench.site.clone());
    let mut fetcher = bench.live_fetcher(600);
    let t0 = bench.t0();
    server.tick(t0, &mut fetcher);
    server.serve(t0 + 1, &mut fetcher);
    server.serve(t0 + 2, &mut fetcher);
    // 30 minutes later the original response is long expired. Give the
    // server two connection-driven refresh opportunities, then judge the
    // staple the third client receives.
    let late = t0 + 1_800;
    server.serve(late, &mut fetcher);
    server.tick(late + 30, &mut fetcher);
    server.serve(late + 60, &mut fetcher);
    let flight = server.serve(late + 90, &mut fetcher);
    let respects = match flight.stapled_ocsp {
        None => true, // refusing to staple an expired response also respects it
        Some(body) => {
            let cached = CachedStaple::from_fetch(body, late + 90);
            cached.ocsp_fresh(late + 90)
        }
    };
    (respects, server.telemetry().cloned())
}

/// Experiment 4: when a refresh fails, is the old (still valid) response
/// retained? Uses a 2-hour validity and kills the responder after the
/// first fetch; probes at t0+4000 (inside the original validity).
fn error_experiment<S: StaplingServer>(
    bench: &TestBench,
    make: &impl Fn(SiteConfig) -> S,
) -> (bool, Option<telemetry::Registry>) {
    let mut server = make(bench.site.clone());
    let t0 = bench.t0();
    let mut fetcher = ScriptedFetcher::new(vec![
        FetchOutcome::Fetched {
            body: bench.staple_at(t0, 7_200),
            latency_ms: 80.0,
        },
        FetchOutcome::Unreachable {
            latency_ms: 2_000.0,
        },
    ]);
    server.tick(t0, &mut fetcher);
    server.serve(t0 + 1, &mut fetcher);
    server.serve(t0 + 2, &mut fetcher);
    // Probe inside the original validity, but past Apache's cache
    // timeout and inside Nginx's refresh-ahead window, with the
    // responder down.
    let probe = t0 + 4_000;
    server.tick(probe, &mut fetcher);
    server.serve(probe + 1, &mut fetcher);
    let flight = server.serve(probe + 2, &mut fetcher);
    (flight.stapled_ocsp.is_some(), server.telemetry().cloned())
}

/// One Table 3 line: a label plus how to render a row's cell for it.
type Table3Line = (&'static str, Box<dyn Fn(&Table3Row) -> String>);

/// Render rows in the paper's Table 3 layout.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Experiment                      ");
    for row in rows {
        out.push_str(&format!("| {:22} ", row.server.name()));
    }
    out.push('\n');
    let mark = |b: bool| if b { "\u{2713}" } else { "\u{2717}" };
    let lines: Vec<Table3Line> = vec![
        (
            "Prefetch OCSP response",
            Box::new(|r: &Table3Row| r.prefetch.cell().to_string()),
        ),
        (
            "Cache OCSP response",
            Box::new(move |r: &Table3Row| mark(r.caches).to_string()),
        ),
        (
            "Respect nextUpdate in cache",
            Box::new(move |r: &Table3Row| mark(r.respects_next_update).to_string()),
        ),
        (
            "Retain OCSP response on error",
            Box::new(move |r: &Table3Row| mark(r.retains_on_error).to_string()),
        ),
    ];
    for (label, cell) in lines {
        out.push_str(&format!("{label:32}"));
        for row in rows {
            out.push_str(&format!("| {:22} ", cell(row)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Apache, Ideal, Nginx};

    fn bench() -> TestBench {
        TestBench::new(77, Time::from_civil(2018, 6, 1, 0, 0, 0))
    }

    #[test]
    fn apache_row_matches_paper() {
        let b = bench();
        let row = run_table3_experiments(&b, Apache::new);
        assert_eq!(row.prefetch, PrefetchBehavior::PausesConnection);
        assert!(row.caches);
        assert!(!row.respects_next_update);
        assert!(!row.retains_on_error);
    }

    #[test]
    fn nginx_row_matches_paper() {
        let b = bench();
        let row = run_table3_experiments(&b, Nginx::new);
        assert_eq!(row.prefetch, PrefetchBehavior::NoResponse);
        assert!(row.caches);
        assert!(row.respects_next_update);
        assert!(row.retains_on_error);
    }

    #[test]
    fn ideal_row_is_all_green() {
        let b = bench();
        let row = run_table3_experiments(&b, Ideal::new);
        assert_eq!(row.prefetch, PrefetchBehavior::Prefetches);
        assert!(row.caches);
        assert!(row.respects_next_update);
        assert!(row.retains_on_error);
    }

    #[test]
    fn rows_carry_server_telemetry() {
        let b = bench();
        let apache = run_table3_experiments(&b, Apache::new);
        // Apache's cache experiment serves warm connections from cache,
        // and every miss is a synchronous (handshake-pausing) fetch.
        assert!(apache.telemetry.counter("webserver.cache.hit", "Apache") > 0);
        assert_eq!(
            apache.telemetry.counter("webserver.cache.miss", "Apache"),
            apache.telemetry.counter("webserver.fetch.sync", "Apache")
        );
        // The error experiment's failed refresh drops the old staple.
        assert!(apache.telemetry.counter("webserver.staple.drop", "Apache") > 0);

        let nginx = run_table3_experiments(&b, Nginx::new);
        // Nginx's first client per experiment gets no staple.
        assert!(nginx.telemetry.counter("webserver.staple.none", "Nginx") > 0);
        // The error experiment retains the old staple on failure.
        assert!(nginx.telemetry.counter("webserver.staple.retain", "Nginx") > 0);

        let ideal = run_table3_experiments(&b, Ideal::new);
        // Ideal prefetches from tick, never from the serve path.
        assert!(ideal.telemetry.counter("webserver.prefetch", "Ideal") > 0);
        assert_eq!(
            ideal
                .telemetry
                .counter("webserver.fetch.background", "Ideal"),
            0
        );
    }

    #[test]
    fn table_renders_both_servers() {
        let b = bench();
        let rows = vec![
            run_table3_experiments(&b, Apache::new),
            run_table3_experiments(&b, Nginx::new),
        ];
        let table = render_table3(&rows);
        assert!(table.contains("Apache"));
        assert!(table.contains("Nginx"));
        assert!(table.contains("pause conn."));
        assert!(table.contains("provide no resp."));
    }
}
