//! Web-server OCSP Stapling models.
//!
//! §7.2 of the paper tests how Apache 2.4.18 and Nginx 1.13.12 implement
//! OCSP Stapling, across four behaviors (its Table 3):
//!
//! | Experiment                     | Apache            | Nginx              |
//! |--------------------------------|-------------------|--------------------|
//! | Prefetch OCSP response         | ✗ (pauses conn.)  | ✗ (no response)    |
//! | Cache OCSP response            | ✓                 | ✓                  |
//! | Respect `nextUpdate` in cache  | ✗                 | ✓                  |
//! | Retain OCSP response on error  | ✗                 | ✓                  |
//!
//! [`apache::Apache`] and [`nginx::Nginx`] are faithful state machines
//! for those measured behaviors; [`ideal::Ideal`] implements the paper's
//! §8 recommendation (pre-fetch on a schedule, refresh ahead of expiry,
//! retain on error). [`experiment`] is the §7.2 test harness itself — it
//! regenerates Table 3 against any [`StaplingServer`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod apache;
pub mod experiment;
pub mod fetcher;
pub mod ideal;
pub mod multistaple;
pub mod nginx;
pub mod server;

#[cfg(test)]
mod testutil;

pub use apache::Apache;
pub use experiment::{run_table3_experiments, Table3Row};
pub use fetcher::{FetchOutcome, FnFetcher, OcspFetcher, ScriptedFetcher};
pub use ideal::Ideal;
pub use multistaple::{verify_multi_staple, MultiIdeal, MultiStapleError};
pub use nginx::Nginx;
pub use server::{ServerKind, StaplingServer};
