//! The server-model interface and shared staple-cache plumbing.

use crate::fetcher::OcspFetcher;
use asn1::Time;
use ocsp::{OcspResponse, ResponseStatus};
use pki::Certificate;
use tls::ServerFlight;

/// Which model a server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// Apache httpd 2.4.18 (mod_ssl stapling).
    Apache,
    /// Nginx 1.13.12.
    Nginx,
    /// The paper's §8 recommendation.
    Ideal,
}

impl ServerKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ServerKind::Apache => "Apache",
            ServerKind::Nginx => "Nginx",
            ServerKind::Ideal => "Ideal",
        }
    }
}

/// A web server with OCSP Stapling, modeled at the staple-cache level.
pub trait StaplingServer {
    /// Which model this is.
    fn kind(&self) -> ServerKind;

    /// Handle one TLS connection at `now`. The server may consult its
    /// staple cache and/or the fetcher; the returned flight carries the
    /// chain, the staple (if any), and any handshake stall it imposed.
    fn serve(&mut self, now: Time, fetcher: &mut dyn OcspFetcher) -> ServerFlight;

    /// Background maintenance at `now` (prefetch/refresh timers). Models
    /// without background behavior ignore this.
    fn tick(&mut self, now: Time, fetcher: &mut dyn OcspFetcher);

    /// The server's telemetry registry (prefetches, cache hits, refresh
    /// clamps, staple installs/drops). Models that do not record
    /// telemetry return `None`.
    fn telemetry(&self) -> Option<&telemetry::Registry> {
        None
    }
}

/// A cached staple plus the metadata servers key their decisions on.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedStaple {
    /// The raw bytes served in CertificateStatus.
    pub body: Vec<u8>,
    /// When the fetch that produced it completed.
    pub fetched_at: Time,
    /// The response's `nextUpdate`, if it parsed and had one.
    pub next_update: Option<Time>,
    /// Whether the body parsed as a *successful* OCSP response.
    pub is_successful_response: bool,
}

impl CachedStaple {
    /// Inspect freshly fetched bytes.
    pub fn from_fetch(body: Vec<u8>, fetched_at: Time) -> CachedStaple {
        let parsed = OcspResponse::from_der(&body).ok();
        let (next_update, is_successful_response) = match &parsed {
            Some(resp) if resp.status == ResponseStatus::Successful => {
                let nu = resp
                    .basic
                    .as_ref()
                    .and_then(|b| b.responses.first())
                    .and_then(|sr| sr.next_update);
                (nu, true)
            }
            _ => (None, false),
        };
        CachedStaple {
            body,
            fetched_at,
            next_update,
            is_successful_response,
        }
    }

    /// Whether the *OCSP-level* validity window still covers `now`
    /// (blank `nextUpdate` never expires).
    pub fn ocsp_fresh(&self, now: Time) -> bool {
        self.next_update.is_none_or(|nu| now <= nu)
    }
}

/// Shared certificate configuration for a simulated server.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// The chain the server presents, leaf first.
    pub chain: Vec<Certificate>,
}

impl SiteConfig {
    /// Build a flight with an optional staple and stall.
    pub fn flight(&self, staple: Option<Vec<u8>>, stall_ms: f64) -> ServerFlight {
        ServerFlight::new(self.chain.clone(), staple, stall_ms)
    }
}
