//! Shared fixtures for the server-model tests.
#![allow(missing_docs)]

use crate::server::SiteConfig;
use asn1::Time;
use ocsp::{CertId, OcspRequest, OcspResponse, Responder, ResponderProfile, ResponseStatus};
use pki::{CertificateAuthority, IssueParams};
use rand::{rngs::StdRng, SeedableRng};

pub struct Fixture {
    pub ca: CertificateAuthority,
    pub id: CertId,
    pub site: SiteConfig,
}

pub fn fixture(seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let now = Time::from_civil(2018, 6, 1, 0, 0, 0);
    let mut ca = CertificateAuthority::new_root(&mut rng, "CA", "Root", "ca.test", now);
    let leaf = ca.issue(
        &mut rng,
        &IssueParams::new("site.example", now).must_staple(true),
    );
    let id = CertId::for_certificate(&leaf, ca.certificate());
    let site = SiteConfig {
        chain: vec![leaf.clone(), ca.certificate().clone()],
    };
    Fixture { ca, id, site }
}

/// Healthy 7-day-validity response bytes generated at `now`.
pub fn staple_bytes(f: &Fixture, now: Time) -> Vec<u8> {
    let mut responder = Responder::new("u", ResponderProfile::healthy());
    responder.handle(&f.ca, &OcspRequest::single(f.id.clone()), now)
}

/// Response bytes whose validity is only `validity_secs` (zero margin so
/// the window starts exactly at `now`).
pub fn expired_staple_at(f: &Fixture, now: Time, validity_secs: i64) -> Vec<u8> {
    let mut responder = Responder::new(
        "u",
        ResponderProfile::healthy()
            .margin(0)
            .validity(validity_secs),
    );
    responder.handle(&f.ca, &OcspRequest::single(f.id.clone()), now)
}

/// A `tryLater` OCSP error response body.
pub fn try_later_bytes() -> Vec<u8> {
    OcspResponse::error(ResponseStatus::TryLater).to_der()
}
