//! The Apache 2.4.18 stapling model.
//!
//! Measured behaviors (§7.2 and Table 3):
//!
//! * **No prefetch** — the first connection using a certificate triggers
//!   a synchronous fetch; Apache *pauses the TLS handshake* until the
//!   OCSP response arrives, so the first client eats the fetch latency.
//! * **Caches** — subsequent connections are served from a cache
//!   (`SSLStaplingStandardCacheTimeout`, default 3 600 s).
//! * **Does not respect `nextUpdate`** — the cache key is its own
//!   timeout, so expired OCSP responses keep being stapled until the
//!   *Apache* cache entry lapses (the Bugzilla #62400 bug the authors
//!   filed).
//! * **Does not retain on error** — on a failed refresh it deletes the
//!   old (still valid!) response: an unreachable responder yields *no*
//!   staple, and an OCSP error response (e.g. `tryLater`) is stapled
//!   *itself* to clients.

use crate::fetcher::{FetchOutcome, OcspFetcher};
use crate::server::{CachedStaple, ServerKind, SiteConfig, StaplingServer};
use asn1::Time;
use telemetry::{catalog, Registry};
use tls::ServerFlight;

/// Default `SSLStaplingStandardCacheTimeout` in seconds.
pub const APACHE_CACHE_TIMEOUT: i64 = 3_600;

/// The Apache model.
pub struct Apache {
    site: SiteConfig,
    cache: Option<CachedStaple>,
    cache_timeout: i64,
    telemetry: Registry,
}

impl Apache {
    /// A server for `site` with the default cache timeout.
    pub fn new(site: SiteConfig) -> Apache {
        Apache {
            site,
            cache: None,
            cache_timeout: APACHE_CACHE_TIMEOUT,
            telemetry: Registry::new(),
        }
    }

    /// Override the cache timeout (test hook).
    pub fn with_cache_timeout(mut self, secs: i64) -> Apache {
        self.cache_timeout = secs;
        self
    }

    /// Whether the Apache-level cache entry is live at `now`.
    /// Note this consults `fetched_at + timeout`, *not* the OCSP
    /// `nextUpdate` — that is the bug.
    fn cache_live(&self, now: Time) -> bool {
        self.cache
            .as_ref()
            .is_some_and(|c| now < c.fetched_at + self.cache_timeout)
    }

    fn refresh(&mut self, now: Time, fetcher: &mut dyn OcspFetcher) -> f64 {
        match fetcher.fetch(now) {
            FetchOutcome::Fetched { body, latency_ms } => {
                // Whatever came back gets cached and stapled — even an
                // OCSP error response.
                self.cache = Some(CachedStaple::from_fetch(body, now));
                self.telemetry
                    .incr(catalog::WEBSERVER_STAPLE_INSTALL, "Apache");
                latency_ms
            }
            FetchOutcome::Unreachable { latency_ms } => {
                // The old response — even if still valid — is discarded.
                self.cache = None;
                self.telemetry
                    .incr(catalog::WEBSERVER_STAPLE_DROP, "Apache");
                latency_ms
            }
        }
    }
}

impl StaplingServer for Apache {
    fn kind(&self) -> ServerKind {
        ServerKind::Apache
    }

    fn serve(&mut self, now: Time, fetcher: &mut dyn OcspFetcher) -> ServerFlight {
        if self.cache_live(now) {
            self.telemetry.incr(catalog::WEBSERVER_CACHE_HIT, "Apache");
            let body = self.cache.as_ref().unwrap().body.clone();
            return self.site.flight(Some(body), 0.0);
        }
        // Cache miss (first connection or Apache-cache expiry): fetch
        // synchronously, pausing this handshake.
        self.telemetry.incr(catalog::WEBSERVER_CACHE_MISS, "Apache");
        self.telemetry.incr(catalog::WEBSERVER_FETCH_SYNC, "Apache");
        let stall_ms = self.refresh(now, fetcher);
        let staple = self.cache.as_ref().map(|c| c.body.clone());
        self.site.flight(staple, stall_ms)
    }

    fn tick(&mut self, _now: Time, _fetcher: &mut dyn OcspFetcher) {
        // Apache does no background prefetching.
    }

    fn telemetry(&self) -> Option<&Registry> {
        Some(&self.telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetcher::ScriptedFetcher;
    use crate::testutil::{expired_staple_at, fixture, staple_bytes, try_later_bytes};

    fn t0() -> Time {
        Time::from_civil(2018, 6, 1, 0, 0, 0)
    }

    #[test]
    fn first_connection_pauses_and_staples() {
        let f = fixture(21);
        let mut server = Apache::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::always(staple_bytes(&f, t0()));
        let flight = server.serve(t0(), &mut fetcher);
        assert!(flight.stapled_ocsp.is_some());
        assert!(flight.stall_ms > 0.0, "Apache pauses the first handshake");
        assert_eq!(fetcher.attempts(), 1);
    }

    #[test]
    fn second_connection_is_cached_and_fast() {
        let f = fixture(22);
        let mut server = Apache::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::always(staple_bytes(&f, t0()));
        server.serve(t0(), &mut fetcher);
        let flight = server.serve(t0() + 60, &mut fetcher);
        assert!(flight.stapled_ocsp.is_some());
        assert_eq!(flight.stall_ms, 0.0);
        assert_eq!(fetcher.attempts(), 1, "served from cache");
    }

    #[test]
    fn serves_expired_response_from_cache() {
        // Bugzilla #62400: response with a 10-minute validity; Apache's
        // own cache lives an hour, so minutes 10–60 staple an expired
        // response.
        let f = fixture(23);
        let mut server = Apache::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::always(expired_staple_at(&f, t0(), 600));
        server.serve(t0(), &mut fetcher);
        let at = t0() + 1_800; // OCSP-expired, Apache-cache still live
        let flight = server.serve(at, &mut fetcher);
        let staple = flight.stapled_ocsp.expect("still staples");
        let cached = CachedStaple::from_fetch(staple, at);
        assert!(
            !cached.ocsp_fresh(at),
            "the staple Apache serves is expired"
        );
        assert_eq!(fetcher.attempts(), 1);
    }

    #[test]
    fn drops_valid_response_when_responder_unreachable() {
        let f = fixture(24);
        let mut server = Apache::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::new(vec![
            FetchOutcome::Fetched {
                body: staple_bytes(&f, t0()),
                latency_ms: 50.0,
            },
            FetchOutcome::Unreachable {
                latency_ms: 1_000.0,
            },
        ]);
        server.serve(t0(), &mut fetcher);
        // Apache cache expires; the refetch fails; the old, still-valid
        // (7-day) response is gone.
        let flight = server.serve(t0() + APACHE_CACHE_TIMEOUT + 1, &mut fetcher);
        assert_eq!(flight.stapled_ocsp, None, "old valid staple was discarded");
    }

    #[test]
    fn staples_error_responses() {
        let f = fixture(25);
        let mut server = Apache::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::new(vec![
            FetchOutcome::Fetched {
                body: staple_bytes(&f, t0()),
                latency_ms: 50.0,
            },
            FetchOutcome::Fetched {
                body: try_later_bytes(),
                latency_ms: 50.0,
            },
        ]);
        server.serve(t0(), &mut fetcher);
        let flight = server.serve(t0() + APACHE_CACHE_TIMEOUT + 1, &mut fetcher);
        let staple = flight
            .stapled_ocsp
            .expect("Apache staples the error itself");
        let parsed = ocsp::OcspResponse::from_der(&staple).unwrap();
        assert_eq!(parsed.status, ocsp::ResponseStatus::TryLater);
    }

    #[test]
    fn no_background_prefetch() {
        let f = fixture(26);
        let mut server = Apache::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::always(staple_bytes(&f, t0()));
        server.tick(t0(), &mut fetcher);
        server.tick(t0() + 60, &mut fetcher);
        assert_eq!(fetcher.attempts(), 0);
    }
}
