//! The Nginx 1.13.12 stapling model.
//!
//! Measured behaviors (§7.2 and Table 3):
//!
//! * **No prefetch** — the first connection triggers a *background*
//!   fetch; that first client simply gets **no staple** (so a
//!   Must-Staple-respecting client like Firefox refuses the
//!   connection — the three-year-old bug the paper cites).
//! * **Caches** and **respects `nextUpdate`** — a fresh response is
//!   fetched once the cached one expires…
//! * …but **no more than once every 5 minutes** (the paper's footnote
//!   28): with a validity period under 5 minutes, clients receive
//!   expired cached responses inside the refresh-clamp window.
//! * **Retains on error** — a failed refresh keeps the old response,
//!   which continues to be stapled until it expires.
//!
//! Refresh is modeled with a small refresh-ahead margin (real nginx
//! refetches when its cached staple is about to lapse), which is what
//! makes retain-on-error observable while the old response is still
//! valid.

use crate::fetcher::{FetchOutcome, OcspFetcher};
use crate::server::{CachedStaple, ServerKind, SiteConfig, StaplingServer};
use asn1::Time;
use telemetry::{catalog, Registry};
use tls::ServerFlight;

/// Minimum seconds between refresh attempts (nginx hardcodes 5 minutes).
pub const NGINX_REFRESH_CLAMP: i64 = 300;
/// How far ahead of expiry the model starts trying to refresh.
pub const NGINX_REFRESH_AHEAD: i64 = 3_600;

/// The Nginx model.
pub struct Nginx {
    site: SiteConfig,
    cache: Option<CachedStaple>,
    last_attempt: Option<Time>,
    telemetry: Registry,
}

impl Nginx {
    /// A server for `site`.
    pub fn new(site: SiteConfig) -> Nginx {
        Nginx {
            site,
            cache: None,
            last_attempt: None,
            telemetry: Registry::new(),
        }
    }

    fn clamp_allows(&self, now: Time) -> bool {
        self.last_attempt
            .is_none_or(|t| now - t >= NGINX_REFRESH_CLAMP)
    }

    fn wants_refresh(&self, now: Time) -> bool {
        match &self.cache {
            None => true,
            Some(c) => match c.next_update {
                // Refresh when inside the refresh-ahead window of expiry.
                Some(nu) => now + NGINX_REFRESH_AHEAD >= nu,
                // Blank nextUpdate: nothing to key a refresh on.
                None => false,
            },
        }
    }

    /// Background refresh; on failure the old cache entry is retained.
    fn refresh(&mut self, now: Time, fetcher: &mut dyn OcspFetcher) {
        if !self.wants_refresh(now) {
            return;
        }
        if !self.clamp_allows(now) {
            // Footnote 28: a wanted refresh suppressed by the 5-minute
            // clamp — the window where clients get expired staples.
            self.telemetry
                .incr(catalog::WEBSERVER_REFRESH_CLAMPED, "Nginx");
            return;
        }
        self.last_attempt = Some(now);
        self.telemetry
            .incr(catalog::WEBSERVER_FETCH_BACKGROUND, "Nginx");
        match fetcher.fetch(now) {
            FetchOutcome::Fetched { body, .. } => {
                let fresh = CachedStaple::from_fetch(body, now);
                // Nginx only installs *successful* responses; an OCSP
                // error response leaves the old staple in place.
                if fresh.is_successful_response {
                    self.cache = Some(fresh);
                    self.telemetry
                        .incr(catalog::WEBSERVER_STAPLE_INSTALL, "Nginx");
                } else {
                    self.telemetry
                        .incr(catalog::WEBSERVER_STAPLE_REJECT_ERROR, "Nginx");
                }
            }
            FetchOutcome::Unreachable { .. } => {
                // Retain the old response (Table 3's ✓).
                self.telemetry
                    .incr(catalog::WEBSERVER_STAPLE_RETAIN, "Nginx");
            }
        }
    }
}

impl StaplingServer for Nginx {
    fn kind(&self) -> ServerKind {
        ServerKind::Nginx
    }

    fn serve(&mut self, now: Time, fetcher: &mut dyn OcspFetcher) -> ServerFlight {
        let had_cache = self.cache.is_some();
        // The staple this client gets is whatever is cached *before* the
        // background refresh completes — nginx never stalls a handshake.
        let staple = self.cache.as_ref().map(|c| c.body.clone());
        self.refresh(now, fetcher);
        if !had_cache {
            // First client: no staple at all.
            self.telemetry.incr(catalog::WEBSERVER_STAPLE_NONE, "Nginx");
            return self.site.flight(None, 0.0);
        }
        self.telemetry.incr(catalog::WEBSERVER_CACHE_HIT, "Nginx");
        self.site.flight(staple, 0.0)
    }

    fn tick(&mut self, _now: Time, _fetcher: &mut dyn OcspFetcher) {
        // Nginx 1.13 has no timer-driven prefetch; refreshes piggyback on
        // connections.
    }

    fn telemetry(&self) -> Option<&Registry> {
        Some(&self.telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetcher::ScriptedFetcher;
    use crate::testutil::{expired_staple_at, fixture, staple_bytes, try_later_bytes};

    fn t0() -> Time {
        Time::from_civil(2018, 6, 1, 0, 0, 0)
    }

    #[test]
    fn first_connection_gets_no_staple() {
        let f = fixture(31);
        let mut server = Nginx::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::always(staple_bytes(&f, t0()));
        let flight = server.serve(t0(), &mut fetcher);
        assert_eq!(
            flight.stapled_ocsp, None,
            "nginx's first client gets nothing"
        );
        assert_eq!(flight.stall_ms, 0.0, "and is not stalled");
        assert_eq!(fetcher.attempts(), 1, "fetch happens in the background");
    }

    #[test]
    fn second_connection_is_stapled() {
        let f = fixture(32);
        let mut server = Nginx::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::always(staple_bytes(&f, t0()));
        server.serve(t0(), &mut fetcher);
        let flight = server.serve(t0() + 10, &mut fetcher);
        assert!(flight.stapled_ocsp.is_some());
    }

    #[test]
    fn respects_next_update() {
        // 2-hour validity: after expiry (and outside the clamp), a new
        // response is fetched and the staple advances.
        let f = fixture(33);
        let mut server = Nginx::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::new(vec![
            FetchOutcome::Fetched {
                body: expired_staple_at(&f, t0(), 7_200),
                latency_ms: 50.0,
            },
            FetchOutcome::Fetched {
                body: expired_staple_at(&f, t0() + 8_000, 7_200),
                latency_ms: 50.0,
            },
        ]);
        server.serve(t0(), &mut fetcher); // background fetch #1
        let late = t0() + 8_000; // past the 7200 s validity
        server.serve(late, &mut fetcher); // triggers refresh #2
        let flight = server.serve(late + 1, &mut fetcher);
        let staple = flight.stapled_ocsp.unwrap();
        let cached = CachedStaple::from_fetch(staple, late);
        assert!(cached.ocsp_fresh(late), "nginx refreshed past nextUpdate");
        assert_eq!(fetcher.attempts(), 2);
    }

    #[test]
    fn refresh_clamped_to_five_minutes() {
        // Footnote 28: validity 2 minutes < clamp 5 minutes — clients in
        // the gap get the expired staple.
        let f = fixture(34);
        let mut server = Nginx::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::always(expired_staple_at(&f, t0(), 120));
        server.serve(t0(), &mut fetcher); // background fetch
        let at = t0() + 200; // staple expired at +120, clamp until +300
        let flight = server.serve(at, &mut fetcher);
        let staple = flight.stapled_ocsp.expect("expired staple still served");
        let cached = CachedStaple::from_fetch(staple, at);
        assert!(
            !cached.ocsp_fresh(at),
            "client received an expired response"
        );
        assert_eq!(fetcher.attempts(), 1, "clamp suppressed the refresh");
        // After the clamp lapses, refresh happens.
        server.serve(t0() + 301, &mut fetcher);
        assert_eq!(fetcher.attempts(), 2);
    }

    #[test]
    fn retains_old_staple_when_responder_down() {
        let f = fixture(35);
        let mut server = Nginx::new(f.site.clone());
        // 2-hour validity so the refresh-ahead window opens immediately.
        let mut fetcher = ScriptedFetcher::new(vec![
            FetchOutcome::Fetched {
                body: expired_staple_at(&f, t0(), 7_200),
                latency_ms: 50.0,
            },
            FetchOutcome::Unreachable {
                latency_ms: 1_000.0,
            },
        ]);
        server.serve(t0(), &mut fetcher);
        // Inside refresh-ahead, responder now down.
        let at = t0() + 4_000;
        server.serve(at, &mut fetcher); // refresh attempt fails
        let flight = server.serve(at + 1, &mut fetcher);
        assert!(
            flight.stapled_ocsp.is_some(),
            "the old still-valid staple is retained (Table 3 ✓)"
        );
    }

    #[test]
    fn error_responses_are_not_installed() {
        let f = fixture(36);
        let mut server = Nginx::new(f.site.clone());
        let mut fetcher = ScriptedFetcher::new(vec![
            FetchOutcome::Fetched {
                body: expired_staple_at(&f, t0(), 7_200),
                latency_ms: 50.0,
            },
            FetchOutcome::Fetched {
                body: try_later_bytes(),
                latency_ms: 50.0,
            },
        ]);
        server.serve(t0(), &mut fetcher);
        let at = t0() + 4_000;
        server.serve(at, &mut fetcher); // refresh returns tryLater
        let flight = server.serve(at + 1, &mut fetcher);
        let staple = flight.stapled_ocsp.unwrap();
        let parsed = ocsp::OcspResponse::from_der(&staple).unwrap();
        assert_eq!(
            parsed.status,
            ocsp::ResponseStatus::Successful,
            "nginx keeps the old good response, never staples the error"
        );
    }
}
