//! RFC 6961 multi-stapling — the §2.3 extension.
//!
//! "A client needs to check the revocation status of all certificates on
//! the chain using OCSP, but OCSP Stapling only allows the revocation
//! status for the leaf certificate to be included. There is an extension
//! to OCSP Stapling [RFC 6961] that tries to address this limitation by
//! allowing the server to include multiple certificate statuses in a
//! single response, but it has yet to see wide adoption."
//!
//! [`MultiIdeal`] extends the recommended prefetching server with a
//! staple cache per chain element, so a `status_request_v2` client can
//! verify the *whole chain's* revocation in one handshake — closing the
//! revoked-intermediate blind spot that single stapling leaves open.

use crate::fetcher::{FetchOutcome, OcspFetcher};
use crate::server::{CachedStaple, ServerKind, SiteConfig, StaplingServer};
use asn1::Time;
use tls::ServerFlight;

/// A prefetching server that staples the full chain (RFC 6961).
pub struct MultiIdeal {
    site: SiteConfig,
    /// One cache slot per chain element, leaf first. Elements whose CA
    /// exposes no OCSP (typically the root) stay `None`.
    caches: Vec<Option<CachedStaple>>,
}

impl MultiIdeal {
    /// A server for `site`.
    pub fn new(site: SiteConfig) -> MultiIdeal {
        let n = site.chain.len();
        MultiIdeal {
            site,
            caches: vec![None; n],
        }
    }

    /// Background refresh for every chain element; `fetchers[i]` fetches
    /// the status of chain element `i`. Fewer fetchers than chain
    /// elements is fine — the tail (the root) simply goes unstapled.
    pub fn tick_chain(&mut self, now: Time, fetchers: &mut [&mut dyn OcspFetcher]) {
        for (i, fetcher) in fetchers.iter_mut().enumerate() {
            if i >= self.caches.len() {
                break;
            }
            let needs = match &self.caches[i] {
                None => true,
                Some(c) => match c.next_update {
                    Some(nu) => {
                        let midpoint = c.fetched_at + (nu - c.fetched_at) / 2;
                        now >= midpoint
                    }
                    None => false,
                },
            };
            if !needs {
                continue;
            }
            if let FetchOutcome::Fetched { body, .. } = fetcher.fetch(now) {
                let fresh = CachedStaple::from_fetch(body, now);
                if fresh.is_successful_response && fresh.ocsp_fresh(now) {
                    self.caches[i] = Some(fresh);
                }
            }
        }
    }

    /// The multi-staple list the server would send right now.
    fn multi(&self, now: Time) -> Vec<Option<Vec<u8>>> {
        self.caches
            .iter()
            .map(|slot| {
                slot.as_ref()
                    .filter(|c| c.ocsp_fresh(now))
                    .map(|c| c.body.clone())
            })
            .collect()
    }
}

impl StaplingServer for MultiIdeal {
    fn kind(&self) -> ServerKind {
        ServerKind::Ideal
    }

    fn serve(&mut self, now: Time, fetcher: &mut dyn OcspFetcher) -> ServerFlight {
        // Leaf slot doubles as the classic single staple; keep it fresh
        // through the trait's single-fetcher path too.
        if self.caches[0].is_none() {
            if let FetchOutcome::Fetched { body, .. } = fetcher.fetch(now) {
                let fresh = CachedStaple::from_fetch(body, now);
                if fresh.is_successful_response && fresh.ocsp_fresh(now) {
                    self.caches[0] = Some(fresh);
                }
            }
        }
        let leaf_staple = self.caches[0]
            .as_ref()
            .filter(|c| c.ocsp_fresh(now))
            .map(|c| c.body.clone());
        self.site
            .flight(leaf_staple, 0.0)
            .with_multi_staple(self.multi(now))
    }

    fn tick(&mut self, now: Time, fetcher: &mut dyn OcspFetcher) {
        let mut fetchers: [&mut dyn OcspFetcher; 1] = [fetcher];
        self.tick_chain(now, &mut fetchers);
    }
}

/// Validate a multi-staple transcript: every chain element that *has* a
/// staple must validate against its issuer, and none may be revoked.
/// Returns the number of chain elements covered by a valid staple.
pub fn verify_multi_staple(
    transcript: &tls::Transcript,
    roots: &pki::RootStore,
    now: Time,
) -> Result<usize, MultiStapleError> {
    use ocsp::{validate_response, CertId, CertStatus, ValidationConfig};

    let chain = transcript
        .server_chain()
        .map_err(|_| MultiStapleError::BadTranscript)?;
    let staples = transcript
        .stapled_ocsp_multi()
        .map_err(|_| MultiStapleError::BadTranscript)?
        .ok_or(MultiStapleError::NotSupported)?;

    let mut covered = 0;
    for (i, cert) in chain.iter().enumerate() {
        let Some(Some(staple)) = staples.get(i) else {
            continue;
        };
        // The issuer is the next chain element, or a root from the store.
        let issuer = chain
            .get(i + 1)
            .cloned()
            .or_else(|| roots.find_issuer(cert.issuer()).cloned())
            .ok_or(MultiStapleError::MissingIssuer(i))?;
        let cert_id = CertId::for_certificate(cert, &issuer);
        match validate_response(staple, &cert_id, &issuer, now, ValidationConfig::default()) {
            Ok(v) => match v.status {
                CertStatus::Good | CertStatus::Unknown => covered += 1,
                CertStatus::Revoked { .. } => return Err(MultiStapleError::Revoked(i)),
            },
            Err(_) => return Err(MultiStapleError::InvalidStaple(i)),
        }
    }
    Ok(covered)
}

/// Multi-staple verification failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiStapleError {
    /// Transcript bytes did not parse.
    BadTranscript,
    /// The server did not answer `status_request_v2`.
    NotSupported,
    /// No issuer available for chain element `i`.
    MissingIssuer(usize),
    /// Chain element `i` is revoked.
    Revoked(usize),
    /// Chain element `i`'s staple failed validation.
    InvalidStaple(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetcher::FnFetcher;
    use asn1::Time;
    use ocsp::{CertId, OcspRequest, Responder, ResponderProfile};
    use pki::{CertificateAuthority, IssueParams, RevocationReason, RootStore};
    use rand::{rngs::StdRng, SeedableRng};
    use tls::wire::ClientHello;
    use tls::Transcript;

    fn t0() -> Time {
        Time::from_civil(2018, 6, 10, 0, 0, 0)
    }

    struct Env {
        root: CertificateAuthority,
        inter: CertificateAuthority,
        site: SiteConfig,
        leaf_id: CertId,
        inter_id: CertId,
        roots: RootStore,
    }

    fn env(seed: u64) -> Env {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut root =
            CertificateAuthority::new_root(&mut rng, "Multi", "Multi Root", "mr.test", t0());
        let mut inter = root.issue_intermediate(&mut rng, "Multi", "Multi CA 1", "m1.test", t0());
        let leaf = inter.issue(&mut rng, &IssueParams::new("multi.example", t0()));
        let leaf_id = CertId::for_certificate(&leaf, inter.certificate());
        let inter_id = CertId::for_certificate(inter.certificate(), root.certificate());
        let mut roots = RootStore::new("multi");
        roots.add(root.certificate().clone());
        let site = SiteConfig {
            chain: vec![leaf, inter.certificate().clone()],
        };
        Env {
            root,
            inter,
            site,
            leaf_id,
            inter_id,
            roots,
        }
    }

    fn fetcher_for(ca: &CertificateAuthority, id: &CertId) -> FnFetcher {
        let ca = ca.clone();
        let id = id.clone();
        FnFetcher::new(move |now| {
            let mut responder = Responder::new("u", ResponderProfile::healthy());
            let body = responder.handle(&ca, &OcspRequest::single(id.clone()), now);
            FetchOutcome::Fetched {
                body,
                latency_ms: 20.0,
            }
        })
    }

    fn v2_hello() -> ClientHello {
        let mut hello = ClientHello::new("multi.example", true);
        hello.status_request_v2 = true;
        hello
    }

    #[test]
    fn full_chain_staple_verifies() {
        let e = env(1);
        let mut server = MultiIdeal::new(e.site.clone());
        let mut leaf_f = fetcher_for(&e.inter, &e.leaf_id);
        let mut inter_f = fetcher_for(&e.root, &e.inter_id);
        {
            let mut fetchers: [&mut dyn OcspFetcher; 2] = [&mut leaf_f, &mut inter_f];
            server.tick_chain(t0(), &mut fetchers);
        }
        let flight = server.serve(t0() + 60, &mut leaf_f);
        // Single staple present for v1 clients too.
        assert!(flight.stapled_ocsp.is_some());
        let t = Transcript::record(&v2_hello(), &flight);
        let covered = verify_multi_staple(&t, &e.roots, t0() + 60).unwrap();
        assert_eq!(covered, 2, "leaf and intermediate both covered");
    }

    #[test]
    fn revoked_intermediate_caught_only_by_v2() {
        let mut e = env(2);
        // The root CA revokes the intermediate.
        let inter_serial = e.inter.certificate().serial().clone();
        e.root
            .revoke(&inter_serial, t0(), Some(RevocationReason::CaCompromise));

        let mut server = MultiIdeal::new(e.site.clone());
        let mut leaf_f = fetcher_for(&e.inter, &e.leaf_id);
        let mut inter_f = fetcher_for(&e.root, &e.inter_id);
        {
            let mut fetchers: [&mut dyn OcspFetcher; 2] = [&mut leaf_f, &mut inter_f];
            server.tick_chain(t0() + 10, &mut fetchers);
        }
        let flight = server.serve(t0() + 60, &mut leaf_f);

        // The v1 view: leaf staple says Good — a single-staple client is
        // blind to the revoked intermediate (the §2.3 limitation).
        let leaf_staple = flight.stapled_ocsp.clone().unwrap();
        let v = ocsp::validate_response(
            &leaf_staple,
            &e.leaf_id,
            e.inter.certificate(),
            t0() + 60,
            Default::default(),
        )
        .unwrap();
        assert_eq!(v.status, ocsp::CertStatus::Good);

        // The v2 view: the chain staple exposes the revocation.
        // (The prefetching server refuses to *install* a Revoked staple,
        // so the intermediate slot is empty — detected as lack of
        // coverage — or, if the server staples it anyway, as Revoked.
        // Either way the v2 client knows something is wrong.)
        let t = Transcript::record(&v2_hello(), &flight);
        match verify_multi_staple(&t, &e.roots, t0() + 60) {
            Ok(covered) => assert!(covered < 2, "intermediate must not be covered as Good"),
            Err(MultiStapleError::Revoked(1)) => {}
            Err(other) => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn v1_client_gets_no_multi_staple() {
        let e = env(3);
        let mut server = MultiIdeal::new(e.site.clone());
        let mut leaf_f = fetcher_for(&e.inter, &e.leaf_id);
        server.tick(t0(), &mut leaf_f);
        let flight = server.serve(t0() + 60, &mut leaf_f);
        let hello = ClientHello::new("multi.example", true); // no v2
        let t = Transcript::record(&hello, &flight);
        assert_eq!(t.stapled_ocsp_multi().unwrap(), None);
        assert_eq!(
            verify_multi_staple(&t, &e.roots, t0() + 60),
            Err(MultiStapleError::NotSupported)
        );
        // But the classic staple still works.
        assert!(t.stapled_ocsp().unwrap().is_some());
    }

    #[test]
    fn root_slot_without_fetcher_stays_unstapled() {
        let e = env(4);
        let mut server = MultiIdeal::new(e.site.clone());
        let mut leaf_f = fetcher_for(&e.inter, &e.leaf_id);
        {
            let mut fetchers: [&mut dyn OcspFetcher; 1] = [&mut leaf_f];
            server.tick_chain(t0(), &mut fetchers);
        }
        let flight = server.serve(t0() + 60, &mut leaf_f);
        let t = Transcript::record(&v2_hello(), &flight);
        let staples = t.stapled_ocsp_multi().unwrap().unwrap();
        assert_eq!(staples.len(), 2);
        assert!(staples[0].is_some());
        assert!(staples[1].is_none());
        let covered = verify_multi_staple(&t, &e.roots, t0() + 60).unwrap();
        assert_eq!(covered, 1);
    }
}
