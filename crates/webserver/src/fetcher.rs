//! How servers reach their CA's OCSP responder.
//!
//! [`OcspFetcher`] abstracts the network: the Table 3 harness uses a
//! [`ScriptedFetcher`] with programmable outcomes; the full simulation
//! wires a netsim-backed fetcher in the core crate.

use asn1::Time;

/// The result of one fetch attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchOutcome {
    /// HTTP 200 with a body (which may itself be an OCSP *error*
    /// response such as `tryLater` — Apache famously staples those).
    Fetched {
        /// The response body.
        body: Vec<u8>,
        /// Time the fetch took, in milliseconds.
        latency_ms: f64,
    },
    /// The responder could not be reached (DNS/TCP/HTTP failure).
    Unreachable {
        /// Time wasted before giving up, ms.
        latency_ms: f64,
    },
}

/// A source of OCSP responses for the server's own certificate.
pub trait OcspFetcher {
    /// Attempt to fetch a fresh response at `now`.
    fn fetch(&mut self, now: Time) -> FetchOutcome;
    /// How many fetches have been attempted (test observability).
    fn attempts(&self) -> u32;
}

/// A fetcher driven by a script of outcomes; repeats the last entry when
/// the script runs out.
pub struct ScriptedFetcher {
    script: Vec<FetchOutcome>,
    cursor: usize,
    attempts: u32,
}

impl ScriptedFetcher {
    /// Build from a script. Must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics on an empty script.
    pub fn new(script: Vec<FetchOutcome>) -> ScriptedFetcher {
        assert!(!script.is_empty(), "fetcher script must not be empty");
        ScriptedFetcher {
            script,
            cursor: 0,
            attempts: 0,
        }
    }

    /// A fetcher that always succeeds with `body`.
    pub fn always(body: Vec<u8>) -> ScriptedFetcher {
        ScriptedFetcher::new(vec![FetchOutcome::Fetched {
            body,
            latency_ms: 80.0,
        }])
    }

    /// A fetcher that always fails.
    pub fn down() -> ScriptedFetcher {
        ScriptedFetcher::new(vec![FetchOutcome::Unreachable {
            latency_ms: 2_000.0,
        }])
    }

    /// Append an outcome to the script.
    pub fn push(&mut self, outcome: FetchOutcome) {
        self.script.push(outcome);
    }
}

impl OcspFetcher for ScriptedFetcher {
    fn fetch(&mut self, _now: Time) -> FetchOutcome {
        let outcome = self.script[self.cursor.min(self.script.len() - 1)].clone();
        self.cursor += 1;
        self.attempts += 1;
        outcome
    }

    fn attempts(&self) -> u32 {
        self.attempts
    }
}

/// A fetcher backed by a closure — used when each fetch must produce a
/// response generated *at fetch time* (fresh `thisUpdate`).
pub struct FnFetcher {
    f: Box<dyn FnMut(Time) -> FetchOutcome>,
    attempts: u32,
}

impl FnFetcher {
    /// Wrap a closure.
    pub fn new(f: impl FnMut(Time) -> FetchOutcome + 'static) -> FnFetcher {
        FnFetcher {
            f: Box::new(f),
            attempts: 0,
        }
    }
}

impl OcspFetcher for FnFetcher {
    fn fetch(&mut self, now: Time) -> FetchOutcome {
        self.attempts += 1;
        (self.f)(now)
    }

    fn attempts(&self) -> u32 {
        self.attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Time {
        Time::from_civil(2018, 6, 1, 0, 0, 0)
    }

    #[test]
    fn fn_fetcher_sees_fetch_time() {
        let mut f = FnFetcher::new(|now| FetchOutcome::Fetched {
            body: now.unix().to_be_bytes().to_vec(),
            latency_ms: 1.0,
        });
        let a = f.fetch(t());
        let b = f.fetch(t() + 60);
        assert_ne!(a, b);
        assert_eq!(f.attempts(), 2);
    }

    #[test]
    fn script_plays_in_order_then_repeats_last() {
        let mut f = ScriptedFetcher::new(vec![
            FetchOutcome::Fetched {
                body: vec![1],
                latency_ms: 1.0,
            },
            FetchOutcome::Unreachable { latency_ms: 2.0 },
        ]);
        assert!(matches!(f.fetch(t()), FetchOutcome::Fetched { .. }));
        assert!(matches!(f.fetch(t()), FetchOutcome::Unreachable { .. }));
        assert!(matches!(f.fetch(t()), FetchOutcome::Unreachable { .. }));
        assert_eq!(f.attempts(), 3);
    }

    #[test]
    fn always_and_down_helpers() {
        let mut up = ScriptedFetcher::always(vec![9]);
        assert!(matches!(up.fetch(t()), FetchOutcome::Fetched { body, .. } if body == vec![9]));
        let mut down = ScriptedFetcher::down();
        assert!(matches!(down.fetch(t()), FetchOutcome::Unreachable { .. }));
    }
}
