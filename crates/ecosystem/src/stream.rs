//! The streaming certificate feed — pull-based generation at any scale.
//!
//! The batch [`crate::Corpus`] and [`crate::AlexaList`] materialize
//! their entire populations up front, which is the first of the two
//! memory walls blocking ×100 scale (ROADMAP). This module turns both
//! into seeded, deterministic *iterators*:
//!
//! * [`CorpusStream`] yields [`CorpusCert`]s on demand, replaying
//!   exactly the RNG draw sequence `Corpus::generate` used — in fact
//!   the batch corpus is now implemented as this stream's `collect`, so
//!   there is a single generation code path and batch ≡ streaming byte
//!   equality holds by construction. The stream folds the §4 statistics
//!   ([`CorpusFold`]) as it goes, so consumers that only need the
//!   numbers never hold a certificate vector.
//! * [`AlexaStream`] yields [`AlexaSite`]s the same way; the Figure 2 /
//!   Figure 11 rank folds consume it site by site.
//! * [`ChurnStream`] is the workload the batch design could never
//!   express: mid-campaign issuance, expiry, and revocation events
//!   ([`CertEvent`]), drawn from a churn-salted RNG stream so enabling
//!   churn never perturbs the base corpus bytes. It is off by default
//!   ([`crate::EcosystemConfig::churn`]); its summary is exported as
//!   telemetry gauges, which are excluded from every artifact-equality
//!   surface.
//!
//! See DESIGN.md §13 for the feed lifecycle and accumulator contracts.

use crate::alexa::AlexaSite;
use crate::authorities::{named_operators, OperatorSpec};
use crate::calibration as cal;
use crate::corpus::{CorpusCert, CorpusStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// RNG stream salt for [`CorpusStream`] — the historical
/// `Corpus::generate` constant, so streamed corpora replay the batch
/// bytes seed for seed.
const CORPUS_SALT: u64 = 0xC0_45_05;

/// RNG stream salt for [`AlexaStream`] — the historical
/// `AlexaList::generate` constant.
const ALEXA_SALT: u64 = 0xA1E7A;

/// RNG stream salt for [`ChurnStream`]: a *distinct* stream, so churn
/// events never consume draws from (and never perturb) the base corpus
/// sequence.
const CHURN_SALT: u64 = 0xC4_52_11;

/// Draw one corpus certificate — the single per-certificate RNG
/// sequence shared by the batch corpus, the streaming corpus, and churn
/// issuance. The draw order (operator, filler index, OCSP, Must-Staple,
/// multi-responder — the latter two short-circuited on `has_ocsp`) is
/// part of the determinism contract: reordering it changes every seeded
/// corpus.
fn draw_cert(rng: &mut StdRng, operators: &[OperatorSpec], named_share: f64) -> CorpusCert {
    let spec = pick_operator(rng, operators, named_share);
    let (issuer, supports_crl, ms_share) = match spec {
        Some(op) => (op.name.to_string(), op.supports_crl, op.must_staple_share),
        None => {
            // Long-tail filler CA: generic behavior, no Must-Staple.
            (format!("Other-{}", rng.gen_range(0..40)), true, 0.0)
        }
    };
    let has_ocsp = rng.gen_bool(cal::OCSP_SUPPORT_FRACTION);
    let has_must_staple = has_ocsp && rng.gen_bool(ms_share);
    CorpusCert {
        issuer,
        has_ocsp,
        has_must_staple,
        has_crl: supports_crl,
        multi_responder: has_ocsp && rng.gen_bool(cal::MULTI_RESPONDER_FRACTION),
    }
}

fn pick_operator<'a>(
    rng: &mut StdRng,
    operators: &'a [OperatorSpec],
    named_share: f64,
) -> Option<&'a OperatorSpec> {
    let x: f64 = rng.gen_range(0.0..1.0);
    if x >= named_share {
        return None;
    }
    let mut acc = 0.0;
    for op in operators {
        acc += op.market_share;
        if x < acc {
            return Some(op);
        }
    }
    operators.last()
}

/// The §4 statistics folded incrementally while certificates stream
/// past: [`CorpusStats`] plus the per-issuer Must-Staple counts. This
/// is the *only* state a streaming §4 pass retains — memory is bounded
/// by the number of distinct issuers, not the corpus size.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusFold {
    stats: CorpusStats,
    must_staple_issuers: BTreeMap<String, usize>,
}

impl CorpusFold {
    /// An empty fold.
    pub fn new() -> CorpusFold {
        CorpusFold::default()
    }

    /// Fold one certificate in — the same counting rules
    /// `Corpus::stats` and `Corpus::must_staple_by_issuer` used over
    /// the materialized slice.
    pub fn record(&mut self, cert: &CorpusCert) {
        self.stats.total += 1;
        if cert.has_ocsp {
            self.stats.ocsp += 1;
        }
        if cert.has_must_staple {
            self.stats.must_staple += 1;
            if cert.issuer == "Let's Encrypt" {
                self.stats.must_staple_lets_encrypt += 1;
            }
            *self
                .must_staple_issuers
                .entry(cert.issuer.clone())
                .or_default() += 1;
        }
        if cert.multi_responder {
            self.stats.multi_responder += 1;
        }
    }

    /// The aggregate §4 statistics so far.
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    /// Must-Staple counts per issuer, descending — the §4 CA breakdown.
    /// Ties keep issuer-name (BTreeMap) order, exactly as the batch
    /// breakdown did.
    pub fn must_staple_by_issuer(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = self
            .must_staple_issuers
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        out.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        out
    }
}

/// A seeded, deterministic certificate feed: yields exactly `size`
/// [`CorpusCert`]s, folding the §4 statistics as it goes. Replays
/// `Corpus::generate(seed, size)`'s RNG sequence bit for bit.
pub struct CorpusStream {
    rng: StdRng,
    operators: Vec<OperatorSpec>,
    named_share: f64,
    remaining: usize,
    fold: CorpusFold,
}

impl CorpusStream {
    /// A feed of `size` certificates under `seed`.
    pub fn new(seed: u64, size: usize) -> CorpusStream {
        let operators = named_operators();
        let named_share: f64 = operators.iter().map(|o| o.market_share).sum();
        CorpusStream {
            rng: StdRng::seed_from_u64(seed ^ CORPUS_SALT),
            operators,
            named_share,
            remaining: size,
            fold: CorpusFold::new(),
        }
    }

    /// The statistics folded over everything yielded so far.
    ///
    /// (Named `fold_so_far` because `Iterator::fold` wins method
    /// resolution on a bare `fold()` call against an iterator value.)
    pub fn fold_so_far(&self) -> &CorpusFold {
        &self.fold
    }

    /// Consume the stream, returning the fold (drain first for the
    /// full-corpus statistics).
    pub fn into_fold(self) -> CorpusFold {
        self.fold
    }
}

impl Iterator for CorpusStream {
    type Item = CorpusCert;

    fn next(&mut self) -> Option<CorpusCert> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let cert = draw_cert(&mut self.rng, &self.operators, self.named_share);
        self.fold.record(&cert);
        Some(cert)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// A seeded, deterministic Alexa feed: yields exactly `size`
/// [`AlexaSite`]s in rank order, replaying
/// `AlexaList::generate(seed, size)`'s RNG sequence bit for bit.
pub struct AlexaStream {
    rng: StdRng,
    size: usize,
    next_rank: usize,
}

/// Interpolate between `top` (rank 1) and `tail` (rank n) on a
/// log-rank scale — the Figure 2/11 adoption shape.
fn interp(rank: usize, n: usize, top: f64, tail: f64) -> f64 {
    if n <= 1 {
        return top;
    }
    let x = (rank as f64).ln() / (n as f64).ln();
    top + (tail - top) * x
}

impl AlexaStream {
    /// A feed of `size` ranked sites under `seed`.
    pub fn new(seed: u64, size: usize) -> AlexaStream {
        AlexaStream {
            rng: StdRng::seed_from_u64(seed ^ ALEXA_SALT),
            size,
            next_rank: 1,
        }
    }
}

impl Iterator for AlexaStream {
    type Item = AlexaSite;

    fn next(&mut self) -> Option<AlexaSite> {
        if self.next_rank > self.size {
            return None;
        }
        let rank = self.next_rank;
        self.next_rank += 1;
        let size = self.size;
        let https = self.rng.gen_bool(interp(
            rank,
            size,
            cal::ALEXA_HTTPS_TOP,
            cal::ALEXA_HTTPS_TAIL,
        ));
        let ocsp = https
            && self.rng.gen_bool(interp(
                rank,
                size,
                cal::ALEXA_OCSP_TOP,
                cal::ALEXA_OCSP_TAIL,
            ));
        let staples = ocsp
            && self.rng.gen_bool(interp(
                rank,
                size,
                cal::ALEXA_STAPLING_TOP,
                cal::ALEXA_STAPLING_TAIL,
            ));
        let must_staple = ocsp && self.rng.gen_bool(cal::ALEXA_MUST_STAPLE_FRACTION);
        Some(AlexaSite {
            rank,
            domain: format!("site-{rank:07}.example"),
            https,
            ocsp,
            staples,
            must_staple,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.size.saturating_sub(self.next_rank - 1);
        (left, Some(left))
    }
}

/// The churn scenario knob: how many certificates are issued, expired,
/// and revoked per campaign round. All-zero means no events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnConfig {
    /// New certificates issued each round.
    pub issued_per_round: usize,
    /// Live certificates expiring each round (uniform over the live
    /// population; capped by its size).
    pub expired_per_round: usize,
    /// Live certificates revoked each round (uniform over the live
    /// population; capped by its size).
    pub revoked_per_round: usize,
}

/// One mid-campaign lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub enum CertEvent {
    /// A new certificate entered the population.
    Issued {
        /// Scan round the event lands in.
        round: usize,
        /// Feed-unique serial.
        serial: u64,
        /// The issued certificate.
        cert: CorpusCert,
    },
    /// A live certificate expired out of the population.
    Expired {
        /// Scan round the event lands in.
        round: usize,
        /// Serial of the expiring certificate.
        serial: u64,
    },
    /// A live certificate was revoked (and left the valid population).
    Revoked {
        /// Scan round the event lands in.
        round: usize,
        /// Serial of the revoked certificate.
        serial: u64,
    },
}

/// Aggregate churn counts, folded while the event feed streams past.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnSummary {
    /// Certificates issued mid-campaign.
    pub issued: u64,
    /// Certificates expired mid-campaign.
    pub expired: u64,
    /// Certificates revoked mid-campaign.
    pub revoked: u64,
    /// Certificates still live at the end of the feed.
    pub live: u64,
}

/// Which phase of a round the churn feed is emitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChurnPhase {
    Issue,
    Expire,
    Revoke,
}

/// A deterministic mid-campaign event feed: per round, issuance events
/// first, then expiries, then revocations (each uniform over the live
/// population at the moment of the draw). Memory is the live serial
/// set — `O(live certificates)`, independent of how many events have
/// streamed past.
pub struct ChurnStream {
    rng: StdRng,
    operators: Vec<OperatorSpec>,
    named_share: f64,
    config: ChurnConfig,
    rounds: usize,
    round: usize,
    phase: ChurnPhase,
    emitted_in_phase: usize,
    live: Vec<u64>,
    next_serial: u64,
    summary: ChurnSummary,
}

impl ChurnStream {
    /// An event feed over `rounds` campaign rounds under `seed`. The
    /// RNG stream is churn-salted: the base corpus draws are untouched
    /// whether or not churn is enabled.
    pub fn new(seed: u64, config: ChurnConfig, rounds: usize) -> ChurnStream {
        let operators = named_operators();
        let named_share: f64 = operators.iter().map(|o| o.market_share).sum();
        ChurnStream {
            rng: StdRng::seed_from_u64(seed ^ CHURN_SALT),
            operators,
            named_share,
            config,
            rounds,
            round: 0,
            phase: ChurnPhase::Issue,
            emitted_in_phase: 0,
            live: Vec::new(),
            next_serial: 0,
            summary: ChurnSummary::default(),
        }
    }

    /// The counts folded over everything yielded so far (`live` tracks
    /// the current population).
    pub fn summary(&self) -> ChurnSummary {
        ChurnSummary {
            live: self.live.len() as u64,
            ..self.summary
        }
    }

    /// Advance to the next phase (or round), returning `false` when the
    /// feed is exhausted.
    fn advance_phase(&mut self) -> bool {
        self.emitted_in_phase = 0;
        self.phase = match self.phase {
            ChurnPhase::Issue => ChurnPhase::Expire,
            ChurnPhase::Expire => ChurnPhase::Revoke,
            ChurnPhase::Revoke => {
                self.round += 1;
                ChurnPhase::Issue
            }
        };
        self.round < self.rounds
    }

    /// Remove a uniformly drawn live serial (`swap_remove`, so removal
    /// is O(1) and the draw order stays a pure function of the seed).
    fn remove_live(&mut self) -> Option<u64> {
        if self.live.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..self.live.len());
        Some(self.live.swap_remove(idx))
    }
}

impl Iterator for ChurnStream {
    type Item = CertEvent;

    fn next(&mut self) -> Option<CertEvent> {
        loop {
            if self.round >= self.rounds {
                return None;
            }
            let budget = match self.phase {
                ChurnPhase::Issue => self.config.issued_per_round,
                ChurnPhase::Expire => self.config.expired_per_round,
                ChurnPhase::Revoke => self.config.revoked_per_round,
            };
            if self.emitted_in_phase >= budget {
                if !self.advance_phase() {
                    return None;
                }
                continue;
            }
            self.emitted_in_phase += 1;
            match self.phase {
                ChurnPhase::Issue => {
                    let cert = draw_cert(&mut self.rng, &self.operators, self.named_share);
                    let serial = self.next_serial;
                    self.next_serial += 1;
                    self.live.push(serial);
                    self.summary.issued += 1;
                    return Some(CertEvent::Issued {
                        round: self.round,
                        serial,
                        cert,
                    });
                }
                ChurnPhase::Expire => {
                    if let Some(serial) = self.remove_live() {
                        self.summary.expired += 1;
                        return Some(CertEvent::Expired {
                            round: self.round,
                            serial,
                        });
                    }
                    // Nothing live to expire: the phase budget is moot.
                    if !self.advance_phase() {
                        return None;
                    }
                }
                ChurnPhase::Revoke => {
                    if let Some(serial) = self.remove_live() {
                        self.summary.revoked += 1;
                        return Some(CertEvent::Revoked {
                            round: self.round,
                            serial,
                        });
                    }
                    if !self.advance_phase() {
                        return None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alexa::AlexaList;
    use crate::corpus::Corpus;

    #[test]
    fn corpus_stream_replays_batch_generation_bit_for_bit() {
        let batch = Corpus::generate(42, 3_000);
        let streamed: Vec<CorpusCert> = CorpusStream::new(42, 3_000).collect();
        assert_eq!(batch.certs().len(), streamed.len());
        for (a, b) in batch.certs().iter().zip(&streamed) {
            assert_eq!(a.issuer, b.issuer);
            assert_eq!(a.has_ocsp, b.has_ocsp);
            assert_eq!(a.has_must_staple, b.has_must_staple);
            assert_eq!(a.has_crl, b.has_crl);
            assert_eq!(a.multi_responder, b.multi_responder);
        }
    }

    #[test]
    fn corpus_fold_matches_batch_statistics() {
        let batch = Corpus::generate(2018, 50_000);
        let mut stream = CorpusStream::new(2018, 50_000);
        for _ in stream.by_ref() {}
        let fold = stream.into_fold();
        assert_eq!(fold.stats(), &batch.stats());
        assert_eq!(fold.must_staple_by_issuer(), batch.must_staple_by_issuer());
    }

    #[test]
    fn partial_fold_reflects_only_whats_yielded() {
        let mut stream = CorpusStream::new(7, 1_000);
        for _ in 0..100 {
            stream.next();
        }
        assert_eq!(stream.fold_so_far().stats().total, 100);
        assert_eq!(stream.size_hint(), (900, Some(900)));
    }

    #[test]
    fn alexa_stream_replays_batch_generation_bit_for_bit() {
        let batch = AlexaList::generate(3, 4_000);
        let streamed: Vec<AlexaSite> = AlexaStream::new(3, 4_000).collect();
        assert_eq!(batch.sites().len(), streamed.len());
        for (a, b) in batch.sites().iter().zip(&streamed) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.https, b.https);
            assert_eq!(a.ocsp, b.ocsp);
            assert_eq!(a.staples, b.staples);
            assert_eq!(a.must_staple, b.must_staple);
        }
    }

    #[test]
    fn churn_feed_is_deterministic_per_seed() {
        let config = ChurnConfig {
            issued_per_round: 5,
            expired_per_round: 2,
            revoked_per_round: 1,
        };
        let a: Vec<CertEvent> = ChurnStream::new(9, config.clone(), 20).collect();
        let b: Vec<CertEvent> = ChurnStream::new(9, config.clone(), 20).collect();
        let c: Vec<CertEvent> = ChurnStream::new(10, config, 20).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_ne!(a, c, "different seeds draw different event streams");
    }

    #[test]
    fn churn_summary_balances() {
        let config = ChurnConfig {
            issued_per_round: 4,
            expired_per_round: 2,
            revoked_per_round: 1,
        };
        let mut stream = ChurnStream::new(11, config, 50);
        let events: Vec<CertEvent> = stream.by_ref().collect();
        let s = stream.summary();
        assert_eq!(s.issued, 4 * 50);
        assert_eq!(s.issued, s.expired + s.revoked + s.live);
        assert_eq!(events.len() as u64, s.issued + s.expired + s.revoked);
        // Rounds emit issue → expire → revoke, in order.
        let rounds: Vec<usize> = events
            .iter()
            .map(|e| match e {
                CertEvent::Issued { round, .. }
                | CertEvent::Expired { round, .. }
                | CertEvent::Revoked { round, .. } => *round,
            })
            .collect();
        let mut sorted = rounds.clone();
        sorted.sort_unstable();
        assert_eq!(rounds, sorted, "events stream in round order");
    }

    #[test]
    fn churn_never_expires_more_than_live() {
        // Aggressive expiry against slow issuance: the live population
        // must never go negative, and empty phases terminate cleanly.
        let config = ChurnConfig {
            issued_per_round: 1,
            expired_per_round: 10,
            revoked_per_round: 10,
        };
        let mut stream = ChurnStream::new(3, config, 30);
        for _ in stream.by_ref() {}
        let s = stream.summary();
        assert_eq!(s.issued, 30);
        assert_eq!(s.issued, s.expired + s.revoked + s.live);
    }

    #[test]
    fn zero_churn_is_an_empty_feed() {
        let mut stream = ChurnStream::new(1, ChurnConfig::default(), 100);
        assert_eq!(stream.next(), None);
        assert_eq!(stream.summary(), ChurnSummary::default());
    }
}
