//! The statistical certificate corpus — the synthetic Censys.
//!
//! §4's analysis needs only a handful of per-certificate booleans at
//! enormous scale, so the corpus is *statistical*: lightweight records
//! drawn from the calibrated marginals, with the issuing operator
//! attached. (Full cryptographic certificates live in [`crate::live`],
//! where the scanning experiments need them.)

use crate::authorities::{named_operators, OperatorSpec};
use crate::calibration as cal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One corpus certificate (the fields §4 reads).
#[derive(Debug, Clone)]
pub struct CorpusCert {
    /// Issuing operator name ("Let's Encrypt", "Comodo", …; filler
    /// operators are "Other-N").
    pub issuer: String,
    /// AIA carries at least one OCSP URL.
    pub has_ocsp: bool,
    /// Carries the TLS Feature (Must-Staple) extension.
    pub has_must_staple: bool,
    /// Carries a CRL Distribution Points extension.
    pub has_crl: bool,
    /// Lists more than one OCSP responder in its AIA.
    pub multi_responder: bool,
}

/// Aggregate statistics over a corpus (the §4 numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Total valid certificates.
    pub total: usize,
    /// Certificates with an OCSP URL.
    pub ocsp: usize,
    /// Certificates with Must-Staple.
    pub must_staple: usize,
    /// Must-Staple certificates issued by Let's Encrypt.
    pub must_staple_lets_encrypt: usize,
    /// Certificates with multiple OCSP responders.
    pub multi_responder: usize,
}

impl CorpusStats {
    /// Fraction of certificates supporting OCSP (paper: 95.4 %).
    pub fn ocsp_fraction(&self) -> f64 {
        self.ocsp as f64 / self.total.max(1) as f64
    }

    /// Fraction supporting Must-Staple (paper: 0.02 %).
    pub fn must_staple_fraction(&self) -> f64 {
        self.must_staple as f64 / self.total.max(1) as f64
    }

    /// Let's Encrypt's share of Must-Staple certificates (paper: 97.3 %).
    pub fn lets_encrypt_must_staple_share(&self) -> f64 {
        self.must_staple_lets_encrypt as f64 / self.must_staple.max(1) as f64
    }
}

/// The synthetic Censys corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    certs: Vec<CorpusCert>,
}

impl Corpus {
    /// Generate a corpus of `size` certificates with `seed`.
    pub fn generate(seed: u64, size: usize) -> Corpus {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_45_05);
        let operators = named_operators();
        let named_share: f64 = operators.iter().map(|o| o.market_share).sum();
        let mut certs = Vec::with_capacity(size);
        for _ in 0..size {
            let spec = pick_operator(&mut rng, &operators, named_share);
            let (issuer, supports_crl, ms_share) = match spec {
                Some(op) => (op.name.to_string(), op.supports_crl, op.must_staple_share),
                None => {
                    // Long-tail filler CA: generic behavior, no Must-Staple.
                    (format!("Other-{}", rng.gen_range(0..40)), true, 0.0)
                }
            };
            let has_ocsp = rng.gen_bool(cal::OCSP_SUPPORT_FRACTION);
            let has_must_staple = has_ocsp && rng.gen_bool(ms_share);
            certs.push(CorpusCert {
                issuer,
                has_ocsp,
                has_must_staple,
                has_crl: supports_crl,
                multi_responder: has_ocsp && rng.gen_bool(cal::MULTI_RESPONDER_FRACTION),
            });
        }
        Corpus { certs }
    }

    /// The certificates.
    pub fn certs(&self) -> &[CorpusCert] {
        &self.certs
    }

    /// Compute the §4 statistics.
    pub fn stats(&self) -> CorpusStats {
        let mut stats = CorpusStats {
            total: self.certs.len(),
            ocsp: 0,
            must_staple: 0,
            must_staple_lets_encrypt: 0,
            multi_responder: 0,
        };
        for cert in &self.certs {
            if cert.has_ocsp {
                stats.ocsp += 1;
            }
            if cert.has_must_staple {
                stats.must_staple += 1;
                if cert.issuer == "Let's Encrypt" {
                    stats.must_staple_lets_encrypt += 1;
                }
            }
            if cert.multi_responder {
                stats.multi_responder += 1;
            }
        }
        stats
    }

    /// Must-Staple counts per issuer, descending — the §4 CA breakdown.
    pub fn must_staple_by_issuer(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for cert in self.certs.iter().filter(|c| c.has_must_staple) {
            *counts.entry(&cert.issuer).or_default() += 1;
        }
        let mut out: Vec<(String, usize)> = counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        out.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        out
    }
}

fn pick_operator<'a>(
    rng: &mut StdRng,
    operators: &'a [OperatorSpec],
    named_share: f64,
) -> Option<&'a OperatorSpec> {
    let x: f64 = rng.gen_range(0.0..1.0);
    if x >= named_share {
        return None;
    }
    let mut acc = 0.0;
    for op in operators {
        acc += op.market_share;
        if x < acc {
            return Some(op);
        }
    }
    operators.last()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::generate(1, 200_000)
    }

    #[test]
    fn ocsp_fraction_matches_calibration() {
        let stats = corpus().stats();
        assert!(
            (stats.ocsp_fraction() - cal::OCSP_SUPPORT_FRACTION).abs() < 0.01,
            "got {}",
            stats.ocsp_fraction()
        );
    }

    #[test]
    fn must_staple_is_minuscule_and_lets_encrypt_dominates() {
        let stats = corpus().stats();
        // ~0.02-0.03 % of certs.
        let f = stats.must_staple_fraction();
        assert!(f > 0.000_05 && f < 0.001, "fraction {f}");
        // LE ≈ 97 % of Must-Staple issuance.
        let share = stats.lets_encrypt_must_staple_share();
        assert!(share > 0.85, "share {share}");
    }

    #[test]
    fn issuer_breakdown_ranks_lets_encrypt_first() {
        let breakdown = corpus().must_staple_by_issuer();
        assert!(!breakdown.is_empty());
        assert_eq!(breakdown[0].0, "Let's Encrypt");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Corpus::generate(9, 10_000).stats();
        let b = Corpus::generate(9, 10_000).stats();
        let c = Corpus::generate(10, 10_000).stats();
        assert_eq!(a, b);
        assert!(a != c || a.total == c.total); // counts may coincide, but usually differ
    }

    #[test]
    fn lets_encrypt_certs_have_no_crl() {
        let corpus = corpus();
        assert!(corpus
            .certs()
            .iter()
            .filter(|c| c.issuer == "Let's Encrypt")
            .all(|c| !c.has_crl));
    }
}
