//! The statistical certificate corpus — the synthetic Censys.
//!
//! §4's analysis needs only a handful of per-certificate booleans at
//! enormous scale, so the corpus is *statistical*: lightweight records
//! drawn from the calibrated marginals, with the issuing operator
//! attached. (Full cryptographic certificates live in [`crate::live`],
//! where the scanning experiments need them.)

use crate::stream::{CorpusFold, CorpusStream};

/// One corpus certificate (the fields §4 reads).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusCert {
    /// Issuing operator name ("Let's Encrypt", "Comodo", …; filler
    /// operators are "Other-N").
    pub issuer: String,
    /// AIA carries at least one OCSP URL.
    pub has_ocsp: bool,
    /// Carries the TLS Feature (Must-Staple) extension.
    pub has_must_staple: bool,
    /// Carries a CRL Distribution Points extension.
    pub has_crl: bool,
    /// Lists more than one OCSP responder in its AIA.
    pub multi_responder: bool,
}

/// Aggregate statistics over a corpus (the §4 numbers).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusStats {
    /// Total valid certificates.
    pub total: usize,
    /// Certificates with an OCSP URL.
    pub ocsp: usize,
    /// Certificates with Must-Staple.
    pub must_staple: usize,
    /// Must-Staple certificates issued by Let's Encrypt.
    pub must_staple_lets_encrypt: usize,
    /// Certificates with multiple OCSP responders.
    pub multi_responder: usize,
}

impl CorpusStats {
    /// Fraction of certificates supporting OCSP (paper: 95.4 %).
    pub fn ocsp_fraction(&self) -> f64 {
        self.ocsp as f64 / self.total.max(1) as f64
    }

    /// Fraction supporting Must-Staple (paper: 0.02 %).
    pub fn must_staple_fraction(&self) -> f64 {
        self.must_staple as f64 / self.total.max(1) as f64
    }

    /// Let's Encrypt's share of Must-Staple certificates (paper: 97.3 %).
    pub fn lets_encrypt_must_staple_share(&self) -> f64 {
        self.must_staple_lets_encrypt as f64 / self.must_staple.max(1) as f64
    }
}

/// The synthetic Censys corpus.
///
/// Since the streaming refactor (DESIGN.md §13) this is simply
/// [`CorpusStream`]'s collect: one generation code path, so batch and
/// streaming corpora are byte-identical by construction, and the §4
/// statistics are folded during generation rather than recomputed from
/// the materialized slice.
#[derive(Debug, Clone)]
pub struct Corpus {
    certs: Vec<CorpusCert>,
    fold: CorpusFold,
}

impl Corpus {
    /// Generate a corpus of `size` certificates with `seed`.
    pub fn generate(seed: u64, size: usize) -> Corpus {
        let mut stream = CorpusStream::new(seed, size);
        let certs: Vec<CorpusCert> = stream.by_ref().collect();
        Corpus {
            certs,
            fold: stream.into_fold(),
        }
    }

    /// The certificates.
    pub fn certs(&self) -> &[CorpusCert] {
        &self.certs
    }

    /// The §4 statistics (folded during generation).
    pub fn stats(&self) -> CorpusStats {
        self.fold.stats().clone()
    }

    /// Must-Staple counts per issuer, descending — the §4 CA breakdown
    /// (folded during generation).
    pub fn must_staple_by_issuer(&self) -> Vec<(String, usize)> {
        self.fold.must_staple_by_issuer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration as cal;

    fn corpus() -> Corpus {
        Corpus::generate(1, 200_000)
    }

    #[test]
    fn ocsp_fraction_matches_calibration() {
        let stats = corpus().stats();
        assert!(
            (stats.ocsp_fraction() - cal::OCSP_SUPPORT_FRACTION).abs() < 0.01,
            "got {}",
            stats.ocsp_fraction()
        );
    }

    #[test]
    fn must_staple_is_minuscule_and_lets_encrypt_dominates() {
        let stats = corpus().stats();
        // ~0.02-0.03 % of certs.
        let f = stats.must_staple_fraction();
        assert!(f > 0.000_05 && f < 0.001, "fraction {f}");
        // LE ≈ 97 % of Must-Staple issuance.
        let share = stats.lets_encrypt_must_staple_share();
        assert!(share > 0.85, "share {share}");
    }

    #[test]
    fn issuer_breakdown_ranks_lets_encrypt_first() {
        let breakdown = corpus().must_staple_by_issuer();
        assert!(!breakdown.is_empty());
        assert_eq!(breakdown[0].0, "Let's Encrypt");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Corpus::generate(9, 10_000).stats();
        let b = Corpus::generate(9, 10_000).stats();
        let c = Corpus::generate(10, 10_000).stats();
        assert_eq!(a, b);
        assert!(a != c || a.total == c.total); // counts may coincide, but usually differ
    }

    #[test]
    fn lets_encrypt_certs_have_no_crl() {
        let corpus = corpus();
        assert!(corpus
            .certs()
            .iter()
            .filter(|c| c.issuer == "Let's Encrypt")
            .all(|c| !c.has_crl));
    }
}
