//! The synthetic Alexa Top-1M list.
//!
//! Adoption probabilities interpolate log-linearly between a "top" and a
//! "tail" value across the rank range, which is exactly the shape of the
//! paper's Figures 2 and 11: high and slowly declining.

use crate::stream::AlexaStream;

/// One ranked site.
#[derive(Debug, Clone)]
pub struct AlexaSite {
    /// 1-based popularity rank.
    pub rank: usize,
    /// Domain name.
    pub domain: String,
    /// Serves HTTPS with a valid certificate.
    pub https: bool,
    /// Its certificate carries an OCSP URL.
    pub ocsp: bool,
    /// The server staples OCSP responses (Figure 11).
    pub staples: bool,
    /// Its certificate carries Must-Staple (§4: 100 domains in 1M).
    pub must_staple: bool,
}

/// The ranked list.
#[derive(Debug, Clone)]
pub struct AlexaList {
    sites: Vec<AlexaSite>,
}

impl AlexaList {
    /// Generate `size` ranked sites with `seed` — [`AlexaStream`]'s
    /// collect, so batch and streaming lists are byte-identical by
    /// construction (DESIGN.md §13).
    pub fn generate(seed: u64, size: usize) -> AlexaList {
        AlexaList {
            sites: AlexaStream::new(seed, size).collect(),
        }
    }

    /// All sites, rank order.
    pub fn sites(&self) -> &[AlexaSite] {
        &self.sites
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Sites that support HTTPS + OCSP — the Alexa1M scan population
    /// (paper: 606,367 of 1M).
    pub fn ocsp_sites(&self) -> impl Iterator<Item = &AlexaSite> {
        self.sites.iter().filter(|s| s.ocsp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis_shim::fraction;

    /// Tiny local helper (the real analysis crate is a dev-dependency of
    /// higher layers; keeping this crate dependency-light).
    mod analysis_shim {
        use super::super::AlexaSite;
        pub fn fraction(sites: &[AlexaSite], f: impl Fn(&AlexaSite) -> bool) -> f64 {
            sites.iter().filter(|s| f(s)).count() as f64 / sites.len().max(1) as f64
        }
    }

    fn list() -> AlexaList {
        AlexaList::generate(3, 100_000)
    }

    #[test]
    fn https_is_roughly_three_quarters() {
        let l = list();
        let f = fraction(l.sites(), |s| s.https);
        assert!((0.68..0.82).contains(&f), "https fraction {f}");
    }

    #[test]
    fn ocsp_among_https_matches_paper_average() {
        let l = list();
        let https: Vec<_> = l.sites().iter().filter(|s| s.https).cloned().collect();
        let f = fraction(&https, |s| s.ocsp);
        // Paper: 91.3 % average.
        assert!((0.88..0.945).contains(&f), "ocsp|https fraction {f}");
    }

    #[test]
    fn stapling_is_roughly_a_third_of_ocsp_sites() {
        let l = list();
        let ocsp: Vec<_> = l.sites().iter().filter(|s| s.ocsp).cloned().collect();
        let f = fraction(&ocsp, |s| s.staples);
        assert!((0.25..0.45).contains(&f), "stapling fraction {f}");
    }

    #[test]
    fn popular_sites_adopt_more() {
        let l = list();
        let head = &l.sites()[..10_000];
        let tail = &l.sites()[90_000..];
        assert!(fraction(head, |s| s.https) > fraction(tail, |s| s.https));
        assert!(fraction(head, |s| s.staples) > fraction(tail, |s| s.staples));
    }

    #[test]
    fn must_staple_count_is_tiny() {
        let l = list();
        let count = l.sites().iter().filter(|s| s.must_staple).count();
        // Paper: 100 in 1M → ~10 in 100k. Allow generous slack.
        assert!(count < 60, "count {count}");
    }

    #[test]
    fn ocsp_sites_iterator_consistent() {
        let l = list();
        assert_eq!(
            l.ocsp_sites().count(),
            l.sites().iter().filter(|s| s.ocsp).count()
        );
    }

    #[test]
    fn deterministic() {
        let a = AlexaList::generate(5, 1_000);
        let b = AlexaList::generate(5, 1_000);
        assert_eq!(a.sites().len(), b.sites().len());
        for (x, y) in a.sites().iter().zip(b.sites()) {
            assert_eq!(x.https, y.https);
            assert_eq!(x.staples, y.staples);
        }
    }
}
