//! Every calibration constant, with its source in the paper.
//!
//! These are the measured marginals the synthetic ecosystem reproduces.
//! Keeping them in one annotated module makes the calibration auditable:
//! each figure/table regeneration in EXPERIMENTS.md traces back to the
//! constants here.

/// §4: fraction of valid certificates whose AIA carries an OCSP URL
/// (107,664,132 / 112,841,653).
pub const OCSP_SUPPORT_FRACTION: f64 = 0.954;

/// §4: fraction of valid certificates carrying OCSP Must-Staple
/// (29,709 / 112,841,653 ≈ 0.026 %; the paper rounds to 0.02 %).
pub const MUST_STAPLE_FRACTION: f64 = 0.000_263;

/// §4: share of Must-Staple certificates issued by Let's Encrypt
/// (28,919 / 29,709).
pub const MUST_STAPLE_LETS_ENCRYPT_SHARE: f64 = 0.973;

/// §4: the remaining Must-Staple issuers and their certificate counts.
pub const MUST_STAPLE_OTHERS: [(&str, u64); 3] = [("DFN", 716), ("Comodo", 73), ("UserTrust", 1)];

/// §4 / Figure 2: HTTPS support across the Alexa range is "close to 75 %".
pub const ALEXA_HTTPS_TOP: f64 = 0.80;
/// Figure 2: HTTPS support at the tail of the Top-1M.
pub const ALEXA_HTTPS_TAIL: f64 = 0.70;
/// Figure 2: OCSP adoption among HTTPS domains averages 91.3 %, slightly
/// higher for popular domains.
pub const ALEXA_OCSP_TOP: f64 = 0.945;
/// Figure 2: OCSP adoption at the tail.
pub const ALEXA_OCSP_TAIL: f64 = 0.89;
/// §4: certificates from Alexa Top-1M domains with Must-Staple: 100
/// out of ~606 k (0.01 %).
pub const ALEXA_MUST_STAPLE_FRACTION: f64 = 0.000_165;

/// Figure 11: OCSP Stapling adoption among OCSP-enabled domains is
/// roughly 35 % overall, higher for popular domains (~50 % at the top,
/// ~28 % at the tail).
pub const ALEXA_STAPLING_TOP: f64 = 0.50;
/// Figure 11 tail value.
pub const ALEXA_STAPLING_TAIL: f64 = 0.28;

/// §5.1: responders measured in the Hourly dataset.
pub const HOURLY_RESPONDERS: usize = 536;
/// §5.1: certificates tracked in the Hourly dataset.
pub const HOURLY_CERTIFICATES: usize = 14_634;
/// §5.1: certificates per responder sampled (50, or all if fewer).
pub const CERTS_PER_RESPONDER_SAMPLE: usize = 50;
/// §5.1: responders seen in the Alexa1M scan.
pub const ALEXA1M_RESPONDERS: usize = 128;
/// §4: fraction of certificates listing more than one OCSP responder
/// (6,308 / 77,399,894).
pub const MULTI_RESPONDER_FRACTION: f64 = 0.000_08;

/// §5.2: average request failure rate across the campaign.
pub const AVG_FAILURE_RATE: f64 = 0.017;
/// §5.2: per-region average failure rates (min Virginia, max São Paulo).
pub const FAILURE_RATE_VIRGINIA: f64 = 0.022;
/// §5.2: São Paulo failure rate.
pub const FAILURE_RATE_SAO_PAULO: f64 = 0.057;
/// §5.2: responders never reachable from any vantage point.
pub const RESPONDERS_ALWAYS_DEAD: usize = 2;
/// §5.2: responders with at least one never-succeeding vantage point: 29,
/// split 16 DNS / 4 TCP / 8 HTTP / 1 TLS.
pub const PERSISTENT_DNS_FAILURES: usize = 16;
/// §5.2 persistent TCP failures.
pub const PERSISTENT_TCP_FAILURES: usize = 4;
/// §5.2 persistent HTTP 4xx/5xx failures.
pub const PERSISTENT_HTTP_FAILURES: usize = 8;
/// §5.2 persistent TLS (bad certificate) failures.
pub const PERSISTENT_TLS_FAILURES: usize = 1;
/// §5.2: fraction of responders with ≥1 transient outage (211 / 536).
pub const TRANSIENT_OUTAGE_FRACTION: f64 = 0.368;

/// §5.3: responders persistently returning malformed bodies (8 / 536).
pub const PERSISTENT_MALFORMED: usize = 8;

/// Figure 6: fraction of responders sending >1 certificate (79 / 536).
pub const MULTI_CERT_FRACTION: f64 = 0.145;
/// Figure 7: fraction of responders answering with >1 serial.
pub const MULTI_SERIAL_FRACTION: f64 = 0.048;
/// Figure 7: fraction always answering with exactly 20 serials (17/536).
pub const TWENTY_SERIAL_FRACTION: f64 = 0.033;

/// Figure 8: fraction of responders with a blank `nextUpdate` (45/483
/// measured ≈ 9.1 %).
pub const BLANK_NEXT_UPDATE_FRACTION: f64 = 0.091;
/// Figure 8: fraction with validity periods over one month (11 ≈ 2 %).
pub const MONTH_PLUS_VALIDITY_FRACTION: f64 = 0.02;
/// Figure 8: the maximum observed validity period — 108,130,800 s
/// (1,251 days).
pub const MAX_VALIDITY_SECS: i64 = 108_130_800;
/// §8: the median validity period is about a week.
pub const MEDIAN_VALIDITY_SECS: i64 = 7 * 86_400;

/// Figure 9: responders returning zero-margin `thisUpdate` (85 ≈ 17.2 %).
pub const ZERO_MARGIN_FRACTION: f64 = 0.172;
/// Figure 9: responders returning *future* `thisUpdate` (15 ≈ 3 %).
pub const FUTURE_THIS_UPDATE_FRACTION: f64 = 0.03;

/// §5.4: responders that pre-generate responses (245 / 483 ≈ 51.7 %).
pub const PRE_GENERATED_FRACTION: f64 = 0.517;
/// §5.4: responders whose validity equals their refresh interval (7).
pub const NON_OVERLAPPING_RESPONDERS: usize = 7;
/// §5.4: hinet.net refresh/validity period (seconds).
pub const HINET_PERIOD: i64 = 7_200;
/// §5.4: cnnic refresh/validity period (seconds).
pub const CNNIC_PERIOD: i64 = 10_800;

/// §5.4 consistency study: unique CRLs among Alexa Top-1M certificates.
pub const UNIQUE_CRLS: usize = 1_579;
/// §5.4: revoked serials found across those CRLs.
pub const REVOKED_SERIALS: usize = 2_041_345;
/// §5.4: unexpired-and-revoked certificates cross-referenced.
pub const UNEXPIRED_REVOKED: usize = 728_261;
/// §5.4: fraction of OCSP responses with a revocation time differing
/// from the CRL (863 / 727,440).
pub const REVTIME_DIFF_FRACTION: f64 = 0.001_5;
/// §5.4: of those, the fraction where OCSP is *behind* the CRL
/// (127 / 863).
pub const REVTIME_NEGATIVE_FRACTION: f64 = 0.147;
/// §5.4: ocsp.msocsp.com lag bounds (7 hours to 9 days).
pub const MSOCSP_LAG_MIN: i64 = 7 * 3_600;
/// Upper bound of the msocsp lag.
pub const MSOCSP_LAG_MAX: i64 = 9 * 86_400;
/// Figure 10: the revocation-time difference tail exceeds 137M seconds.
pub const REVTIME_TAIL_SECS: i64 = 137_000_000;
/// §5.4: fraction of revocations whose reason codes differ between CRL
/// and OCSP (15 %), of which 99.99 % are "CRL has a code, OCSP none".
pub const REASON_DIFF_FRACTION: f64 = 0.15;

/// Figure 12: Cloudflare-served stapling domains before the June 2017
/// cruise-liner expansion.
pub const CLOUDFLARE_STAPLES_MAY17: u64 = 11_675;
/// Figure 12: and after.
pub const CLOUDFLARE_STAPLES_JUN17: u64 = 78_907;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_probabilities() {
        for f in [
            OCSP_SUPPORT_FRACTION,
            MUST_STAPLE_FRACTION,
            MUST_STAPLE_LETS_ENCRYPT_SHARE,
            ALEXA_HTTPS_TOP,
            ALEXA_HTTPS_TAIL,
            ALEXA_OCSP_TOP,
            ALEXA_OCSP_TAIL,
            ALEXA_STAPLING_TOP,
            ALEXA_STAPLING_TAIL,
            AVG_FAILURE_RATE,
            TRANSIENT_OUTAGE_FRACTION,
            MULTI_CERT_FRACTION,
            MULTI_SERIAL_FRACTION,
            TWENTY_SERIAL_FRACTION,
            BLANK_NEXT_UPDATE_FRACTION,
            MONTH_PLUS_VALIDITY_FRACTION,
            ZERO_MARGIN_FRACTION,
            FUTURE_THIS_UPDATE_FRACTION,
            PRE_GENERATED_FRACTION,
            REVTIME_DIFF_FRACTION,
            REVTIME_NEGATIVE_FRACTION,
            REASON_DIFF_FRACTION,
        ] {
            assert!((0.0..=1.0).contains(&f), "{f} out of range");
        }
    }

    // The assertions are constant on purpose: the test exists to re-check
    // the calibration numbers whenever someone edits them.
    #[allow(clippy::assertions_on_constants)]
    #[test]
    fn ordering_sanity() {
        assert!(ALEXA_HTTPS_TOP > ALEXA_HTTPS_TAIL);
        assert!(ALEXA_OCSP_TOP > ALEXA_OCSP_TAIL);
        assert!(ALEXA_STAPLING_TOP > ALEXA_STAPLING_TAIL);
        assert!(FAILURE_RATE_SAO_PAULO > FAILURE_RATE_VIRGINIA);
        assert!(MSOCSP_LAG_MAX > MSOCSP_LAG_MIN);
        assert!(MAX_VALIDITY_SECS > MEDIAN_VALIDITY_SECS);
        assert!(CLOUDFLARE_STAPLES_JUN17 > CLOUDFLARE_STAPLES_MAY17);
    }

    #[test]
    fn persistent_failure_taxonomy_totals_29() {
        assert_eq!(
            PERSISTENT_DNS_FAILURES
                + PERSISTENT_TCP_FAILURES
                + PERSISTENT_HTTP_FAILURES
                + PERSISTENT_TLS_FAILURES,
            29
        );
    }
}
