//! The CA-operator cast.
//!
//! The paper names specific operators whose behavior it observed; this
//! module encodes them as [`OperatorSpec`]s, plus anonymous filler
//! operators drawn from the calibrated marginals to reach the configured
//! responder count. Names use `.test` suffixes — these are simulations
//! of the operators' *measured behaviors*, not the operators.

use crate::calibration as cal;
use netsim::Region;

/// How an operator's CRL and OCSP revocation databases disagree (§5.4,
/// Table 1, Figure 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConsistencyFault {
    /// Views agree (the overwhelming majority).
    None,
    /// A handful of CRL-revoked serials answer `Good` over OCSP
    /// (Camerfirma 7, Quovadis 1, StartSSL 1, Symantec 1, TWCA 1).
    GoodForSome {
        /// How many revoked serials the OCSP view misses.
        count: usize,
    },
    /// *Every* CRL-revoked serial answers `Unknown` over OCSP
    /// (GlobalSign gsalphasha2g2: all 5,375; Firmaprofesional: 11).
    UnknownForAll,
    /// OCSP revocation times lag the CRL (ocsp.msocsp.com: 7 h–9 d).
    OcspLag {
        /// Minimum lag in seconds.
        min: i64,
        /// Maximum lag in seconds.
        max: i64,
    },
}

/// Which scripted outage episode an operator participates in (§5.2's
/// narrated events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutageScript {
    /// No scripted episode (may still draw random transient outages).
    None,
    /// The Comodo episode: 2 h outage at 7 pm Apr 25, seen from Oregon,
    /// Sydney and Seoul, taking down 15 responders that share
    /// infrastructure (CNAMEs + shared IPs).
    ComodoApr25,
    /// wosign/startssl: 1 h outage at 10 pm Aug 3, all regions.
    WosignAug3,
    /// Digicert: 9 servers down 5 h from 9 am Aug 27, Seoul only.
    DigicertAug27,
    /// Certum: 16 servers down 2 h at 5 pm Aug 9, Sydney only.
    CertumAug9,
    /// `*.digitalcertvalidation.com`: persistent HTTP 404 from São Paulo
    /// (the wellsfargo.com scenario), fixed 11 pm Aug 31.
    DigitalCertValidationSaoPaulo,
    /// `ocsp.pki.wayport.net:2560`: fades out during the first month
    /// (the Figure 3 note, footnote 12).
    WayportGradualDeath,
    /// sheca.com: returns the body `"0"` for 6 h on Apr 29 and 3 h on
    /// Jul 28 (Figure 5's spikes).
    ShecaZeroEpisodes,
    /// postsignum.cz: starts returning `"0"` on May 1, briefly recovers
    /// for 17 h on May 12, then relapses.
    PostsignumZero,
    /// The two IdenTrust URLs that never answered from anywhere.
    IdentrustAlwaysDead,
}

/// A CA operator: identity, scale, quality profile, and scripted faults.
#[derive(Debug, Clone)]
pub struct OperatorSpec {
    /// Display name.
    pub name: &'static str,
    /// DNS slug (`ocsp.<slug>` etc.).
    pub slug: &'static str,
    /// Infrastructure group for correlated outages.
    pub infra_group: Option<&'static str>,
    /// Number of responder hostnames this operator runs.
    pub responder_count: usize,
    /// Where the responders are hosted.
    pub home_region: Region,
    /// Share of the certificate corpus issued by this operator.
    pub market_share: f64,
    /// Whether issued certificates carry a CRL Distribution Point
    /// (Let's Encrypt: no — OCSP only, §5.4 footnote 18).
    pub supports_crl: bool,
    /// Share of this operator's certificates carrying Must-Staple.
    pub must_staple_share: f64,
    /// CRL↔OCSP database fault.
    pub consistency: ConsistencyFault,
    /// Scripted outage participation.
    pub outage: OutageScript,
    /// Validity period of OCSP responses in seconds; `None` = blank
    /// `nextUpdate`.
    pub validity_secs: Option<i64>,
    /// `thisUpdate` margin (0 = zero margin; negative = future-dated).
    pub this_update_margin: i64,
    /// Pre-generation refresh interval; `None` = on-demand.
    pub pregen_interval: Option<i64>,
    /// Superfluous certificates per response.
    pub superfluous_certs: usize,
    /// Unsolicited serials per response.
    pub extra_serials: usize,
    /// Multi-instance producedAt skews (seconds); `&[0]` = one instance.
    pub instance_skews: &'static [i64],
}

impl OperatorSpec {
    /// A baseline spec; public so the generator can detect which knobs a
    /// named operator left at their defaults.
    pub const fn base(
        name: &'static str,
        slug: &'static str,
        responder_count: usize,
        home_region: Region,
        market_share: f64,
    ) -> OperatorSpec {
        OperatorSpec {
            name,
            slug,
            infra_group: None,
            responder_count,
            home_region,
            market_share,
            supports_crl: true,
            must_staple_share: 0.0,
            consistency: ConsistencyFault::None,
            outage: OutageScript::None,
            validity_secs: Some(cal::MEDIAN_VALIDITY_SECS),
            this_update_margin: 3_600,
            pregen_interval: Some(12 * 3_600),
            superfluous_certs: 0,
            extra_serials: 0,
            instance_skews: &[0],
        }
    }
}

/// The named operators, in declaration order. Market shares are loosely
/// modeled on 2018 issuance volume; Let's Encrypt dominates, and the
/// long tail is covered by filler operators.
pub fn named_operators() -> Vec<OperatorSpec> {
    let mut ops = Vec::new();

    // Let's Encrypt: the most popular CA, OCSP-only, supports
    // Must-Staple since May 2016; 97.3 % of all Must-Staple certs.
    let mut le = OperatorSpec::base(
        "Let's Encrypt",
        "lets-encrypt.test",
        1,
        Region::Virginia,
        0.32,
    );
    le.supports_crl = false;
    le.must_staple_share = 0.0008; // scaled so LE ends with ~97% of MS certs
    ops.push(le);

    // Comodo: the Apr 25 correlated episode — 15 responders tied
    // together by CNAMEs / shared IPs.
    let mut comodo = OperatorSpec::base("Comodo", "comodoca.test", 15, Region::Virginia, 0.20);
    comodo.infra_group = Some("comodo-infra");
    comodo.outage = OutageScript::ComodoApr25;
    comodo.must_staple_share = 0.00001;
    ops.push(comodo);

    // DigiCert proper: 9 servers, the Seoul-only Aug 27 outage.
    let mut digicert = OperatorSpec::base("DigiCert", "digicert.test", 9, Region::Oregon, 0.13);
    digicert.infra_group = Some("digicert-infra");
    digicert.outage = OutageScript::DigicertAug27;
    ops.push(digicert);

    // DigiCert's digitalcertvalidation brand: the São Paulo 404s
    // (wellsfargo.com's responder).
    let mut dcv = OperatorSpec::base(
        "DigitalCertValidation",
        "digitalcertvalidation.test",
        5,
        Region::Oregon,
        0.02,
    );
    dcv.infra_group = Some("digicert-infra");
    dcv.outage = OutageScript::DigitalCertValidationSaoPaulo;
    ops.push(dcv);

    // Certum: 16 servers, the Sydney-only Aug 9 outage.
    let mut certum = OperatorSpec::base("Certum", "certum.test", 16, Region::Paris, 0.03);
    certum.infra_group = Some("certum-infra");
    certum.outage = OutageScript::CertumAug9;
    ops.push(certum);

    // WoSign + StartSSL share infrastructure; joint Aug 3 outage.
    let mut wosign = OperatorSpec::base("WoSign", "wosign.test", 2, Region::Seoul, 0.02);
    wosign.infra_group = Some("wosign-infra");
    wosign.outage = OutageScript::WosignAug3;
    ops.push(wosign);
    let mut startssl = OperatorSpec::base("StartSSL", "startssl.test", 2, Region::Seoul, 0.02);
    startssl.infra_group = Some("wosign-infra");
    startssl.outage = OutageScript::WosignAug3;
    // Table 1: one CRL-revoked serial answers Good.
    startssl.consistency = ConsistencyFault::GoodForSome { count: 1 };
    ops.push(startssl);

    // SHECA: the "0"-body episodes (6 responders).
    let mut sheca = OperatorSpec::base("SHECA", "sheca.test", 6, Region::Seoul, 0.01);
    sheca.infra_group = Some("sheca-infra");
    sheca.outage = OutageScript::ShecaZeroEpisodes;
    ops.push(sheca);

    // PostSignum: "0" bodies from May 1 on (3 responders).
    let mut postsignum =
        OperatorSpec::base("PostSignum", "postsignum.test", 3, Region::Paris, 0.01);
    postsignum.infra_group = Some("postsignum-infra");
    postsignum.outage = OutageScript::PostsignumZero;
    ops.push(postsignum);

    // IdenTrust: the two URLs that never answered from anywhere.
    let mut identrust =
        OperatorSpec::base("IdenTrust", "identrust.test", 2, Region::Virginia, 0.02);
    identrust.outage = OutageScript::IdentrustAlwaysDead;
    ops.push(identrust);

    // Wayport: gradually dies during the first month (Figure 3's early
    // downward trend).
    let mut wayport = OperatorSpec::base("Wayport", "wayport.test", 1, Region::Oregon, 0.005);
    wayport.outage = OutageScript::WayportGradualDeath;
    ops.push(wayport);

    // hinet.net: 3 responders with validity == refresh interval (7200 s).
    let mut hinet = OperatorSpec::base("HiNet", "hinet.test", 3, Region::Seoul, 0.01);
    hinet.validity_secs = Some(cal::HINET_PERIOD);
    hinet.pregen_interval = Some(cal::HINET_PERIOD);
    hinet.this_update_margin = 0;
    ops.push(hinet);

    // CNNIC: one responder, 10 800 s validity == interval, plus the
    // multi-instance producedAt regressions of footnote 17.
    let mut cnnic = OperatorSpec::base("CNNIC", "cnnic.test", 1, Region::Seoul, 0.005);
    cnnic.validity_secs = Some(cal::CNNIC_PERIOD);
    cnnic.pregen_interval = Some(cal::CNNIC_PERIOD);
    cnnic.instance_skews = &[0, -150, -40];
    ops.push(cnnic);

    // A batch-mode operator standing in for the 17 responders (3.3 %)
    // that always answer with 20 serials per response (Figure 7's tail).
    let mut batch = OperatorSpec::base("BatchOCSP", "batch-ocsp.test", 2, Region::Virginia, 0.008);
    batch.extra_serials = 19;
    ops.push(batch);

    // A blank-nextUpdate operator standing in for the 45 responders
    // (9.1 %) whose responses never expire (Figure 8's infinite mass).
    let mut blank = OperatorSpec::base("EverFresh", "everfresh.test", 2, Region::Paris, 0.008);
    blank.validity_secs = None;
    blank.pregen_interval = None; // "newer information is always available"
    ops.push(blank);

    // A long-validity operator standing in for the 2 % with windows over
    // a month — stretched to the paper's observed 1,251-day maximum.
    let mut longv = OperatorSpec::base("SlowRotate", "slowrotate.test", 1, Region::Oregon, 0.004);
    longv.validity_secs = Some(cal::MAX_VALIDITY_SECS);
    ops.push(longv);

    // cpc.gov.ae: four full chains in every response (Figure 6's tail).
    let mut cpc = OperatorSpec::base("CPC-Gov-AE", "cpc-gov-ae.test", 1, Region::Paris, 0.002);
    cpc.superfluous_certs = 4;
    ops.push(cpc);

    // A CA whose OCSP view records revocations *earlier* than its CRL —
    // the 14.7 % negative tail of Figure 10 (the paper does not name
    // these operators).
    let mut early = OperatorSpec::base("EarlyBird", "earlybird.test", 1, Region::Oregon, 0.004);
    early.consistency = ConsistencyFault::OcspLag {
        min: -43_200,
        max: -60,
    };
    ops.push(early);

    // And one whose OCSP updates lag by months — Figure 10's long tail
    // "extends to over 137M seconds (which is over 4 years!)".
    let mut glacial =
        OperatorSpec::base("GlacialSync", "glacialsync.test", 1, Region::Paris, 0.003);
    glacial.consistency = ConsistencyFault::OcspLag {
        min: 30 * 86_400,
        max: cal::REVTIME_TAIL_SECS,
    };
    ops.push(glacial);

    // Microsoft (ocsp.msocsp.com): OCSP revocation times behind the CRL
    // by 7 h – 9 d.
    let mut msocsp = OperatorSpec::base("Microsoft", "msocsp.test", 1, Region::Virginia, 0.015);
    msocsp.consistency = ConsistencyFault::OcspLag {
        min: cal::MSOCSP_LAG_MIN,
        max: cal::MSOCSP_LAG_MAX,
    };
    ops.push(msocsp);

    // Table 1's Good-answering responders.
    let mut camerfirma =
        OperatorSpec::base("Camerfirma", "camerfirma.test", 1, Region::Paris, 0.004);
    camerfirma.consistency = ConsistencyFault::GoodForSome { count: 7 };
    ops.push(camerfirma);
    let mut quovadis =
        OperatorSpec::base("Quovadis", "quovadisglobal.test", 1, Region::Paris, 0.006);
    quovadis.consistency = ConsistencyFault::GoodForSome { count: 1 };
    ops.push(quovadis);
    let mut symantec = OperatorSpec::base("Symantec", "symcd.test", 4, Region::Virginia, 0.08);
    symantec.consistency = ConsistencyFault::GoodForSome { count: 1 };
    ops.push(symantec);
    let mut twca = OperatorSpec::base("TWCA", "twca.test", 1, Region::Seoul, 0.004);
    twca.consistency = ConsistencyFault::GoodForSome { count: 1 };
    ops.push(twca);

    // Table 1's Unknown-answering responders.
    let mut gs = OperatorSpec::base("GlobalSign-Alpha", "alphassl.test", 1, Region::Paris, 0.01);
    gs.consistency = ConsistencyFault::UnknownForAll;
    ops.push(gs);
    let mut firma = OperatorSpec::base(
        "Firmaprofesional",
        "firmaprofesional.test",
        1,
        Region::Paris,
        0.003,
    );
    firma.consistency = ConsistencyFault::UnknownForAll;
    ops.push(firma);

    // DFN and UserTrust: the remaining Must-Staple issuers of §4.
    let mut dfn = OperatorSpec::base("DFN", "dfn.test", 1, Region::Paris, 0.01);
    // Calibrated so LE keeps ~97.3 % of Must-Staple issuance overall.
    dfn.must_staple_share = 0.0005;
    ops.push(dfn);
    let mut usertrust =
        OperatorSpec::base("UserTrust", "usertrust.test", 1, Region::Virginia, 0.01);
    usertrust.must_staple_share = 0.000_005;
    ops.push(usertrust);

    ops
}

/// Total responders across the named operators.
pub fn named_responder_count() -> usize {
    named_operators().iter().map(|o| o.responder_count).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_is_complete() {
        let ops = named_operators();
        let names: Vec<_> = ops.iter().map(|o| o.name).collect();
        for expected in [
            "Let's Encrypt",
            "Comodo",
            "DigiCert",
            "DigitalCertValidation",
            "Certum",
            "WoSign",
            "StartSSL",
            "SHECA",
            "PostSignum",
            "IdenTrust",
            "Wayport",
            "HiNet",
            "CNNIC",
            "EarlyBird",
            "GlacialSync",
            "BatchOCSP",
            "EverFresh",
            "SlowRotate",
            "CPC-Gov-AE",
            "Microsoft",
            "Camerfirma",
            "Quovadis",
            "Symantec",
            "TWCA",
            "GlobalSign-Alpha",
            "Firmaprofesional",
            "DFN",
            "UserTrust",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn market_shares_leave_room_for_fillers() {
        let total: f64 = named_operators().iter().map(|o| o.market_share).sum();
        assert!(total < 1.0, "total share {total} must leave filler room");
        assert!(total > 0.8);
    }

    #[test]
    fn lets_encrypt_is_ocsp_only_and_dominant() {
        let ops = named_operators();
        let le = ops.iter().find(|o| o.name == "Let's Encrypt").unwrap();
        assert!(!le.supports_crl);
        assert!(le.must_staple_share > 0.0);
        assert!(ops.iter().all(|o| o.market_share <= le.market_share));
    }

    #[test]
    fn infra_groups_bind_the_episodes() {
        let ops = named_operators();
        let comodo_group: Vec<_> = ops
            .iter()
            .filter(|o| o.infra_group == Some("comodo-infra"))
            .collect();
        assert_eq!(
            comodo_group
                .iter()
                .map(|o| o.responder_count)
                .sum::<usize>(),
            15
        );
        let wosign_group: Vec<_> = ops
            .iter()
            .filter(|o| o.infra_group == Some("wosign-infra"))
            .collect();
        assert_eq!(wosign_group.len(), 2);
    }

    #[test]
    fn non_overlapping_operators_present() {
        let ops = named_operators();
        let hinet = ops.iter().find(|o| o.name == "HiNet").unwrap();
        assert_eq!(hinet.validity_secs, hinet.pregen_interval);
        let cnnic = ops.iter().find(|o| o.name == "CNNIC").unwrap();
        assert!(
            cnnic.instance_skews.len() > 1,
            "footnote 17 multi-instance skew"
        );
    }

    #[test]
    fn named_count_is_under_figures_scale() {
        assert!(named_responder_count() <= 110);
        assert!(named_responder_count() >= 80);
    }
}
