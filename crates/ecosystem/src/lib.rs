//! The synthetic certificate ecosystem.
//!
//! The paper's raw inputs are (a) a Censys certificate snapshot
//! (489,580,002 certificates, 112,841,653 valid), (b) the Alexa Top-1M
//! list, and (c) the live Internet of OCSP responders. None of those are
//! available offline, so this crate generates faithful synthetic
//! equivalents, *calibrated to the paper's own measured marginals* (all
//! constants live in [`calibration`] with section references):
//!
//! * [`corpus`] — a statistical certificate corpus for the §4 adoption
//!   analysis (OCSP support, Must-Staple share, per-CA breakdown);
//! * [`alexa`] — a popularity-ranked domain list with rank-dependent
//!   HTTPS/OCSP/stapling adoption (Figures 2 and 11);
//! * [`history`] — monthly snapshots May 2016 → Sep 2018, including the
//!   Cloudflare cruise-liner spike of June 2017 (Figure 12);
//! * [`authorities`] — the named CA operators with their responder
//!   quality profiles and shared-infrastructure groups;
//! * [`live`] — the *live* ecosystem: real CAs, real responders, a
//!   [`netsim::World`] wired with the paper's outage script, scan
//!   targets, and the revoked-certificate pool for the §5.4 consistency
//!   study;
//! * [`stream`] — the pull-based certificate feed: seeded deterministic
//!   iterators behind [`corpus`]/[`alexa`] (the batch types are now the
//!   streams' collects) plus mid-campaign churn events, enabling
//!   bounded-memory ×N scale (DESIGN.md §13).
//!
//! Scale is configurable; see [`config::EcosystemConfig`]. Defaults are
//! roughly 1:5 on responders and 1:1000 on certificate volume, which
//! keeps a full four-month campaign under a couple of minutes while
//! preserving every distribution shape.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod alexa;
pub mod authorities;
pub mod calibration;
pub mod config;
pub mod corpus;
pub mod history;
pub mod live;
pub mod stream;

pub use alexa::{AlexaList, AlexaSite};
pub use authorities::{ConsistencyFault, OperatorSpec};
pub use config::{Chunking, EcosystemConfig, Engine};
pub use corpus::{Corpus, CorpusStats};
pub use history::monthly_snapshots;
pub use live::{LiveEcosystem, ScanTarget};
pub use stream::{
    AlexaStream, CertEvent, ChurnConfig, ChurnStream, ChurnSummary, CorpusFold, CorpusStream,
};
