//! Scale configuration.

use crate::stream::ChurnConfig;
use asn1::Time;
use std::num::NonZeroUsize;

/// Which probe engine the network-bound scan campaigns run on. Both
/// engines produce byte-identical artifacts — the choice is purely a
/// throughput/architecture knob (DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The original work-queue engine: each work unit issues one
    /// blocking `World::http_post` at a time.
    #[default]
    Threads,
    /// The simulated-time reactor: each work unit submits all its
    /// probes up front and drains completions from an event wheel,
    /// keeping thousands of requests in flight per core.
    Reactor,
}

impl Engine {
    /// Parse a CLI value (`threads` | `reactor`).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "threads" => Some(Engine::Threads),
            "reactor" => Some(Engine::Reactor),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Threads => "threads",
            Engine::Reactor => "reactor",
        }
    }
}

/// How the hourly campaign splits its probe matrix into executor work
/// units. Lives here (not in `scanner`) so it can ride on
/// [`EcosystemConfig`] next to [`Engine`]; `scanner::hourly` re-exports
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Chunking {
    /// One work unit per responder — the original sharding. A slow
    /// responder (many certs, long fault paths) straggles behind the
    /// rest and caps parallel speedup.
    PerResponder,
    /// (responder × time-chunk) work units: each responder's rounds are
    /// cut at cache-safe boundaries so many short units keep every
    /// worker busy. Byte-identical to [`Chunking::PerResponder`] by
    /// construction (see `scanner::hourly::chunk_plan`).
    #[default]
    TimeSliced,
}

impl Chunking {
    /// Parse a CLI value (`per-responder` | `time-sliced`).
    pub fn parse(s: &str) -> Option<Chunking> {
        match s {
            "per-responder" => Some(Chunking::PerResponder),
            "time-sliced" => Some(Chunking::TimeSliced),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            Chunking::PerResponder => "per-responder",
            Chunking::TimeSliced => "time-sliced",
        }
    }
}

/// How large the synthetic ecosystem is. The *distributions* are always
/// calibrated to the paper; these knobs set only the sample counts.
#[derive(Debug, Clone)]
pub struct EcosystemConfig {
    /// Master seed: same seed, same ecosystem, bit for bit.
    pub seed: u64,
    /// Number of OCSP responders to stand up (paper: 536).
    pub responders: usize,
    /// Certificates sampled per responder for the Hourly scan (paper: 50).
    pub certs_per_responder: usize,
    /// Size of the statistical corpus (paper: ~112.8 M valid certs).
    pub corpus_size: usize,
    /// Size of the Alexa list (paper: 1 M).
    pub alexa_size: usize,
    /// Revoked certificates for the §5.4 consistency study
    /// (paper: 728,261 unexpired-and-revoked).
    pub revoked_pool: usize,
    /// Start of the measurement campaign (paper: 2018-04-25).
    pub campaign_start: Time,
    /// End of the campaign (paper: 2018-09-04).
    pub campaign_end: Time,
    /// Seconds between scan rounds (paper: hourly; default coarser to
    /// keep full campaigns fast — shapes are insensitive to this).
    pub scan_interval: i64,
    /// Worker threads for the scan campaigns. `None` means "use
    /// `std::thread::available_parallelism()`". Results are bit-identical
    /// for every setting — shards carry their own derived RNG streams —
    /// so this is purely a wall-clock knob.
    pub parallelism: Option<NonZeroUsize>,
    /// Probe engine for the network-bound campaigns. Byte-identical
    /// output either way; another pure wall-clock knob.
    pub engine: Engine,
    /// Hourly-campaign work-unit chunking. Byte-identical output either
    /// way (DESIGN.md §8).
    pub chunking: Chunking,
    /// Multiplier on the *statistical* populations (corpus + Alexa —
    /// see [`EcosystemConfig::scaled_corpus_size`]). Scan populations
    /// are untouched, so `1` (the default) reproduces every artifact
    /// byte for byte.
    pub scale_mult: usize,
    /// Run the §4 / Figure 2 / Figure 11 passes off the pull-based
    /// feeds ([`crate::stream`]) instead of materialized vectors.
    /// Byte-identical output either way; this is purely a memory knob
    /// (DESIGN.md §13).
    pub streaming: bool,
    /// Mid-campaign certificate churn (issuance/expiry/revocation
    /// events). `None` (the default) disables churn entirely; enabling
    /// it only adds telemetry gauges, which are excluded from every
    /// artifact-equality surface.
    pub churn: Option<ChurnConfig>,
}

impl EcosystemConfig {
    /// The default "figures" scale: ~1:5 responders, ~1:1000 volume,
    /// 12-hourly scan rounds. A full campaign runs in about a minute in
    /// release mode.
    pub fn figures() -> EcosystemConfig {
        EcosystemConfig {
            seed: 2018,
            responders: 110,
            certs_per_responder: 2,
            corpus_size: 120_000,
            alexa_size: 100_000,
            revoked_pool: 2_500,
            campaign_start: Time::from_civil(2018, 4, 25, 0, 0, 0),
            campaign_end: Time::from_civil(2018, 9, 4, 0, 0, 0),
            scan_interval: 2 * 3_600,
            parallelism: None,
            engine: Engine::Threads,
            chunking: Chunking::TimeSliced,
            scale_mult: 1,
            streaming: false,
            churn: None,
        }
    }

    /// A small scale for unit/integration tests: runs in well under a
    /// second, still exercising every code path.
    pub fn tiny() -> EcosystemConfig {
        EcosystemConfig {
            seed: 7,
            responders: 14,
            certs_per_responder: 2,
            corpus_size: 4_000,
            alexa_size: 5_000,
            revoked_pool: 60,
            campaign_start: Time::from_civil(2018, 4, 25, 0, 0, 0),
            campaign_end: Time::from_civil(2018, 5, 5, 0, 0, 0),
            scan_interval: 3 * 3_600,
            parallelism: None,
            engine: Engine::Threads,
            chunking: Chunking::TimeSliced,
            scale_mult: 1,
            streaming: false,
            churn: None,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> EcosystemConfig {
        self.seed = seed;
        self
    }

    /// Override the worker-thread count (`1` forces a serial run).
    pub fn with_parallelism(mut self, workers: usize) -> EcosystemConfig {
        self.parallelism = NonZeroUsize::new(workers);
        self
    }

    /// Override the probe engine.
    pub fn with_engine(mut self, engine: Engine) -> EcosystemConfig {
        self.engine = engine;
        self
    }

    /// Override the hourly-campaign chunking.
    pub fn with_chunking(mut self, chunking: Chunking) -> EcosystemConfig {
        self.chunking = chunking;
        self
    }

    /// Override the statistical-population scale multiplier.
    pub fn with_scale_mult(mut self, scale_mult: usize) -> EcosystemConfig {
        self.scale_mult = scale_mult;
        self
    }

    /// Toggle the streaming (bounded-memory) analysis paths.
    pub fn with_streaming(mut self, streaming: bool) -> EcosystemConfig {
        self.streaming = streaming;
        self
    }

    /// Enable mid-campaign certificate churn.
    pub fn with_churn(mut self, churn: ChurnConfig) -> EcosystemConfig {
        self.churn = Some(churn);
        self
    }

    /// The corpus size after the scale multiplier — what the §4 pass
    /// actually streams/generates.
    pub fn scaled_corpus_size(&self) -> usize {
        self.corpus_size * self.scale_mult.max(1)
    }

    /// The Alexa list size after the scale multiplier — what the
    /// Figure 2 / Figure 11 folds actually stream/generate. Scan-path
    /// populations (e.g. the Alexa1M probe set) intentionally keep the
    /// *base* `alexa_size`, so scan artifacts are scale-invariant.
    pub fn scaled_alexa_size(&self) -> usize {
        self.alexa_size * self.scale_mult.max(1)
    }

    /// Number of scan rounds in the campaign.
    pub fn scan_rounds(&self) -> usize {
        ((self.campaign_end - self.campaign_start) / self.scan_interval).max(0) as usize
    }

    /// Campaign length in days.
    pub fn campaign_days(&self) -> i64 {
        (self.campaign_end - self.campaign_start) / 86_400
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_scale_matches_paper_window() {
        let c = EcosystemConfig::figures();
        assert_eq!(c.campaign_days(), 132);
        assert!(c.scan_rounds() > 200);
    }

    #[test]
    fn tiny_is_actually_tiny() {
        let c = EcosystemConfig::tiny();
        assert!(c.responders < 20);
        assert!(c.scan_rounds() <= 80);
    }
}
