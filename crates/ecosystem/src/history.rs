//! Historical monthly snapshots — Figure 12.
//!
//! Figure 12 plots, from monthly Censys Alexa-1M scans between May 2016
//! and September 2018: (1) the fraction of HTTPS domains whose
//! certificates support OCSP, and (2) the fraction that also staple.
//! Both grow steadily, with a visible step in June 2017 when Cloudflare
//! started stapling for its cruise-liner certificates (11,675 → 78,907
//! stapled domains in one month).

use crate::calibration as cal;
use asn1::Time;

/// One monthly snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonthlySnapshot {
    /// Snapshot time (the paper scans mid-month).
    pub time: Time,
    /// Fraction of HTTPS Alexa domains whose certificates carry OCSP.
    pub ocsp_fraction: f64,
    /// Fraction that also staple.
    pub stapling_fraction: f64,
    /// Domains stapling via Cloudflare (the June 2017 step's driver).
    pub cloudflare_stapling_domains: u64,
}

/// Generate the snapshot series from May 2016 through September 2018.
pub fn monthly_snapshots() -> Vec<MonthlySnapshot> {
    let mut out = Vec::new();
    let months: Vec<(i32, u8)> = {
        let mut m = Vec::new();
        for year in 2016..=2018 {
            for month in 1..=12u8 {
                if (year == 2016 && month < 5) || (year == 2018 && month > 9) {
                    continue;
                }
                m.push((year, month));
            }
        }
        m
    };
    let n = months.len() as f64;
    for (i, (year, month)) in months.iter().enumerate() {
        let progress = i as f64 / (n - 1.0);
        // OCSP support among HTTPS domains: ~86 % → ~92 % over the window.
        let ocsp_fraction = 0.86 + 0.06 * progress;
        // Stapling: ~23 % → ~35 %, plus the Cloudflare step.
        let cloudflare = cloudflare_domains(*year, *month);
        // The Cloudflare step contributes roughly the jump the paper
        // reports: ~67k domains over an Alexa-1M base with ~600k
        // OCSP-capable HTTPS domains ≈ +8 percentage points among them.
        let cloudflare_boost =
            (cloudflare as f64 - cal::CLOUDFLARE_STAPLES_MAY17 as f64).max(0.0) / 800_000.0;
        let stapling_fraction = 0.23 + 0.08 * progress + cloudflare_boost;
        out.push(MonthlySnapshot {
            time: Time::from_civil(*year, *month, 15, 0, 0, 0),
            ocsp_fraction,
            stapling_fraction,
            cloudflare_stapling_domains: cloudflare,
        });
    }
    out
}

/// Cloudflare-stapled domain counts: flat, then the June 2017 expansion,
/// then continued growth.
fn cloudflare_domains(year: i32, month: u8) -> u64 {
    let before = cal::CLOUDFLARE_STAPLES_MAY17;
    let after = cal::CLOUDFLARE_STAPLES_JUN17;
    match (year, month) {
        (y, _) if y < 2017 => before,
        (2017, m) if m < 6 => before,
        (2017, 6) => after,
        (2017, m) => after + (m as u64 - 6) * 1_500,
        (y, m) => after + 9_000 + ((y - 2018) as u64 * 12 + m as u64) * 1_200,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_matches_figure() {
        let snaps = monthly_snapshots();
        assert_eq!(snaps.first().unwrap().time.civil().year, 2016);
        assert_eq!(snaps.first().unwrap().time.civil().month, 5);
        assert_eq!(snaps.last().unwrap().time.civil().year, 2018);
        assert_eq!(snaps.last().unwrap().time.civil().month, 9);
        assert_eq!(snaps.len(), 8 + 12 + 9);
    }

    #[test]
    fn both_series_grow() {
        let snaps = monthly_snapshots();
        let first = snaps.first().unwrap();
        let last = snaps.last().unwrap();
        assert!(last.ocsp_fraction > first.ocsp_fraction);
        assert!(last.stapling_fraction > first.stapling_fraction);
        // Nothing exceeds 100 %.
        assert!(snaps
            .iter()
            .all(|s| s.stapling_fraction < 1.0 && s.ocsp_fraction < 1.0));
    }

    #[test]
    fn june_2017_cloudflare_step() {
        let snaps = monthly_snapshots();
        let may17 = snaps
            .iter()
            .find(|s| s.time.civil() == civil(2017, 5))
            .unwrap();
        let jun17 = snaps
            .iter()
            .find(|s| s.time.civil() == civil(2017, 6))
            .unwrap();
        assert_eq!(
            may17.cloudflare_stapling_domains,
            cal::CLOUDFLARE_STAPLES_MAY17
        );
        assert_eq!(
            jun17.cloudflare_stapling_domains,
            cal::CLOUDFLARE_STAPLES_JUN17
        );
        // The visible spike: the largest month-over-month stapling jump
        // in the whole series is May → June 2017.
        let jumps: Vec<f64> = snaps
            .windows(2)
            .map(|w| w[1].stapling_fraction - w[0].stapling_fraction)
            .collect();
        let max_jump_idx = jumps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(snaps[max_jump_idx + 1].time.civil(), civil(2017, 6));
    }

    fn civil(year: i32, month: u8) -> asn1::Civil {
        Time::from_civil(year, month, 15, 0, 0, 0).civil()
    }
}
