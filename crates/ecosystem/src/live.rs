//! The live ecosystem: real CAs, real responders, a wired `World`.
//!
//! This is what the scanning experiments (§5) run against. Generation:
//!
//! 1. stand up the named operators plus anonymous fillers until the
//!    configured responder count is reached, each with a CA (real keys)
//!    and one or more responder hostnames;
//! 2. draw each filler responder's quality profile from the calibrated
//!    marginals (validity, margins, pre-generation, superfluous
//!    certs/serials, persistent malformation);
//! 3. issue scan-target certificates per responder (the Hourly
//!    population) and the revoked pool (the consistency study);
//! 4. script the §5.2 outage calendar — the named episodes plus random
//!    transient outages at the calibrated 36.8 % incidence;
//! 5. wire everything into a [`netsim::World`].

use crate::authorities::{named_operators, ConsistencyFault, OperatorSpec, OutageScript};
use crate::calibration as cal;
use crate::config::EcosystemConfig;
use asn1::Time;
use netsim::outage::RegionScope;
use netsim::{FailureKind, HandlerFactory, Outage, Region, Topology, World};
use ocsp::{CertId, MalformMode, Responder, ResponderProfile};
use pki::{Certificate, CertificateAuthority, IssueParams, RevocationReason, RootStore, Serial};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One responder hostname and its behavior.
#[derive(Debug, Clone)]
pub struct ResponderHost {
    /// DNS name, e.g. `ocsp3.comodoca.test`.
    pub hostname: String,
    /// Full URL as it appears in AIA extensions.
    pub url: String,
    /// Index into [`LiveEcosystem::operators`].
    pub operator: usize,
    /// Quality profile.
    pub profile: ResponderProfile,
    /// Hosting region.
    pub region: Region,
    /// Infrastructure group (correlated failures).
    pub infra_group: Option<String>,
}

/// One operator stood up with real key material.
pub struct LiveOperator {
    /// Display name.
    pub name: String,
    /// The CA (keys, issuance, revocation DBs).
    pub ca: CertificateAuthority,
    /// Which scripted episode, if any.
    pub outage: OutageScript,
    /// CRL↔OCSP fault.
    pub consistency: ConsistencyFault,
    /// The operator's CRL hostname.
    pub crl_host: String,
    /// Whether issued certificates carry CRL DPs.
    pub supports_crl: bool,
    /// Share of the certificate market (drives how many Alexa domains
    /// depend on this operator's responders).
    pub market_share: f64,
}

/// One certificate tracked by the Hourly scan.
#[derive(Debug, Clone)]
pub struct ScanTarget {
    /// The certificate.
    pub cert: Certificate,
    /// Its OCSP CertID.
    pub cert_id: CertId,
    /// Issuing operator index.
    pub operator: usize,
    /// Index into [`LiveEcosystem::responders`].
    pub responder: usize,
    /// The responder URL to query.
    pub url: String,
}

/// One revoked certificate in the consistency-study pool.
#[derive(Debug, Clone)]
pub struct RevokedTarget {
    /// Serial number.
    pub serial: Serial,
    /// OCSP CertID.
    pub cert_id: CertId,
    /// Issuing operator index.
    pub operator: usize,
    /// Responder URL.
    pub url: String,
    /// CRL URL.
    pub crl_url: String,
}

/// The full live ecosystem.
pub struct LiveEcosystem {
    /// Generation configuration.
    pub config: EcosystemConfig,
    /// All operators.
    pub operators: Vec<LiveOperator>,
    /// All responder hosts, flattened.
    pub responders: Vec<ResponderHost>,
    /// The Hourly-scan population.
    pub scan_targets: Vec<ScanTarget>,
    /// The consistency-study pool (revoked, unexpired).
    pub revoked: Vec<RevokedTarget>,
    /// Root store trusting every operator.
    pub root_store: RootStore,
}

impl LiveEcosystem {
    /// Generate the ecosystem.
    pub fn generate(config: EcosystemConfig) -> LiveEcosystem {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x11FE);
        let t0 = config.campaign_start;
        let specs = named_operators();

        let mut operators = Vec::new();
        let mut responders: Vec<ResponderHost> = Vec::new();
        let mut root_store = RootStore::new("union(Apple, Microsoft, NSS)");

        // Named operators first, trimmed to the responder budget.
        for spec in &specs {
            if responders.len() >= config.responders {
                break;
            }
            let idx = operators.len();
            let ca = CertificateAuthority::new_root(
                &mut rng,
                spec.name,
                &format!("{} Root CA", spec.name),
                spec.slug,
                t0 - 365 * 86_400,
            );
            root_store.add(ca.certificate().clone());
            let count = spec
                .responder_count
                .min(config.responders - responders.len());
            for r in 0..count {
                let hostname = if spec.responder_count == 1 {
                    format!("ocsp.{}", spec.slug)
                } else {
                    format!("ocsp{}.{}", r + 1, spec.slug)
                };
                responders.push(ResponderHost {
                    url: format!("http://{hostname}/"),
                    hostname,
                    operator: idx,
                    profile: profile_from_spec(spec, &mut rng),
                    region: spec.home_region,
                    infra_group: spec.infra_group.map(str::to_string),
                });
            }
            operators.push(LiveOperator {
                name: spec.name.to_string(),
                crl_host: format!("crl.{}", spec.slug),
                ca,
                outage: spec.outage,
                consistency: spec.consistency,
                supports_crl: spec.supports_crl,
                market_share: spec.market_share,
            });
        }

        // Filler operators until the responder budget is filled.
        let mut filler_idx = 0;
        let mut malformed_budget = scaled(cal::PERSISTENT_MALFORMED, config.responders);
        while responders.len() < config.responders {
            let idx = operators.len();
            let slug = format!("ca{filler_idx:03}.test");
            let name = format!("Other-{filler_idx:03}");
            let ca = CertificateAuthority::new_root(
                &mut rng,
                &name,
                &format!("{name} Root"),
                &slug,
                t0 - 365 * 86_400,
            );
            root_store.add(ca.certificate().clone());
            let hostname = format!("ocsp.{slug}");
            let mut profile = draw_filler_profile(&mut rng);
            if malformed_budget > 0 && rng.gen_bool(0.3) {
                profile = profile.malformed(if malformed_budget.is_multiple_of(2) {
                    MalformMode::LiteralZero
                } else {
                    MalformMode::JavascriptPage
                });
                malformed_budget -= 1;
            }
            responders.push(ResponderHost {
                url: format!("http://{hostname}/"),
                hostname,
                operator: idx,
                profile,
                region: [
                    Region::Oregon,
                    Region::Virginia,
                    Region::Paris,
                    Region::Seoul,
                ][rng.gen_range(0..4usize)],
                infra_group: None,
            });
            operators.push(LiveOperator {
                name,
                crl_host: format!("crl.{slug}"),
                ca,
                outage: OutageScript::None,
                consistency: ConsistencyFault::None,
                supports_crl: true,
                market_share: 0.004,
            });
            filler_idx += 1;
        }

        // Scan targets: `certs_per_responder` certificates per responder.
        let mut scan_targets = Vec::new();
        for (r_idx, host) in responders.iter().enumerate() {
            let op = &mut operators[host.operator];
            for c in 0..config.certs_per_responder {
                let domain = format!("scan-{r_idx:03}-{c:02}.example");
                let params = IssueParams {
                    domain,
                    extra_dns_names: vec![],
                    validity: pki::Validity {
                        not_before: t0 - 30 * 86_400,
                        // ≥30 days of validity left at campaign end, per
                        // the paper's selection criterion (§5.1 step 1).
                        not_after: config.campaign_end + 60 * 86_400,
                    },
                    must_staple: false,
                    with_ocsp_url: true,
                    with_crl_url: op.supports_crl,
                };
                let cert = op.ca.issue(&mut rng, &params);
                let cert_id = CertId::for_certificate(&cert, op.ca.certificate());
                scan_targets.push(ScanTarget {
                    cert,
                    cert_id,
                    operator: host.operator,
                    responder: r_idx,
                    url: host.url.clone(),
                });
            }
        }

        // The revoked pool, spread across CRL-supporting operators.
        let mut revoked = Vec::new();
        let mut crl_only_used = vec![0usize; operators.len()];
        let crl_ops: Vec<usize> = operators
            .iter()
            .enumerate()
            .filter(|(_, o)| o.supports_crl)
            .map(|(i, _)| i)
            .collect();
        for i in 0..config.revoked_pool {
            let op_idx = crl_ops[i % crl_ops.len()];
            let url = responders
                .iter()
                .find(|r| r.operator == op_idx)
                .map(|r| r.url.clone())
                .unwrap_or_default();
            let op = &mut operators[op_idx];
            let domain = format!("revoked-{i:05}.example");
            let params = IssueParams {
                domain,
                extra_dns_names: vec![],
                validity: pki::Validity {
                    not_before: t0 - 180 * 86_400,
                    not_after: config.campaign_end + 180 * 86_400,
                },
                must_staple: false,
                with_ocsp_url: true,
                with_crl_url: true,
            };
            let cert = op.ca.issue(&mut rng, &params);
            let serial = cert.serial().clone();
            let revoked_at = t0 - rng.gen_range(1i64..150) * 86_400;
            apply_revocation(
                &mut rng,
                op,
                &serial,
                revoked_at,
                &mut crl_only_used[op_idx],
            );
            revoked.push(RevokedTarget {
                cert_id: CertId::for_certificate(&cert, op.ca.certificate()),
                serial,
                operator: op_idx,
                url,
                crl_url: format!("http://{}/latest.crl", op.crl_host),
            });
        }

        LiveEcosystem {
            config,
            operators,
            responders,
            scan_targets,
            revoked,
            root_store,
        }
    }

    /// Wire the ecosystem into a shared, immutable [`Topology`]:
    /// responder handler factories, CRL handler factories, and the full
    /// outage calendar. Any number of [`World`]s — one per scan shard —
    /// can be built over the result; each instantiates its own handler
    /// (and thus its own responder caches) on first contact with a host.
    pub fn build_topology(&self) -> Arc<Topology> {
        let mut topo = Topology::new(self.config.seed ^ 0x0417);
        let t0 = self.config.campaign_start;

        for host in &self.responders {
            let op = &self.operators[host.operator];
            let ca = op.ca.clone();
            let url = host.url.clone();
            // The sheca/postsignum "0"-body episodes are HTTP-200
            // garbage, not outages — handled inside the HTTP handler.
            let zero_windows = zero_body_windows(op.outage, t0);
            let healthy_profile = host.profile.clone();
            let factory: HandlerFactory = Box::new(move || {
                let ca = ca.clone();
                let mut responder = Responder::new(&url, healthy_profile.clone());
                let healthy_profile = healthy_profile.clone();
                let zero_windows = zero_windows.clone();
                Box::new(
                    move |_path: &str,
                          body: &[u8],
                          now: Time,
                          _region: Region,
                          reg: &mut telemetry::Registry| {
                        let in_zero_episode = zero_windows
                            .iter()
                            .any(|&(start, end)| start <= now && now < end);
                        if in_zero_episode {
                            responder.set_profile(
                                healthy_profile.clone().malformed(MalformMode::LiteralZero),
                            );
                        } else if responder.profile().malform == MalformMode::LiteralZero
                            && healthy_profile.malform != MalformMode::LiteralZero
                        {
                            responder.set_profile(healthy_profile.clone());
                        }
                        (200, responder.handle_bytes_with(&ca, body, now, reg))
                    },
                )
            });
            topo.register(
                &host.hostname,
                host.region,
                host.infra_group.as_deref(),
                factory,
            );

            // Host-scoped pieces of the outage script.
            for outage in host_outages(op.outage, t0, self.config.campaign_end) {
                topo.add_outage(&host.hostname, outage);
            }
        }

        // CRL endpoints: one per operator, serving a freshly signed CRL.
        for op in &self.operators {
            let ca = op.ca.clone();
            let factory: HandlerFactory = Box::new(move || {
                let ca = ca.clone();
                Box::new(
                    move |_path: &str,
                          _body: &[u8],
                          now: Time,
                          _r: Region,
                          _reg: &mut telemetry::Registry| {
                        // Weekly CRL windows.
                        let this_update =
                            Time::from_unix(now.unix() - now.unix().rem_euclid(7 * 86_400));
                        let crl = ca.generate_crl(this_update, Some(this_update + 7 * 86_400));
                        (200, crl.to_der())
                    },
                )
            });
            topo.register(&op.crl_host, Region::Virginia, None, factory);
        }

        // Group-scoped episodes.
        self.schedule_group_episodes(&mut topo, t0);

        // Random transient outages at the calibrated incidence.
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x007A6E);
        let campaign_secs = self.config.campaign_end - t0;
        for host in &self.responders {
            let op = &self.operators[host.operator];
            let scripted = op.outage != OutageScript::None;
            // Let's Encrypt's responder is CDN-fronted (Zhu et al.: 94 %
            // of OCSP requests hit CDN edges) — modeled as outage-free.
            // A random outage there would dwarf every scripted episode,
            // because a third of all domains ride on that one URL.
            let cdn_fronted = op.name == "Let's Encrypt";
            if scripted || cdn_fronted || !rng.gen_bool(cal::TRANSIENT_OUTAGE_FRACTION) {
                continue;
            }
            let episodes = rng.gen_range(1..=3);
            for _ in 0..episodes {
                let start = t0 + rng.gen_range(0..campaign_secs.max(1));
                let duration = rng.gen_range(1i64..=5) * 3_600;
                let kind = match rng.gen_range(0..4) {
                    0 => FailureKind::DnsNxDomain,
                    1 => FailureKind::TcpConnect,
                    2 => FailureKind::Http4xx,
                    _ => FailureKind::Http5xx,
                };
                let scope = if rng.gen_bool(0.5) {
                    RegionScope::All
                } else {
                    let n = rng.gen_range(1..=3);
                    let mut regions = Region::VANTAGE_POINTS.to_vec();
                    // Deterministic subset.
                    for i in (1..regions.len()).rev() {
                        regions.swap(i, rng.gen_range(0..=i));
                    }
                    regions.truncate(n);
                    RegionScope::Only(regions)
                };
                topo.add_outage(
                    &host.hostname,
                    Outage {
                        start,
                        end: Some(start + duration),
                        scope,
                        kind,
                    },
                );
            }
        }

        Arc::new(topo)
    }

    /// Wire the ecosystem into one fresh `World` over its own topology.
    pub fn build_world(&self) -> World {
        World::from_topology(self.build_topology())
    }

    fn schedule_group_episodes(&self, topo: &mut Topology, t0: Time) {
        // Comodo, Apr 25 19:00, 2 h, Oregon/Sydney/Seoul, whole group.
        topo.add_group_outage(
            "comodo-infra",
            Outage::regional(
                t0 + 19 * 3_600,
                2 * 3_600,
                vec![Region::Oregon, Region::Sydney, Region::Seoul],
                FailureKind::TcpConnect,
            ),
        );
        // wosign/startssl, Aug 3 22:00, 1 h, everywhere.
        topo.add_group_outage(
            "wosign-infra",
            Outage::transient(
                Time::from_civil(2018, 8, 3, 22, 0, 0),
                3_600,
                FailureKind::TcpConnect,
            ),
        );
        // Digicert, Aug 27 09:00, 5 h, Seoul only.
        topo.add_group_outage(
            "digicert-infra",
            Outage::regional(
                Time::from_civil(2018, 8, 27, 9, 0, 0),
                5 * 3_600,
                vec![Region::Seoul],
                FailureKind::TcpConnect,
            ),
        );
        // Certum, Aug 9 17:00, 2 h, Sydney only.
        topo.add_group_outage(
            "certum-infra",
            Outage::regional(
                Time::from_civil(2018, 8, 9, 17, 0, 0),
                2 * 3_600,
                vec![Region::Sydney],
                FailureKind::TcpConnect,
            ),
        );
    }

    /// Scan targets belonging to one responder.
    pub fn targets_of(&self, responder: usize) -> impl Iterator<Item = &ScanTarget> {
        self.scan_targets
            .iter()
            .filter(move |t| t.responder == responder)
    }

    /// The CA certificate of an operator.
    pub fn issuer_of(&self, operator: usize) -> &Certificate {
        self.operators[operator].ca.certificate()
    }

    /// How many Alexa domains depend on each responder, allocating
    /// `alexa_ocsp_domains` proportionally to operator market share and
    /// evenly across an operator's responders. Drives Figure 4's
    /// impact-of-outages analysis.
    pub fn alexa_domains_per_responder(&self, alexa_ocsp_domains: usize) -> Vec<usize> {
        let total_share: f64 = self.operators.iter().map(|o| o.market_share).sum();
        let mut weights = vec![0usize; self.responders.len()];
        for (idx, host) in self.responders.iter().enumerate() {
            let op = &self.operators[host.operator];
            let responders_of_op = self
                .responders
                .iter()
                .filter(|r| r.operator == host.operator)
                .count();
            let op_domains =
                (alexa_ocsp_domains as f64 * op.market_share / total_share).round() as usize;
            weights[idx] = op_domains / responders_of_op.max(1);
        }
        weights
    }
}

/// Scale a paper-sized count to the configured responder population.
fn scaled(paper_count: usize, responders: usize) -> usize {
    ((paper_count * responders) as f64 / cal::HOURLY_RESPONDERS as f64).round() as usize
}

/// Quality profile for a named operator's responder. Knobs the spec
/// leaves at their defaults are drawn from the §5 marginal distributions
/// — the paper's population statistics (17.2 % zero margin, 14.5 %
/// multi-cert, …) hold across *all* responders, named operators
/// included, not just the anonymous fillers.
fn profile_from_spec(spec: &OperatorSpec, rng: &mut StdRng) -> ResponderProfile {
    let defaults = OperatorSpec::base("", "", 1, Region::Virginia, 0.0);
    let drawn = draw_filler_profile(rng);
    let mut profile = ResponderProfile {
        validity_secs: if spec.validity_secs == defaults.validity_secs {
            drawn.validity_secs
        } else {
            spec.validity_secs
        },
        this_update_margin: if spec.this_update_margin == defaults.this_update_margin {
            drawn.this_update_margin
        } else {
            spec.this_update_margin
        },
        generation: match spec.pregen_interval {
            Some(interval) if Some(interval) == defaults.pregen_interval => drawn.generation,
            Some(interval) => ocsp::profile::GenerationMode::PreGenerated { interval },
            None => ocsp::profile::GenerationMode::OnDemand,
        },
        superfluous_certs: if spec.superfluous_certs == 0 {
            drawn.superfluous_certs
        } else {
            spec.superfluous_certs
        },
        extra_serials: if spec.extra_serials == 0 {
            drawn.extra_serials
        } else {
            spec.extra_serials
        },
        malform: MalformMode::Valid,
        wrong_serial: false,
        corrupt_signature: false,
        instance_skews: spec.instance_skews.to_vec(),
    };
    if profile.instance_skews.is_empty() {
        profile.instance_skews = vec![0];
    }
    // A backdating margin larger than the validity period would make
    // every response arrive already expired; cap it at half the window
    // (relevant when a spec pins a short validity, like CNNIC's 10800 s,
    // while the margin is drawn from the population marginal).
    if let Some(validity) = profile.validity_secs {
        if profile.this_update_margin > validity / 2 {
            profile.this_update_margin = validity / 2;
        }
    }
    profile
}

/// Draw a filler responder's quality profile from the §5 marginals.
fn draw_filler_profile(rng: &mut StdRng) -> ResponderProfile {
    let mut profile = ResponderProfile::healthy();

    // Validity period (Figure 8): blank 9.1 %, >1 month 2 %, else around
    // the one-week median (1–14 days).
    let v: f64 = rng.gen_range(0.0..1.0);
    if v < cal::BLANK_NEXT_UPDATE_FRACTION {
        profile.validity_secs = None;
    } else if v < cal::BLANK_NEXT_UPDATE_FRACTION + cal::MONTH_PLUS_VALIDITY_FRACTION {
        profile.validity_secs = Some(rng.gen_range(31 * 86_400..=cal::MAX_VALIDITY_SECS));
    } else {
        profile.validity_secs = Some(rng.gen_range(86_400..=14 * 86_400));
    }

    // thisUpdate margin (Figure 9): zero 17.2 %, future 3 %, else 1 m–1 d.
    let m: f64 = rng.gen_range(0.0..1.0);
    let zero_or_future = m < cal::ZERO_MARGIN_FRACTION + cal::FUTURE_THIS_UPDATE_FRACTION;
    profile.this_update_margin = if m < cal::ZERO_MARGIN_FRACTION {
        0
    } else if zero_or_future {
        -rng.gen_range(30i64..600)
    } else {
        rng.gen_range(60..86_400)
    };

    // Pre-generation (51.7 % of all responders), refresh 1–24 h. The
    // zero/future-margin responders above are necessarily on-demand — a
    // cached window always shows a positive observed margin (window age),
    // so Figure 9's zero-margin mass can only come from responders that
    // sign at fetch time. Concentrate the pre-generated mass on the rest,
    // scaled so the population marginal still comes out at 51.7 %.
    let pregen_given_nonzero = cal::PRE_GENERATED_FRACTION
        / (1.0 - cal::ZERO_MARGIN_FRACTION - cal::FUTURE_THIS_UPDATE_FRACTION);
    if !zero_or_future && rng.gen_bool(pregen_given_nonzero) {
        let interval = rng.gen_range(1i64..=24) * 3_600;
        profile = profile.pre_generated(interval);
    }

    // Superfluous certificates (Figure 6: 14.5 % send >1 cert).
    if rng.gen_bool(cal::MULTI_CERT_FRACTION) {
        profile.superfluous_certs = rng.gen_range(1..=4);
    }

    // Extra serials (Figure 7): 3.3 % send 20; another 1.5 % send 2–5.
    let s: f64 = rng.gen_range(0.0..1.0);
    if s < cal::TWENTY_SERIAL_FRACTION {
        profile.extra_serials = 19;
    } else if s < cal::MULTI_SERIAL_FRACTION {
        profile.extra_serials = rng.gen_range(1..=4);
    }

    profile
}

/// Per-host outage pieces of the named episodes.
fn host_outages(script: OutageScript, t0: Time, end: Time) -> Vec<Outage> {
    match script {
        OutageScript::IdentrustAlwaysDead => vec![Outage::persistent(
            t0 - 86_400,
            RegionScope::All,
            FailureKind::DnsNxDomain,
        )],
        OutageScript::DigitalCertValidationSaoPaulo => {
            // Persistent São Paulo 404s, fixed 23:00 Aug 31.
            let fixed_at = Time::from_civil(2018, 8, 31, 23, 0, 0);
            vec![Outage {
                start: t0 - 86_400,
                end: Some(fixed_at),
                scope: RegionScope::Only(vec![Region::SaoPaulo]),
                kind: FailureKind::Http4xx,
            }]
        }
        OutageScript::WayportGradualDeath => {
            // Fades over the first month: day k suffers a k-hour outage,
            // then stays down for good.
            let mut outages = Vec::new();
            for day in 0..30 {
                let start = t0 + day * 86_400;
                outages.push(Outage::transient(
                    start,
                    (day * 3_600).min(86_400 - 1),
                    FailureKind::TcpConnect,
                ));
            }
            outages.push(Outage::persistent(
                t0 + 30 * 86_400,
                RegionScope::All,
                FailureKind::TcpConnect,
            ));
            let _ = end;
            outages
        }
        _ => Vec::new(),
    }
}

/// Windows during which an operator's responders return the body `"0"`.
fn zero_body_windows(script: OutageScript, t0: Time) -> Vec<(Time, Time)> {
    match script {
        OutageScript::ShecaZeroEpisodes => vec![
            // Apr 29, 6 hours (the Figure 5 spike).
            {
                let start = Time::from_civil(2018, 4, 29, 8, 0, 0);
                (start, start + 6 * 3_600)
            },
            // Jul 28 17:00, 3 hours.
            {
                let start = Time::from_civil(2018, 7, 28, 17, 0, 0);
                (start, start + 3 * 3_600)
            },
        ],
        OutageScript::PostsignumZero => {
            // From May 1 on, with a 17-hour recovery on May 12 09:00.
            let start = Time::from_civil(2018, 5, 1, 0, 0, 0);
            let recover = Time::from_civil(2018, 5, 12, 9, 0, 0);
            let relapse = recover + 17 * 3_600;
            let far_future = t0 + 10 * 365 * 86_400;
            vec![(start, recover), (relapse, far_future)]
        }
        _ => Vec::new(),
    }
}

/// Apply one revocation with the operator's consistency fault and the
/// background reason/time drift of §5.4. `crl_only_used` tracks how many
/// of a `GoodForSome` operator's revocations have been diverted to the
/// CRL-only path.
fn apply_revocation(
    rng: &mut StdRng,
    op: &mut LiveOperator,
    serial: &Serial,
    revoked_at: Time,
    crl_only_used: &mut usize,
) {
    use pki::ca::RevocationRecord;

    // Reason placement: most revocations carry no reason anywhere; 15 %
    // have one in the CRL only (the 99.99 % discrepancy shape of §5.4);
    // the rest carry it in both views.
    let reason_draw: f64 = rng.gen_range(0.0..1.0);
    let (crl_reason, ocsp_reason) = if reason_draw < 0.60 {
        (None, None)
    } else if reason_draw < 0.60 + cal::REASON_DIFF_FRACTION {
        (Some(RevocationReason::CessationOfOperation), None)
    } else {
        (
            Some(RevocationReason::KeyCompromise),
            Some(RevocationReason::KeyCompromise),
        )
    };

    // Revocation-time drift.
    let ocsp_time = match op.consistency {
        ConsistencyFault::OcspLag { min, max } => revoked_at + rng.gen_range(min..=max),
        _ if rng.gen_bool(cal::REVTIME_DIFF_FRACTION) => {
            // Background drift for otherwise healthy operators: 14.7 %
            // negative (OCSP earlier), the rest a log-uniform positive
            // tail out to the Figure 10 maximum of ~137 M seconds.
            if rng.gen_bool(cal::REVTIME_NEGATIVE_FRACTION) {
                revoked_at - rng.gen_range(60i64..43_200)
            } else {
                let exp: f64 = rng.gen_range(2.0..(cal::REVTIME_TAIL_SECS as f64).log10());
                revoked_at + 10f64.powf(exp) as i64
            }
        }
        _ => revoked_at,
    };

    let crl_record = RevocationRecord {
        time: revoked_at,
        reason: crl_reason,
    };
    let ocsp_record = RevocationRecord {
        time: ocsp_time,
        reason: ocsp_reason,
    };

    match op.consistency {
        ConsistencyFault::GoodForSome { count } if *crl_only_used < count => {
            *crl_only_used += 1;
            op.ca.revoke_detailed(serial, Some(crl_record), None);
        }
        ConsistencyFault::UnknownForAll => {
            op.ca.revoke_detailed(serial, Some(crl_record), None);
            op.ca.mark_ocsp_unknown(serial);
        }
        _ => {
            op.ca
                .revoke_detailed(serial, Some(crl_record), Some(ocsp_record));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::HttpOutcome;
    use ocsp::OcspRequest;

    fn eco() -> LiveEcosystem {
        LiveEcosystem::generate(EcosystemConfig::tiny())
    }

    #[test]
    fn generation_meets_config() {
        let e = eco();
        assert_eq!(e.responders.len(), e.config.responders);
        assert_eq!(
            e.scan_targets.len(),
            e.config.responders * e.config.certs_per_responder
        );
        assert_eq!(e.revoked.len(), e.config.revoked_pool);
        assert!(e.root_store.len() >= e.operators.len());
    }

    #[test]
    fn scan_targets_verify_against_their_ca() {
        let e = eco();
        for target in e.scan_targets.iter().take(5) {
            let issuer = e.issuer_of(target.operator);
            assert!(target.cert.verify_signature(issuer.public_key()));
            assert_eq!(
                target.cert.ocsp_urls(),
                vec![e.operators[target.operator].ca.ocsp_url().to_string()]
            );
        }
    }

    #[test]
    fn world_answers_ocsp_queries() {
        let e = eco();
        let mut world = e.build_world();
        let t = e.config.campaign_start + 3 * 3_600;
        let target = &e.scan_targets[0];
        let req = OcspRequest::single(target.cert_id.clone()).to_der();
        let result = world.http_post(Region::Virginia, &target.url, &req, t);
        match result.outcome {
            HttpOutcome::Ok(body) => {
                let issuer = e.issuer_of(target.operator);
                let validated =
                    ocsp::validate_response(&body, &target.cert_id, issuer, t, Default::default());
                // Healthy or profiled-faulty are both possible; what must
                // hold is that *parse + validate* runs and classifies.
                let _ = validated;
            }
            other => {
                // Outage-scripted hosts may legitimately fail.
                let _ = other;
            }
        }
    }

    #[test]
    fn crl_endpoints_serve_signed_crls() {
        let e = eco();
        let mut world = e.build_world();
        let t = e.config.campaign_start + 3_600;
        let rv = &e.revoked[0];
        let result = world.http_post(Region::Paris, &rv.crl_url, b"", t);
        let HttpOutcome::Ok(body) = result.outcome else {
            panic!("CRL fetch failed: {:?}", result.outcome)
        };
        let crl = pki::Crl::from_der(&body).unwrap();
        let issuer = e.issuer_of(rv.operator);
        assert!(crl.verify_signature(issuer.public_key()));
        assert!(crl.is_revoked(&rv.serial));
    }

    #[test]
    fn consistency_faults_present_at_scale() {
        // Use a slightly larger pool so the named faulty operators receive
        // certificates.
        let mut config = EcosystemConfig::tiny();
        config.responders = 92; // include all named operators
        config.revoked_pool = 200;
        let e = LiveEcosystem::generate(config);
        // At least one revoked target must diverge between views.
        let mut divergent = 0;
        for rv in &e.revoked {
            let op = &e.operators[rv.operator];
            let crl = op.ca.crl_revocation(&rv.serial);
            let ocsp_rec = op.ca.ocsp_revocation(&rv.serial);
            match (crl, ocsp_rec) {
                (Some(c), Some(o)) if c.time != o.time => divergent += 1,
                (Some(_), None) => divergent += 1,
                _ => {}
            }
        }
        assert!(divergent > 0, "expected some CRL/OCSP divergence");
    }

    #[test]
    fn deterministic_generation() {
        let a = LiveEcosystem::generate(EcosystemConfig::tiny());
        let b = LiveEcosystem::generate(EcosystemConfig::tiny());
        assert_eq!(a.responders.len(), b.responders.len());
        for (x, y) in a.scan_targets.iter().zip(&b.scan_targets) {
            assert_eq!(x.cert.serial(), y.cert.serial());
        }
    }

    #[test]
    fn identrust_hosts_never_answer() {
        let mut config = EcosystemConfig::tiny();
        config.responders = 80; // enough to include every named operator
        let e = LiveEcosystem::generate(config);
        let mut world = e.build_world();
        let dead: Vec<_> = e
            .responders
            .iter()
            .filter(|r| e.operators[r.operator].name == "IdenTrust")
            .collect();
        assert_eq!(dead.len(), 2);
        for host in dead {
            for &region in &Region::VANTAGE_POINTS {
                let r = world.http_post(
                    region,
                    &host.url,
                    b"",
                    e.config.campaign_start + 50 * 86_400,
                );
                assert_eq!(r.outcome, HttpOutcome::DnsFailure, "{}", host.hostname);
            }
        }
    }
}
