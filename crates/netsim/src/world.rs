//! The host registry and HTTP dispatch.
//!
//! The simulated Internet is split in two layers so scan shards can run
//! in parallel:
//!
//! - [`Topology`] is the immutable wiring: hosts, regions,
//!   infrastructure groups, outage schedules, and *handler factories*
//!   (recipes for building a host's request handler). Once built it is
//!   shared read-only behind an `Arc` by any number of worlds.
//! - [`World`] is one mutable view: its own lazily-instantiated
//!   handlers (responder caches and the like live here) and its own DNS
//!   cache. Two worlds over the same topology evolve independently —
//!   exactly what a per-shard scan executor needs.
//!
//! [`World::http_post`] walks the full request path — DNS, outage
//! checks (host- and group-level), latency, handler dispatch. Along the
//! way it records deterministic telemetry into the world's
//! [`Registry`]: per-region failure counts by kind, per-group failure
//! counts, and outage-schedule activations. Per-shard worlds hand their
//! registry back via [`World::take_telemetry`] so pipelines can merge
//! them in canonical shard order.

use crate::latency::http_latency_ms;
use crate::outage::{first_active, FailureKind, Outage};
use crate::region::Region;
use asn1::Time;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use telemetry::{catalog, Registry};

/// A boxed request handler: `(path, body, now, client_region, telemetry)
/// -> (status, body)`. The handler may record its own events (e.g.
/// responder fault-profile triggers) into the world's registry.
pub type Handler =
    Box<dyn FnMut(&str, &[u8], Time, Region, &mut Registry) -> (u16, Vec<u8>) + Send>;

/// A recipe for building a host's handler. Stored in the shared
/// [`Topology`] so every [`World`] can instantiate its own private
/// handler (and therefore its own responder state).
pub type HandlerFactory = Box<dyn Fn() -> Handler + Send + Sync>;

/// How an HTTP transaction ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpOutcome {
    /// HTTP 200 with a body.
    Ok(Vec<u8>),
    /// A non-200 HTTP status (body discarded; the study only needs the
    /// code).
    HttpError(u16),
    /// DNS resolution failed.
    DnsFailure,
    /// TCP connection failed.
    ConnectFailure,
    /// TLS failure (invalid server certificate on an HTTPS URL).
    TlsFailure,
}

impl HttpOutcome {
    /// The paper's success criterion: "a request that resulted in the
    /// server responding with HTTP status code 200" (§5.2).
    pub fn is_success(&self) -> bool {
        matches!(self, HttpOutcome::Ok(_))
    }
}

/// The outcome plus timing of one transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpResult {
    /// What happened.
    pub outcome: HttpOutcome,
    /// End-to-end latency in milliseconds.
    pub latency_ms: f64,
}

/// An HTTP transaction in flight, created by [`World::start_request`].
///
/// The result is fully computed at submission time (see
/// `start_request`); the handle only withholds it until the caller's
/// simulated clock has advanced past the transaction's latency. Event
/// loops order completions by `latency_ms` (plus their own submission
/// timestamp) and hand the handle back to [`World::poll_response`].
#[derive(Debug)]
pub struct PendingRequest {
    submitted_at: Time,
    latency_ms: f64,
    result: Option<HttpResult>,
}

impl PendingRequest {
    /// When the request was submitted.
    pub fn submitted_at(&self) -> Time {
        self.submitted_at
    }

    /// End-to-end latency of the transaction, in milliseconds. Known at
    /// submission time; the request completes this long after
    /// [`PendingRequest::submitted_at`].
    pub fn latency_ms(&self) -> f64 {
        self.latency_ms
    }

    /// Whether the result has already been taken by a successful poll.
    pub fn is_taken(&self) -> bool {
        self.result.is_none()
    }
}

struct HostSpec {
    region: Region,
    group: Option<String>,
    outages: Vec<Outage>,
    factory: Option<HandlerFactory>,
    /// Server-side processing time per request, ms.
    server_time_ms: f64,
}

/// The immutable network wiring: hosts, groups, outage schedules, and
/// handler factories. Build once, share behind an `Arc` across worlds.
pub struct Topology {
    seed: u64,
    hosts: HashMap<String, HostSpec>,
    group_outages: HashMap<String, Vec<Outage>>,
}

impl Topology {
    /// A fresh topology with a latency seed.
    pub fn new(seed: u64) -> Topology {
        Topology {
            seed,
            hosts: HashMap::new(),
            group_outages: HashMap::new(),
        }
    }

    /// Register a host whose handler is built on demand, per world.
    /// `group` ties hosts into shared infrastructure — a group outage
    /// takes all members down together (the Comodo CNAME/shared-IP
    /// episode).
    pub fn register(
        &mut self,
        hostname: &str,
        region: Region,
        group: Option<&str>,
        factory: HandlerFactory,
    ) {
        self.insert(hostname, region, group, Some(factory));
    }

    fn insert(
        &mut self,
        hostname: &str,
        region: Region,
        group: Option<&str>,
        factory: Option<HandlerFactory>,
    ) {
        self.hosts.insert(
            hostname.to_string(),
            HostSpec {
                region,
                group: group.map(str::to_string),
                outages: Vec::new(),
                factory,
                server_time_ms: 5.0,
            },
        );
    }

    /// Whether a hostname is registered.
    pub fn knows_host(&self, hostname: &str) -> bool {
        self.hosts.contains_key(hostname)
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Attach an outage to one host.
    ///
    /// # Panics
    ///
    /// Panics if the host is unknown (scenario-script bug).
    pub fn add_outage(&mut self, hostname: &str, outage: Outage) {
        self.hosts
            .get_mut(hostname)
            .unwrap_or_else(|| panic!("unknown host {hostname}"))
            .outages
            .push(outage);
    }

    /// Attach an outage to every member of an infrastructure group.
    pub fn add_group_outage(&mut self, group: &str, outage: Outage) {
        self.group_outages
            .entry(group.to_string())
            .or_default()
            .push(outage);
    }

    /// Members of a group.
    pub fn group_members(&self, group: &str) -> Vec<String> {
        let mut members: Vec<String> = self
            .hosts // detlint::allow(unordered-iter): the collected names are sorted below, so hash order never reaches a caller
            .iter()
            .filter(|(_, h)| h.group.as_deref() == Some(group))
            .map(|(name, _)| name.clone())
            .collect();
        members.sort();
        members
    }
}

/// One mutable view over a shared [`Topology`]: private handler
/// instances and a private DNS cache.
pub struct World {
    topo: Arc<Topology>,
    /// Handlers this world has instantiated (or had registered
    /// directly), keyed by hostname.
    handlers: HashMap<String, Handler>,
    /// (client region, host) pairs that have resolved DNS before
    /// (warm-cache latency).
    dns_cache: HashSet<(Region, String)>,
    /// Deterministic event counters for this world (one per shard).
    telemetry: Registry,
}

impl World {
    /// A fresh world over its own fresh topology.
    pub fn new(seed: u64) -> World {
        World::from_topology(Arc::new(Topology::new(seed)))
    }

    /// A world over an existing (possibly shared) topology. Handler
    /// state and DNS cache start empty and evolve independently of any
    /// sibling world.
    pub fn from_topology(topo: Arc<Topology>) -> World {
        World {
            topo,
            handlers: HashMap::new(),
            dns_cache: HashSet::new(),
            telemetry: Registry::new(),
        }
    }

    /// This world's telemetry registry.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Mutable access for callers recording world-adjacent events.
    pub fn telemetry_mut(&mut self) -> &mut Registry {
        &mut self.telemetry
    }

    /// Take the accumulated telemetry, leaving an empty registry (used
    /// by per-shard pipelines handing their registry to the merge).
    pub fn take_telemetry(&mut self) -> Registry {
        std::mem::take(&mut self.telemetry)
    }

    /// The shared topology (clone the `Arc` to build sibling worlds).
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    fn topo_mut(&mut self) -> &mut Topology {
        Arc::get_mut(&mut self.topo)
            .expect("cannot mutate a World whose Topology is shared with other worlds")
    }

    /// Register a host with a ready-made handler (single-world usage;
    /// sibling worlds of a shared topology cannot rebuild it — use
    /// [`Topology::register`] with a factory for that).
    pub fn register(
        &mut self,
        hostname: &str,
        region: Region,
        group: Option<&str>,
        handler: Handler,
    ) {
        self.topo_mut().insert(hostname, region, group, None);
        self.handlers.insert(hostname.to_string(), handler);
    }

    /// Whether a hostname is registered.
    pub fn knows_host(&self, hostname: &str) -> bool {
        self.topo.knows_host(hostname)
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.topo.host_count()
    }

    /// Attach an outage to one host (requires sole ownership of the
    /// topology; see [`Topology::add_outage`]).
    ///
    /// # Panics
    ///
    /// Panics if the host is unknown (scenario-script bug).
    pub fn add_outage(&mut self, hostname: &str, outage: Outage) {
        self.topo_mut().add_outage(hostname, outage);
    }

    /// Attach an outage to every member of an infrastructure group.
    pub fn add_group_outage(&mut self, group: &str, outage: Outage) {
        self.topo_mut().add_group_outage(group, outage);
    }

    /// Members of a group.
    pub fn group_members(&self, group: &str) -> Vec<String> {
        self.topo.group_members(group)
    }

    /// Perform an HTTP POST of `body` to `url` from `client` at `now`.
    ///
    /// Equivalent to [`World::start_request`] followed by an immediate
    /// [`World::poll_response`] after the full latency — the blocking
    /// and reactor engines share one code path by construction.
    pub fn http_post(&mut self, client: Region, url: &str, body: &[u8], now: Time) -> HttpResult {
        let mut pending = self.start_request(client, url, body, now);
        let latency_ms = pending.latency_ms();
        self.poll_response(&mut pending, latency_ms)
            .expect("a request polled after its full latency is complete")
    }

    /// Submit an HTTP POST without blocking: the entire request path —
    /// DNS, outage checks, latency draw, handler dispatch, telemetry —
    /// runs *now*, at submission time, and the finished result is
    /// parked in the returned [`PendingRequest`] until enough simulated
    /// time has passed for [`World::poll_response`] to release it.
    ///
    /// Drawing the latency (and mutating all world state) at submission
    /// time is what keeps a reactor engine byte-identical to the
    /// blocking path: as long as callers *submit* in canonical order,
    /// the order in which pending requests later *complete* can never
    /// influence world state, RNG streams, or the `net.latency_ms`
    /// histogram.
    pub fn start_request(
        &mut self,
        client: Region,
        url: &str,
        body: &[u8],
        now: Time,
    ) -> PendingRequest {
        let result = self.request_now(client, url, body, now);
        PendingRequest {
            submitted_at: now,
            latency_ms: result.latency_ms,
            result: Some(result),
        }
    }

    /// Poll a pending request after `waited_ms` of simulated time since
    /// submission. Returns the result once `waited_ms` covers the
    /// request's latency, `None` while it is still in flight (or if the
    /// result was already taken).
    pub fn poll_response(
        &self,
        pending: &mut PendingRequest,
        waited_ms: f64,
    ) -> Option<HttpResult> {
        if waited_ms >= pending.latency_ms {
            pending.result.take()
        } else {
            None
        }
    }

    /// The full request path, executed synchronously. Private: public
    /// callers go through [`World::http_post`] or
    /// [`World::start_request`].
    fn request_now(&mut self, client: Region, url: &str, body: &[u8], now: Time) -> HttpResult {
        self.telemetry.incr(catalog::NET_REQUEST, client.label());
        let (scheme, hostname, path) = match split_url(url) {
            Some(parts) => parts,
            None => {
                self.telemetry
                    .incr(catalog::NET_FAILURE_DNS, client.label());
                return HttpResult {
                    outcome: HttpOutcome::DnsFailure,
                    latency_ms: 0.0,
                };
            }
        };

        let Some(host) = self.topo.hosts.get(hostname) else {
            // Unregistered host: NXDOMAIN after a resolver round trip.
            self.telemetry
                .incr(catalog::NET_FAILURE_DNS, client.label());
            return HttpResult {
                outcome: HttpOutcome::DnsFailure,
                latency_ms: 30.0,
            };
        };

        let cold_dns = self.dns_cache.insert((client, hostname.to_string()));
        let latency_ms = http_latency_ms(
            self.topo.seed,
            hostname,
            client,
            host.region,
            now,
            cold_dns,
            host.server_time_ms,
        );

        // Failure injection: host outages first, then group outages.
        let host_hit = first_active(&host.outages, now, client);
        let group_hit = host
            .group
            .as_ref()
            .and_then(|g| self.topo.group_outages.get(g))
            .and_then(|outages| first_active(outages, now, client));
        let failure = host_hit.or(group_hit).map(|o| o.kind);
        if let Some(kind) = failure {
            self.telemetry.incr(kind.metric_name(), client.label());
            if let Some(group) = &host.group {
                self.telemetry.incr(catalog::NET_FAILURE_BY_GROUP, group);
            }
            let activation = if host_hit.is_some() {
                hostname.to_string()
            } else {
                format!("group:{}", host.group.as_deref().unwrap_or("?"))
            };
            self.telemetry
                .incr(catalog::NET_OUTAGE_ACTIVATION, &activation);
            let outcome = match kind {
                FailureKind::DnsNxDomain => HttpOutcome::DnsFailure,
                FailureKind::TcpConnect => HttpOutcome::ConnectFailure,
                FailureKind::Http4xx | FailureKind::Http5xx => {
                    HttpOutcome::HttpError(kind.http_status().unwrap())
                }
                FailureKind::TlsBadCertificate => HttpOutcome::TlsFailure,
            };
            // DNS failures are fast; the rest pay partial latency.
            let latency_ms = match kind {
                FailureKind::DnsNxDomain => 30.0,
                _ => latency_ms * 0.6,
            };
            return HttpResult {
                outcome,
                latency_ms,
            };
        }

        // An https:// URL with TLS trouble is modeled via TlsBadCertificate
        // outages; a plain handler call otherwise. (All real OCSP URLs are
        // http://, but the paper found one https:// responder with an
        // invalid certificate.)
        let _ = scheme;

        // This world's private handler instance, built from the shared
        // factory on first contact.
        let handler = match self.handlers.entry(hostname.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let factory = host.factory.as_ref().unwrap_or_else(|| {
                    panic!("host {hostname} has neither a handler nor a factory")
                });
                e.insert(factory())
            }
        };
        let (status, reply) = handler(path, body, now, client, &mut self.telemetry);
        let outcome = if status == 200 {
            HttpOutcome::Ok(reply)
        } else {
            self.telemetry
                .incr(catalog::NET_FAILURE_HTTP, client.label());
            HttpOutcome::HttpError(status)
        };
        // Simulated warm-path (DNS-cached) latency, per vantage point.
        // Model-derived and hash-jittered, never wall clock. The cold-DNS
        // surcharge is excluded on purpose: DNS cache state is per-world
        // (one world per shard chunk), so including it would make the
        // histogram depend on the chunk plan and break the exported
        // telemetry's chunking invariance.
        let warm_ms = http_latency_ms(
            self.topo.seed,
            hostname,
            client,
            host.region,
            now,
            false,
            host.server_time_ms,
        );
        self.telemetry
            .observe(catalog::NET_LATENCY_MS, client.label(), warm_ms as u64);
        HttpResult {
            outcome,
            latency_ms,
        }
    }
}

/// Split a URL into (scheme, host, path).
fn split_url(url: &str) -> Option<(&str, &str, &str)> {
    let (scheme, rest) = url.split_once("://")?;
    if scheme != "http" && scheme != "https" {
        return None;
    }
    match rest.split_once('/') {
        Some((host, path_rest)) if !host.is_empty() => {
            // Path pointer into the original string, keeping the slash.
            let path_start = url.len() - path_rest.len() - 1;
            Some((scheme, host, &url[path_start..]))
        }
        None if !rest.is_empty() => Some((scheme, rest, "/")),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outage::RegionScope;

    fn t(h: i64) -> Time {
        Time::from_civil(2018, 4, 25, 0, 0, 0) + h * 3_600
    }

    fn echo_handler() -> Handler {
        Box::new(|path, body, _, _, _| {
            let mut reply = path.as_bytes().to_vec();
            reply.push(b'|');
            reply.extend_from_slice(body);
            (200, reply)
        })
    }

    fn world_with_host() -> World {
        let mut w = World::new(7);
        w.register(
            "ocsp.ca.test",
            Region::Virginia,
            Some("ca-infra"),
            echo_handler(),
        );
        w
    }

    #[test]
    fn successful_post_reaches_handler() {
        let mut w = world_with_host();
        let r = w.http_post(Region::Paris, "http://ocsp.ca.test/sub", b"req", t(0));
        assert_eq!(r.outcome, HttpOutcome::Ok(b"/sub|req".to_vec()));
        assert!(r.latency_ms > 100.0); // trans-Atlantic
    }

    #[test]
    fn unknown_host_is_dns_failure() {
        let mut w = world_with_host();
        let r = w.http_post(Region::Paris, "http://missing.test/", b"", t(0));
        assert_eq!(r.outcome, HttpOutcome::DnsFailure);
    }

    #[test]
    fn bad_urls_fail() {
        let mut w = world_with_host();
        for url in ["not a url", "ftp://x/", "http://"] {
            let r = w.http_post(Region::Paris, url, b"", t(0));
            assert_eq!(r.outcome, HttpOutcome::DnsFailure, "{url}");
        }
    }

    #[test]
    fn url_without_path_defaults_to_root() {
        let mut w = world_with_host();
        let r = w.http_post(Region::Paris, "http://ocsp.ca.test", b"x", t(0));
        assert_eq!(r.outcome, HttpOutcome::Ok(b"/|x".to_vec()));
    }

    #[test]
    fn host_outage_fails_requests_in_window_only() {
        let mut w = world_with_host();
        w.add_outage(
            "ocsp.ca.test",
            Outage::transient(t(19), 2 * 3_600, FailureKind::TcpConnect),
        );
        assert!(w
            .http_post(Region::Paris, "http://ocsp.ca.test/", b"", t(18))
            .outcome
            .is_success());
        assert_eq!(
            w.http_post(Region::Paris, "http://ocsp.ca.test/", b"", t(19))
                .outcome,
            HttpOutcome::ConnectFailure
        );
        assert!(w
            .http_post(Region::Paris, "http://ocsp.ca.test/", b"", t(21))
            .outcome
            .is_success());
    }

    #[test]
    fn regional_outage_spares_other_regions() {
        let mut w = world_with_host();
        w.add_outage(
            "ocsp.ca.test",
            Outage::regional(t(0), 3_600, vec![Region::SaoPaulo], FailureKind::Http4xx),
        );
        assert_eq!(
            w.http_post(Region::SaoPaulo, "http://ocsp.ca.test/", b"", t(0))
                .outcome,
            HttpOutcome::HttpError(404)
        );
        assert!(w
            .http_post(Region::Virginia, "http://ocsp.ca.test/", b"", t(0))
            .outcome
            .is_success());
    }

    #[test]
    fn group_outage_hits_all_members() {
        let mut w = World::new(7);
        for name in [
            "ocsp1.comodo.test",
            "ocsp2.comodo.test",
            "ocsp3.comodo.test",
        ] {
            w.register(name, Region::Virginia, Some("comodo"), echo_handler());
        }
        w.register("ocsp.other.test", Region::Virginia, None, echo_handler());
        w.add_group_outage(
            "comodo",
            Outage::transient(t(19), 2 * 3_600, FailureKind::TcpConnect),
        );
        for name in [
            "ocsp1.comodo.test",
            "ocsp2.comodo.test",
            "ocsp3.comodo.test",
        ] {
            let r = w.http_post(Region::Oregon, &format!("http://{name}/"), b"", t(20));
            assert_eq!(r.outcome, HttpOutcome::ConnectFailure, "{name}");
        }
        assert!(w
            .http_post(Region::Oregon, "http://ocsp.other.test/", b"", t(20))
            .outcome
            .is_success());
        assert_eq!(w.group_members("comodo").len(), 3);
    }

    #[test]
    fn persistent_regional_failure() {
        // The wellsfargo scenario: a responder 404ing only from São Paulo.
        let mut w = world_with_host();
        w.add_outage(
            "ocsp.ca.test",
            Outage::persistent(
                t(0),
                RegionScope::Only(vec![Region::SaoPaulo]),
                FailureKind::Http4xx,
            ),
        );
        for h in [0, 100, 2000] {
            assert!(!w
                .http_post(Region::SaoPaulo, "http://ocsp.ca.test/", b"", t(h))
                .outcome
                .is_success());
            assert!(w
                .http_post(Region::Paris, "http://ocsp.ca.test/", b"", t(h))
                .outcome
                .is_success());
        }
    }

    #[test]
    fn dns_cache_warms_up() {
        let mut w = world_with_host();
        let first = w.http_post(Region::Paris, "http://ocsp.ca.test/", b"", t(0));
        let second = w.http_post(Region::Paris, "http://ocsp.ca.test/", b"", t(0));
        assert!(second.latency_ms < first.latency_ms);
    }

    #[test]
    fn non_200_from_handler_is_http_error() {
        let mut w = World::new(1);
        w.register(
            "err.test",
            Region::Paris,
            None,
            Box::new(|_, _, _, _, _| (500, Vec::new())),
        );
        let r = w.http_post(Region::Paris, "http://err.test/", b"", t(0));
        assert_eq!(r.outcome, HttpOutcome::HttpError(500));
        assert!(!r.outcome.is_success());
    }

    #[test]
    fn shared_topology_worlds_are_independent() {
        let mut topo = Topology::new(7);
        // A stateful factory-built handler: counts requests per world.
        topo.register(
            "ocsp.ca.test",
            Region::Virginia,
            None,
            Box::new(|| {
                let mut count = 0u32;
                Box::new(move |_, _, _, _, _| {
                    count += 1;
                    (200, count.to_be_bytes().to_vec())
                })
            }),
        );
        let topo = Arc::new(topo);
        let mut a = World::from_topology(topo.clone());
        let mut b = World::from_topology(topo.clone());

        let post = |w: &mut World| match w
            .http_post(Region::Virginia, "http://ocsp.ca.test/", b"", t(0))
            .outcome
        {
            HttpOutcome::Ok(body) => u32::from_be_bytes(body.try_into().unwrap()),
            other => panic!("unexpected outcome {other:?}"),
        };
        assert_eq!(post(&mut a), 1);
        assert_eq!(post(&mut a), 2);
        // b has its own handler instance and its own DNS cache.
        assert_eq!(post(&mut b), 1);
        let cold = b.http_post(Region::Paris, "http://ocsp.ca.test/", b"", t(0));
        let warm = b.http_post(Region::Paris, "http://ocsp.ca.test/", b"", t(0));
        assert!(warm.latency_ms < cold.latency_ms);
    }

    #[test]
    fn failures_and_outage_activations_are_counted() {
        let mut w = world_with_host();
        w.add_outage(
            "ocsp.ca.test",
            Outage::transient(t(19), 2 * 3_600, FailureKind::TcpConnect),
        );
        w.add_group_outage(
            "ca-infra",
            Outage::transient(t(30), 3_600, FailureKind::Http5xx),
        );
        w.http_post(Region::Paris, "http://ocsp.ca.test/", b"", t(0)); // ok
        w.http_post(Region::Paris, "http://ocsp.ca.test/", b"", t(19)); // host outage
        w.http_post(Region::Seoul, "http://ocsp.ca.test/", b"", t(20)); // host outage
        w.http_post(Region::Paris, "http://ocsp.ca.test/", b"", t(30)); // group outage
        w.http_post(Region::Paris, "http://nxdomain.test/", b"", t(0)); // unknown host

        let reg = w.telemetry();
        assert_eq!(reg.counter_total("net.request"), 5);
        assert_eq!(reg.counter("net.failure.tcp", "Paris"), 1);
        assert_eq!(reg.counter("net.failure.tcp", "Seoul"), 1);
        assert_eq!(reg.counter("net.failure.http5xx", "Paris"), 1);
        assert_eq!(reg.counter("net.failure.dns", "Paris"), 1);
        assert_eq!(reg.counter("net.failure.by_group", "ca-infra"), 3);
        assert_eq!(reg.counter("net.outage.activation", "ocsp.ca.test"), 2);
        assert_eq!(reg.counter("net.outage.activation", "group:ca-infra"), 1);

        let taken = w.take_telemetry();
        assert_eq!(taken.counter_total("net.request"), 5);
        assert!(w.telemetry().is_empty());
    }

    #[test]
    fn handler_status_errors_are_counted() {
        let mut w = World::new(1);
        w.register(
            "err.test",
            Region::Paris,
            None,
            Box::new(|_, _, _, _, reg: &mut Registry| {
                reg.incr("handler.custom", "err.test");
                (500, Vec::new())
            }),
        );
        w.http_post(Region::Paris, "http://err.test/", b"", t(0));
        assert_eq!(w.telemetry().counter("net.failure.http", "Paris"), 1);
        assert_eq!(w.telemetry().counter("handler.custom", "err.test"), 1);
    }

    #[test]
    fn start_request_then_poll_equals_http_post() {
        // Two identical worlds, one driven through the blocking call,
        // one through the split API: same results, same telemetry.
        let mut topo = Topology::new(42);
        topo.register(
            "ocsp.ca.test",
            Region::Virginia,
            None,
            Box::new(echo_handler),
        );
        let topo = Arc::new(topo);
        let mut blocking = World::from_topology(topo.clone());
        let mut split = World::from_topology(topo);
        for h in 0..5 {
            let direct = blocking.http_post(Region::Seoul, "http://ocsp.ca.test/x", b"q", t(h));
            let mut pending =
                split.start_request(Region::Seoul, "http://ocsp.ca.test/x", b"q", t(h));
            let latency = pending.latency_ms();
            assert_eq!(latency, direct.latency_ms);
            assert_eq!(pending.submitted_at(), t(h));
            let polled = split
                .poll_response(&mut pending, latency)
                .expect("ready after full latency");
            assert_eq!(polled, direct);
        }
        assert_eq!(blocking.telemetry(), split.telemetry());
    }

    #[test]
    fn poll_before_latency_elapses_returns_none() {
        let mut w = world_with_host();
        let mut pending = w.start_request(Region::Paris, "http://ocsp.ca.test/", b"", t(0));
        let latency = pending.latency_ms();
        assert!(latency > 0.0);
        assert!(w.poll_response(&mut pending, 0.0).is_none());
        assert!(w.poll_response(&mut pending, latency / 2.0).is_none());
        assert!(!pending.is_taken());
        let result = w.poll_response(&mut pending, latency).expect("complete");
        assert!(result.outcome.is_success());
        assert!(pending.is_taken());
        // A second poll of a drained handle yields nothing.
        assert!(w.poll_response(&mut pending, latency * 2.0).is_none());
    }

    #[test]
    fn world_state_mutates_at_submission_not_completion() {
        // Submit two requests to the same host back to back *without*
        // polling either: the second must already see a warm DNS cache,
        // proving all state changes happen at submission time.
        let mut w = world_with_host();
        let cold = w.start_request(Region::Paris, "http://ocsp.ca.test/", b"", t(0));
        let warm = w.start_request(Region::Paris, "http://ocsp.ca.test/", b"", t(0));
        assert!(warm.latency_ms() < cold.latency_ms());
        // Telemetry was recorded at submission too.
        assert_eq!(w.telemetry().counter_total("net.request"), 2);
    }

    #[test]
    #[should_panic(expected = "Topology is shared")]
    fn mutating_a_shared_topology_panics() {
        let mut w = world_with_host();
        let _sibling = World::from_topology(w.topology().clone());
        w.add_outage(
            "ocsp.ca.test",
            Outage::transient(t(0), 60, FailureKind::TcpConnect),
        );
    }

    #[test]
    fn identical_worlds_over_one_topology_agree_byte_for_byte() {
        let mut topo = Topology::new(42);
        topo.register(
            "ocsp.ca.test",
            Region::Virginia,
            Some("g"),
            Box::new(echo_handler),
        );
        topo.add_outage(
            "ocsp.ca.test",
            Outage::transient(t(5), 3_600, FailureKind::Http5xx),
        );
        let topo = Arc::new(topo);
        let mut a = World::from_topology(topo.clone());
        let mut b = World::from_topology(topo);
        for h in 0..10 {
            let ra = a.http_post(Region::Seoul, "http://ocsp.ca.test/x", b"q", t(h));
            let rb = b.http_post(Region::Seoul, "http://ocsp.ca.test/x", b"q", t(h));
            assert_eq!(ra, rb);
        }
    }
}
