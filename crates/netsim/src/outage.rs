//! Failure injection: the §5.2 failure taxonomy.
//!
//! The paper classified why OCSP requests fail:
//!
//! * 16 responders — persistent DNS `NXDOMAIN` from at least one region;
//! * 4 responders — TCP connection never establishes;
//! * 8 responders — persistent HTTP 4xx/5xx;
//! * 1 responder — HTTPS URL served with an invalid certificate;
//! * 36.8 % of responders — at least one *transient* outage (usually a
//!   couple of hours), sometimes correlated across responders sharing
//!   infrastructure (Comodo, Digicert, Certum, wosign/startssl) and
//!   sometimes region-specific (the Seoul-only Digicert outage, the
//!   Sydney-only Certum outage, the São Paulo-only
//!   `*.digitalcertvalidation.com` 404s).

use crate::region::Region;
use asn1::Time;
use telemetry::catalog;

/// How a request fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// DNS resolution fails (NXDOMAIN).
    DnsNxDomain,
    /// TCP connection refused / times out.
    TcpConnect,
    /// Server answers with an HTTP 4xx.
    Http4xx,
    /// Server answers with an HTTP 5xx.
    Http5xx,
    /// HTTPS endpoint presents an invalid certificate.
    TlsBadCertificate,
}

impl FailureKind {
    /// The HTTP status code seen by the client, if the failure reaches
    /// the HTTP layer.
    pub fn http_status(self) -> Option<u16> {
        match self {
            FailureKind::Http4xx => Some(404),
            FailureKind::Http5xx => Some(503),
            _ => None,
        }
    }

    /// Stable short name used in telemetry metric names.
    pub fn metric_label(self) -> &'static str {
        match self {
            FailureKind::DnsNxDomain => "dns",
            FailureKind::TcpConnect => "tcp",
            FailureKind::Http4xx => "http4xx",
            FailureKind::Http5xx => "http5xx",
            FailureKind::TlsBadCertificate => "tls",
        }
    }

    /// The catalog constant for this failure's counter — the
    /// `net.failure.<label>` family, routed through
    /// [`telemetry::catalog`] so the metric-catalog lint can prove every
    /// emitted name is declared.
    pub fn metric_name(self) -> &'static str {
        match self {
            FailureKind::DnsNxDomain => catalog::NET_FAILURE_DNS,
            FailureKind::TcpConnect => catalog::NET_FAILURE_TCP,
            FailureKind::Http4xx => catalog::NET_FAILURE_HTTP4XX,
            FailureKind::Http5xx => catalog::NET_FAILURE_HTTP5XX,
            FailureKind::TlsBadCertificate => catalog::NET_FAILURE_TLS,
        }
    }
}

/// Which regions an outage affects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionScope {
    /// Every region.
    All,
    /// Only the listed regions (the paper saw many single-region events).
    Only(Vec<Region>),
}

impl RegionScope {
    /// Whether `region` is covered.
    pub fn covers(&self, region: Region) -> bool {
        match self {
            RegionScope::All => true,
            RegionScope::Only(list) => list.contains(&region),
        }
    }
}

/// One failure window (or a persistent failure, with an unbounded end).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outage {
    /// Start of the window.
    pub start: Time,
    /// End of the window; `None` = persistent from `start` on.
    pub end: Option<Time>,
    /// Affected regions.
    pub scope: RegionScope,
    /// How requests fail during the window.
    pub kind: FailureKind,
}

impl Outage {
    /// A transient outage affecting all regions.
    pub fn transient(start: Time, duration_secs: i64, kind: FailureKind) -> Outage {
        Outage {
            start,
            end: Some(start + duration_secs),
            scope: RegionScope::All,
            kind,
        }
    }

    /// A transient outage visible only from certain regions.
    pub fn regional(
        start: Time,
        duration_secs: i64,
        regions: Vec<Region>,
        kind: FailureKind,
    ) -> Outage {
        Outage {
            start,
            end: Some(start + duration_secs),
            scope: RegionScope::Only(regions),
            kind,
        }
    }

    /// A persistent failure from `start` on, for certain regions
    /// (pass all vantage points for a globally dead responder).
    pub fn persistent(start: Time, regions: RegionScope, kind: FailureKind) -> Outage {
        Outage {
            start,
            end: None,
            scope: regions,
            kind,
        }
    }

    /// Whether this outage affects `region` at `time`.
    pub fn active(&self, time: Time, region: Region) -> bool {
        self.start <= time && self.end.is_none_or(|e| time < e) && self.scope.covers(region)
    }
}

/// Find the first outage in `outages` hitting `(time, region)`.
pub fn first_active(outages: &[Outage], time: Time, region: Region) -> Option<&Outage> {
    outages.iter().find(|o| o.active(time, region))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: i64) -> Time {
        Time::from_civil(2018, 4, 25, 0, 0, 0) + h * 3_600
    }

    #[test]
    fn transient_window_bounds() {
        let o = Outage::transient(t(19), 2 * 3_600, FailureKind::TcpConnect);
        assert!(!o.active(t(18), Region::Oregon));
        assert!(o.active(t(19), Region::Oregon));
        assert!(o.active(t(20), Region::Seoul));
        assert!(!o.active(t(21), Region::Oregon)); // end-exclusive
    }

    #[test]
    fn regional_scope() {
        // The paper's Comodo outage was seen only from Oregon, Sydney, Seoul.
        let o = Outage::regional(
            t(19),
            2 * 3_600,
            vec![Region::Oregon, Region::Sydney, Region::Seoul],
            FailureKind::TcpConnect,
        );
        assert!(o.active(t(19), Region::Oregon));
        assert!(o.active(t(20), Region::Seoul));
        assert!(!o.active(t(20), Region::Virginia));
        assert!(!o.active(t(20), Region::Paris));
    }

    #[test]
    fn persistent_has_no_end() {
        let o = Outage::persistent(
            t(0),
            RegionScope::Only(vec![Region::SaoPaulo]),
            FailureKind::Http4xx,
        );
        assert!(o.active(t(10_000), Region::SaoPaulo));
        assert!(!o.active(t(10_000), Region::Paris));
    }

    #[test]
    fn first_active_picks_earliest_matching() {
        let outages = vec![
            Outage::transient(t(5), 3_600, FailureKind::Http5xx),
            Outage::transient(t(5), 7_200, FailureKind::TcpConnect),
        ];
        let hit = first_active(&outages, t(5), Region::Paris).unwrap();
        assert_eq!(hit.kind, FailureKind::Http5xx);
        let hit = first_active(&outages, t(6) + 1800, Region::Paris).unwrap();
        assert_eq!(hit.kind, FailureKind::TcpConnect);
        assert!(first_active(&outages, t(8), Region::Paris).is_none());
    }

    #[test]
    fn http_status_mapping() {
        assert_eq!(FailureKind::Http4xx.http_status(), Some(404));
        assert_eq!(FailureKind::Http5xx.http_status(), Some(503));
        assert_eq!(FailureKind::DnsNxDomain.http_status(), None);
    }
}
