//! A caching CDN front for OCSP responders.
//!
//! §5.2's "CDN's perspective": Akamai logs showed that a cache-fronting
//! CDN contacts only ~20 distinct responders, rarely goes to origin at
//! all (most responses served from cache), and — in their 60-hour
//! window — saw a 100 % origin success rate. [`CdnNode`] reproduces that
//! architecture: an edge cache keyed by request body, with entry
//! lifetimes supplied by the caller (who knows the response's
//! `nextUpdate`).

use crate::region::Region;
use crate::world::{HttpOutcome, HttpResult, World};
use asn1::Time;
use simcrypto::sha256;
use std::collections::HashMap;
use telemetry::catalog;

/// Counters for the CDN-perspective analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdnStats {
    /// Requests served from cache.
    pub cache_hits: u64,
    /// Requests forwarded to the origin.
    pub origin_fetches: u64,
    /// Origin fetches that returned HTTP 200.
    pub origin_successes: u64,
}

impl CdnStats {
    /// Fraction of all requests served from cache.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.origin_fetches;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of origin fetches that succeeded (the paper: 100 %).
    pub fn origin_success_ratio(&self) -> f64 {
        if self.origin_fetches == 0 {
            1.0
        } else {
            self.origin_successes as f64 / self.origin_fetches as f64
        }
    }
}

#[derive(Clone)]
struct CacheEntry {
    body: Vec<u8>,
    expires: Time,
}

/// One CDN edge node: a cache in a region, fronting arbitrary origins.
pub struct CdnNode {
    region: Region,
    cache: HashMap<[u8; 32], CacheEntry>,
    stats: CdnStats,
}

impl CdnNode {
    /// An edge node in `region`.
    pub fn new(region: Region) -> CdnNode {
        CdnNode {
            region,
            cache: HashMap::new(),
            stats: CdnStats::default(),
        }
    }

    /// The node's region (requests to origins depart from here).
    pub fn region(&self) -> Region {
        self.region
    }

    /// Fetch `url` with `body` through the cache. `ttl_of` inspects a
    /// fresh origin response and decides how long it may be cached
    /// (for OCSP: `nextUpdate - now`, clamped by policy).
    pub fn fetch(
        &mut self,
        world: &mut World,
        url: &str,
        body: &[u8],
        now: Time,
        ttl_of: impl Fn(&[u8]) -> i64,
    ) -> HttpResult {
        let mut keyed = url.as_bytes().to_vec();
        keyed.push(0);
        keyed.extend_from_slice(body);
        let key = sha256(&keyed);

        if let Some(entry) = self.cache.get(&key) {
            if entry.expires > now {
                self.stats.cache_hits += 1;
                world
                    .telemetry_mut()
                    .incr(catalog::CDN_EDGE_HIT, self.region.label());
                // Edge hit: client-to-edge latency is the caller's
                // concern; edge processing is ~1 ms.
                return HttpResult {
                    outcome: HttpOutcome::Ok(entry.body.clone()),
                    latency_ms: 1.0,
                };
            }
            self.cache.remove(&key);
        }

        self.stats.origin_fetches += 1;
        world
            .telemetry_mut()
            .incr(catalog::CDN_EDGE_MISS, self.region.label());
        world
            .telemetry_mut()
            .incr(catalog::CDN_ORIGIN_FETCH, self.region.label());
        // Origin fetch through the non-blocking request API: submit,
        // then poll at the completion instant. Identical to a blocking
        // `http_post` (which is itself submit + poll), but keeps the
        // edge's origin path on the same surface a reactor would drive.
        let mut pending = world.start_request(self.region, url, body, now);
        let origin_latency_ms = pending.latency_ms();
        let result = world
            .poll_response(&mut pending, origin_latency_ms)
            .expect("origin fetch polled after its full latency");
        if let HttpOutcome::Ok(reply) = &result.outcome {
            self.stats.origin_successes += 1;
            world
                .telemetry_mut()
                .incr(catalog::CDN_ORIGIN_SUCCESS, self.region.label());
            let ttl = ttl_of(reply);
            if ttl > 0 {
                self.cache.insert(
                    key,
                    CacheEntry {
                        body: reply.clone(),
                        expires: now + ttl,
                    },
                );
            }
        }
        result
    }

    /// Running counters.
    pub fn stats(&self) -> CdnStats {
        self.stats
    }

    /// Number of live cache entries.
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: i64) -> Time {
        Time::from_civil(2018, 5, 1, 0, 0, 0) + h * 3_600
    }

    fn world() -> World {
        let mut w = World::new(3);
        w.register(
            "ocsp.origin.test",
            Region::Virginia,
            None,
            Box::new(|_, body, now, _, _| {
                let mut reply = body.to_vec();
                reply.extend_from_slice(&now.unix().to_be_bytes());
                (200, reply)
            }),
        );
        w
    }

    #[test]
    fn second_request_hits_cache() {
        let mut w = world();
        let mut cdn = CdnNode::new(Region::Paris);
        let r1 = cdn.fetch(&mut w, "http://ocsp.origin.test/", b"q", t(0), |_| 7_200);
        let r2 = cdn.fetch(&mut w, "http://ocsp.origin.test/", b"q", t(1), |_| 7_200);
        assert!(r1.outcome.is_success());
        assert_eq!(r1.outcome, r2.outcome); // cached body identical
        assert_eq!(cdn.stats().origin_fetches, 1);
        assert_eq!(cdn.stats().cache_hits, 1);
        assert!(r2.latency_ms < r1.latency_ms);
    }

    #[test]
    fn expiry_forces_refetch() {
        let mut w = world();
        let mut cdn = CdnNode::new(Region::Paris);
        cdn.fetch(&mut w, "http://ocsp.origin.test/", b"q", t(0), |_| 3_600);
        cdn.fetch(&mut w, "http://ocsp.origin.test/", b"q", t(2), |_| 3_600);
        assert_eq!(cdn.stats().origin_fetches, 2);
    }

    #[test]
    fn distinct_bodies_cached_separately() {
        let mut w = world();
        let mut cdn = CdnNode::new(Region::Paris);
        cdn.fetch(
            &mut w,
            "http://ocsp.origin.test/",
            b"serial-1",
            t(0),
            |_| 7_200,
        );
        cdn.fetch(
            &mut w,
            "http://ocsp.origin.test/",
            b"serial-2",
            t(0),
            |_| 7_200,
        );
        assert_eq!(cdn.stats().origin_fetches, 2);
        assert_eq!(cdn.cached_entries(), 2);
    }

    #[test]
    fn zero_ttl_is_not_cached() {
        let mut w = world();
        let mut cdn = CdnNode::new(Region::Paris);
        cdn.fetch(&mut w, "http://ocsp.origin.test/", b"q", t(0), |_| 0);
        cdn.fetch(&mut w, "http://ocsp.origin.test/", b"q", t(0), |_| 0);
        assert_eq!(cdn.stats().origin_fetches, 2);
        assert_eq!(cdn.cached_entries(), 0);
    }

    #[test]
    fn failures_are_not_cached_and_ratios_track() {
        let mut w = world();
        let mut cdn = CdnNode::new(Region::Paris);
        let r = cdn.fetch(&mut w, "http://nxdomain.test/", b"q", t(0), |_| 7_200);
        assert!(!r.outcome.is_success());
        assert_eq!(cdn.stats().origin_fetches, 1);
        assert_eq!(cdn.stats().origin_successes, 0);
        assert_eq!(cdn.stats().origin_success_ratio(), 0.0);

        cdn.fetch(&mut w, "http://ocsp.origin.test/", b"q", t(0), |_| 7_200);
        for _ in 0..8 {
            cdn.fetch(&mut w, "http://ocsp.origin.test/", b"q", t(0), |_| 7_200);
        }
        assert!(cdn.stats().hit_ratio() > 0.7);
    }

    #[test]
    fn edge_traffic_is_recorded_in_world_telemetry() {
        let mut w = world();
        let mut cdn = CdnNode::new(Region::Paris);
        cdn.fetch(&mut w, "http://ocsp.origin.test/", b"q", t(0), |_| 7_200);
        cdn.fetch(&mut w, "http://ocsp.origin.test/", b"q", t(1), |_| 7_200);
        cdn.fetch(&mut w, "http://nxdomain.test/", b"q", t(0), |_| 7_200);
        let reg = w.telemetry();
        assert_eq!(reg.counter("cdn.edge.hit", "Paris"), 1);
        assert_eq!(reg.counter("cdn.edge.miss", "Paris"), 2);
        assert_eq!(reg.counter("cdn.origin.fetch", "Paris"), 2);
        assert_eq!(reg.counter("cdn.origin.success", "Paris"), 1);
    }
}
