//! Regions and the RTT matrix.
//!
//! The six client regions are exactly the paper's vantage points (§5.1
//! step 5): Oregon, Virginia, São Paulo, Paris, Sydney, Seoul. Servers
//! are additionally hosted in coarse regions; RTTs come from a
//! great-circle-flavored matrix of typical inter-region latencies.

use core::fmt;

/// A network region — client vantage points and server hosting locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// AWS us-west-2 (Oregon) — vantage point.
    Oregon,
    /// AWS us-east-1 (Virginia) — vantage point.
    Virginia,
    /// AWS sa-east-1 (São Paulo) — vantage point.
    SaoPaulo,
    /// AWS eu-west-3 (Paris) — vantage point.
    Paris,
    /// AWS ap-southeast-2 (Sydney) — vantage point.
    Sydney,
    /// AWS ap-northeast-2 (Seoul) — vantage point.
    Seoul,
}

impl Region {
    /// The paper's six measurement-client regions, in its listing order.
    pub const VANTAGE_POINTS: [Region; 6] = [
        Region::Oregon,
        Region::Virginia,
        Region::SaoPaulo,
        Region::Paris,
        Region::Sydney,
        Region::Seoul,
    ];

    /// Short label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Region::Oregon => "Oregon",
            Region::Virginia => "Virginia",
            Region::SaoPaulo => "Sao-Paulo",
            Region::Paris => "Paris",
            Region::Sydney => "Sydney",
            Region::Seoul => "Seoul",
        }
    }

    /// Baseline round-trip time in milliseconds between two regions.
    ///
    /// Values are representative public inter-AWS-region medians; exact
    /// numbers are not load-bearing for any reproduced result, only the
    /// *ordering* (intra-continent < trans-continent < antipodal).
    pub fn rtt_ms(self, other: Region) -> f64 {
        use Region::*;
        if self == other {
            return 2.0;
        }
        let (a, b) = if self <= other {
            (self, other)
        } else {
            (other, self)
        };
        match (a, b) {
            (Oregon, Virginia) => 70.0,
            (Oregon, SaoPaulo) => 180.0,
            (Oregon, Paris) => 140.0,
            (Oregon, Sydney) => 160.0,
            (Oregon, Seoul) => 130.0,
            (Virginia, SaoPaulo) => 120.0,
            (Virginia, Paris) => 80.0,
            (Virginia, Sydney) => 200.0,
            (Virginia, Seoul) => 180.0,
            (SaoPaulo, Paris) => 200.0,
            (SaoPaulo, Sydney) => 310.0,
            (SaoPaulo, Seoul) => 300.0,
            (Paris, Sydney) => 280.0,
            (Paris, Seoul) => 250.0,
            (Sydney, Seoul) => 140.0,
            _ => unreachable!("matrix covers all ordered pairs"),
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_vantage_points() {
        assert_eq!(Region::VANTAGE_POINTS.len(), 6);
    }

    #[test]
    fn rtt_is_symmetric_and_positive() {
        for &a in &Region::VANTAGE_POINTS {
            for &b in &Region::VANTAGE_POINTS {
                assert_eq!(a.rtt_ms(b), b.rtt_ms(a));
                assert!(a.rtt_ms(b) > 0.0);
            }
        }
    }

    #[test]
    fn local_is_fastest() {
        for &a in &Region::VANTAGE_POINTS {
            for &b in &Region::VANTAGE_POINTS {
                if a != b {
                    assert!(a.rtt_ms(a) < a.rtt_ms(b));
                }
            }
        }
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Region::SaoPaulo.label(), "Sao-Paulo");
        assert_eq!(Region::Oregon.to_string(), "Oregon");
    }
}
