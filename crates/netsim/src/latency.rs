//! Latency modeling.
//!
//! Request latency = DNS (cached after first lookup) + TCP handshake
//! (1 RTT) + HTTP request/response (1 RTT + server time), with
//! deterministic per-sample jitter derived from a hash of the inputs so
//! the same (client, host, time) always sees the same latency. Zhu et
//! al.'s 2016 measurement (cited in §3) found a 20 ms median OCSP lookup
//! because 94 % of requests hit CDN edges; our CDN front reproduces that
//! by serving from the client's own region.

use crate::region::Region;
use asn1::Time;
use simcrypto::hmac_sha256;

/// Deterministic jitter in `[0, spread_ms)` for a `(host, region, time)`
/// triple.
fn jitter_ms(seed: u64, host: &str, region: Region, time: Time, spread_ms: f64) -> f64 {
    let mut msg = Vec::with_capacity(host.len() + 24);
    msg.extend_from_slice(host.as_bytes());
    msg.push(region as u8);
    msg.extend_from_slice(&time.unix().to_be_bytes());
    let mac = hmac_sha256(&seed.to_be_bytes(), &msg);
    let x = u64::from_be_bytes(mac[..8].try_into().unwrap());
    (x as f64 / u64::MAX as f64) * spread_ms
}

/// Latency of one HTTP exchange from `client` to a server in
/// `server_region`, including DNS when `cold_dns` is set.
pub fn http_latency_ms(
    seed: u64,
    host: &str,
    client: Region,
    server_region: Region,
    time: Time,
    cold_dns: bool,
    server_time_ms: f64,
) -> f64 {
    let rtt = client.rtt_ms(server_region);
    let dns = if cold_dns { rtt * 0.5 } else { 0.0 };
    let base = dns + rtt /* TCP */ + rtt /* HTTP */ + server_time_ms;
    base + jitter_ms(seed, host, client, time, rtt * 0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Time {
        Time::from_civil(2018, 5, 1, 0, 0, 0)
    }

    #[test]
    fn deterministic() {
        let a = http_latency_ms(
            1,
            "ocsp.ca.test",
            Region::Paris,
            Region::Virginia,
            t(),
            true,
            5.0,
        );
        let b = http_latency_ms(
            1,
            "ocsp.ca.test",
            Region::Paris,
            Region::Virginia,
            t(),
            true,
            5.0,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn varies_with_inputs() {
        let a = http_latency_ms(1, "a.test", Region::Paris, Region::Virginia, t(), true, 5.0);
        let b = http_latency_ms(1, "b.test", Region::Paris, Region::Virginia, t(), true, 5.0);
        let c = http_latency_ms(
            1,
            "a.test",
            Region::Paris,
            Region::Virginia,
            t() + 3600,
            true,
            5.0,
        );
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn warm_dns_is_faster() {
        let cold = http_latency_ms(1, "x.test", Region::Seoul, Region::Paris, t(), true, 5.0);
        let warm = http_latency_ms(1, "x.test", Region::Seoul, Region::Paris, t(), false, 5.0);
        assert!(warm < cold);
    }

    #[test]
    fn nearby_beats_faraway() {
        // Same-region (CDN-edge-like) exchange ~ a few ms; antipodal ~ 600+.
        let near = http_latency_ms(1, "x.test", Region::Sydney, Region::Sydney, t(), false, 1.0);
        let far = http_latency_ms(
            1,
            "x.test",
            Region::Sydney,
            Region::SaoPaulo,
            t(),
            false,
            1.0,
        );
        assert!(near < 10.0, "near = {near}");
        assert!(far > 500.0, "far = {far}");
    }
}
