//! A deterministic simulated Internet for the Must-Staple study.
//!
//! The paper's availability results (§5.2) are produced by six
//! measurement clients in AWS regions POSTing OCSP requests to 536
//! responders every hour for four months. This crate is the fabric that
//! replaces the real Internet in that loop:
//!
//! * [`region`] — the six vantage-point regions plus server-side hosting
//!   regions, with a realistic RTT matrix;
//! * [`world`] — the host registry and HTTP dispatch: URL → DNS → outage
//!   checks → latency → handler. Handlers are plain closures, so any
//!   crate (OCSP responders, web servers, CRL file servers) can plug in;
//! * [`outage`] — failure injection: persistent per-region failures (the
//!   NXDOMAIN / TCP / HTTP-4xx/5xx / bad-certificate taxonomy of §5.2)
//!   and transient windows, attachable to single hosts or to
//!   *infrastructure groups* (the Comodo episode: eight CNAMEs and six
//!   shared IPs all failing together);
//! * [`cdn`] — a caching CDN front, for the §5.2 "CDN's perspective"
//!   experiment (origin contacts are rare and, when the origin is up,
//!   always succeed).
//!
//! Design note: the simulation is *stepped*, not event-queued. Every
//! interaction takes an explicit `Time` and returns its outcome and
//! latency synchronously; the measurement schedule (hourly scans) is the
//! only driver of time. This follows the smoltcp philosophy of explicit
//! state machines polled by the caller — no hidden concurrency, perfect
//! reproducibility.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cdn;
pub mod latency;
pub mod outage;
pub mod region;
pub mod world;

pub use asn1::Time;
pub use cdn::CdnNode;
pub use outage::{FailureKind, Outage};
pub use region::Region;
pub use world::{
    Handler, HandlerFactory, HttpOutcome, HttpResult, PendingRequest, Topology, World,
};
