//! A deterministic sharded executor for the scan campaigns.
//!
//! The real study ran six clients POSTing to 536 responders every hour
//! for four months; the simulation replays that serially in a single
//! loop. This module shards that loop across OS threads **without
//! changing a single output byte**:
//!
//! * Work is split into *shards* — one per responder (hourly scan,
//!   Alexa1M) or one per operator (consistency study). A shard is the
//!   unit of determinism, not the thread: shard `i` always processes the
//!   exact same probe subsequence the serial run would have given it.
//! * Each shard owns a private RNG seeded by
//!   [`seed_for_shard`]`(base_seed, shard_id)` — a fixed function of the
//!   *shard id*, never of the worker that happens to run it. Worker
//!   count and OS scheduling therefore cannot influence any random
//!   draw.
//! * Results come back as `Vec<R>` in shard-id order regardless of
//!   completion order, so the caller's merge is canonical.
//!
//! A "serial" run is simply `workers = 1` through the identical code
//! path — there is no second implementation to drift.
//!
//! Only `std::thread::scope` is used; no thread-pool dependency
//! (DESIGN.md §6: standard library only).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use telemetry::trace::Span;

/// Derive the RNG seed for one shard from the campaign's base seed.
///
/// This is the SplitMix64 finalizer over `base ^ (shard · φ64)`: cheap,
/// bijective in `base` for fixed `shard`, and avalanching, so
/// neighboring shard ids get statistically independent streams. The
/// derivation depends only on `(base_seed, shard_id)` — *not* on worker
/// count or scheduling — which is the whole determinism argument.
pub fn seed_for_shard(base_seed: u64, shard_id: u64) -> u64 {
    let mut z = base_seed ^ shard_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A ready-to-use RNG for one shard.
pub fn shard_rng(base_seed: u64, shard_id: u64) -> StdRng {
    StdRng::seed_from_u64(seed_for_shard(base_seed, shard_id))
}

/// Derive the RNG seed for one *chunk* of a shard: the
/// [`seed_for_shard`] derivation applied twice, first over the shard id
/// and then over the chunk index. A shard with a single chunk draws
/// `seed_for_shard(base, shard)` exactly, so migrating a
/// [`Executor::run_sharded`] caller to [`Executor::run_chunked`] with
/// one chunk per shard changes no random stream.
pub fn seed_for_chunk(base_seed: u64, shard_id: u64, chunk: u64) -> u64 {
    seed_for_shard(seed_for_shard(base_seed, shard_id), chunk)
}

/// A ready-to-use RNG for one chunk of a shard. Chunk 0 of a
/// single-chunk shard must use [`shard_rng`] instead — see
/// [`Executor::run_chunked`] for the compatibility rule.
pub fn chunk_rng(base_seed: u64, shard_id: u64, chunk: u64) -> StdRng {
    StdRng::seed_from_u64(seed_for_chunk(base_seed, shard_id, chunk))
}

/// Runs shard closures across a fixed number of worker threads.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    workers: NonZeroUsize,
}

impl Executor {
    /// An executor with the given worker count; `None` means "use
    /// [`std::thread::available_parallelism`]" (falling back to 1 if
    /// that errors).
    pub fn new(workers: Option<NonZeroUsize>) -> Executor {
        let workers = workers
            .or_else(|| std::thread::available_parallelism().ok())
            .unwrap_or(NonZeroUsize::MIN);
        Executor { workers }
    }

    /// A single-threaded executor (the serial escape hatch).
    pub fn serial() -> Executor {
        Executor {
            workers: NonZeroUsize::MIN,
        }
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers.get()
    }

    /// Run `shard_count` shards of `job` and return their results in
    /// shard-id order.
    ///
    /// `job(shard_id, rng)` receives a private RNG derived from
    /// `(base_seed, shard_id)` via [`seed_for_shard`]. Shards are pulled
    /// from a shared atomic queue, so long shards don't serialize behind
    /// a static partition; the result vector is ordered by shard id, so
    /// callers observe nothing about scheduling.
    pub fn run_sharded<R, F>(&self, base_seed: u64, shard_count: usize, job: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut StdRng) -> R + Sync,
    {
        let workers = self.workers.get().min(shard_count.max(1));
        if workers <= 1 {
            return (0..shard_count)
                .map(|shard| {
                    let mut rng = shard_rng(base_seed, shard as u64);
                    job(shard, &mut rng)
                })
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..shard_count).map(|_| Mutex::new(None)).collect();
        let job = &job;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let shard = next.fetch_add(1, Ordering::Relaxed);
                    if shard >= shard_count {
                        break;
                    }
                    let mut rng = shard_rng(base_seed, shard as u64);
                    let result = job(shard, &mut rng);
                    *slots[shard].lock().unwrap() = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every shard index below shard_count was claimed exactly once")
            })
            .collect()
    }

    /// Run `job` over (shard × chunk) work units, returning per-shard
    /// result vectors in chunk order.
    ///
    /// Chunks split a shard's timeline into independently runnable
    /// pieces, so one Alexa-heavy responder no longer serializes a whole
    /// worker. `chunks_per_shard[s]` is the number of chunks for shard
    /// `s`; all units feed one shared atomic queue.
    ///
    /// RNG rule: a shard with exactly one chunk draws
    /// [`seed_for_shard`]`(base, shard)` — byte-for-byte what
    /// [`Executor::run_sharded`] would give it — while multi-chunk
    /// shards draw [`seed_for_chunk`]`(base, shard, chunk)` per chunk.
    /// Both depend only on indices, never on worker count, so output
    /// is identical for every worker count; callers must additionally
    /// pick the *chunk plan* as a pure function of configuration.
    pub fn run_chunked<R, F>(
        &self,
        base_seed: u64,
        chunks_per_shard: &[usize],
        job: F,
    ) -> Vec<Vec<R>>
    where
        R: Send,
        F: Fn(usize, usize, &mut StdRng) -> R + Sync,
    {
        fn unit_rng(base_seed: u64, shard: usize, chunk: usize, chunks_in_shard: usize) -> StdRng {
            if chunks_in_shard == 1 {
                shard_rng(base_seed, shard as u64)
            } else {
                chunk_rng(base_seed, shard as u64, chunk as u64)
            }
        }

        let units: Vec<(usize, usize)> = chunks_per_shard
            .iter()
            .enumerate()
            .flat_map(|(shard, &chunks)| (0..chunks).map(move |chunk| (shard, chunk)))
            .collect();
        let workers = self.workers.get().min(units.len().max(1));
        if workers <= 1 {
            let mut out: Vec<Vec<R>> = chunks_per_shard
                .iter()
                .map(|&c| Vec::with_capacity(c))
                .collect();
            for (shard, chunk) in units {
                let mut rng = unit_rng(base_seed, shard, chunk, chunks_per_shard[shard]);
                out[shard].push(job(shard, chunk, &mut rng));
            }
            return out;
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..units.len()).map(|_| Mutex::new(None)).collect();
        let job = &job;
        let units = &units;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= units.len() {
                        break;
                    }
                    let (shard, chunk) = units[i];
                    let mut rng = unit_rng(base_seed, shard, chunk, chunks_per_shard[shard]);
                    *slots[i].lock().unwrap() = Some(job(shard, chunk, &mut rng));
                });
            }
        });
        let mut results = slots.into_iter().map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every unit index was claimed exactly once")
        });
        chunks_per_shard
            .iter()
            .map(|&c| (&mut results).take(c).collect())
            .collect()
    }

    /// [`Executor::run_chunked`], with a deterministic trace span per
    /// chunk.
    ///
    /// `job` returns `(result, span)` per chunk; chunk spans aggregate
    /// into one shard span named by `shard_name(shard_id)` (envelope
    /// hours, summed units — see [`Span::aggregate`]). Returns the
    /// per-shard results exactly as [`Executor::run_chunked`] would,
    /// plus the shard spans in shard-id order, so the trace is as
    /// worker-count-independent as the results themselves.
    pub fn run_chunked_traced<R, F, N>(
        &self,
        base_seed: u64,
        chunks_per_shard: &[usize],
        shard_name: N,
        job: F,
    ) -> (Vec<Vec<R>>, Vec<Span>)
    where
        R: Send,
        F: Fn(usize, usize, &mut StdRng) -> (R, Span) + Sync,
        N: Fn(usize) -> String,
    {
        let per_shard = self.run_chunked(base_seed, chunks_per_shard, job);
        let mut results = Vec::with_capacity(per_shard.len());
        let mut spans = Vec::with_capacity(per_shard.len());
        for (shard, pairs) in per_shard.into_iter().enumerate() {
            let mut shard_results = Vec::with_capacity(pairs.len());
            let mut chunk_spans = Vec::with_capacity(pairs.len());
            for (result, span) in pairs {
                shard_results.push(result);
                chunk_spans.push(span);
            }
            results.push(shard_results);
            spans.push(Span::aggregate(shard_name(shard), chunk_spans));
        }
        (results, spans)
    }
}

impl Default for Executor {
    fn default() -> Executor {
        Executor::new(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore};

    fn stream(seed: u64, shard: u64, n: usize) -> Vec<u64> {
        let mut rng = shard_rng(seed, shard);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn same_seed_and_shard_give_identical_streams() {
        assert_eq!(stream(2018, 3, 64), stream(2018, 3, 64));
    }

    #[test]
    fn distinct_shards_give_distinct_streams() {
        for a in 0..24u64 {
            for b in (a + 1)..24 {
                assert_ne!(
                    stream(7, a, 8),
                    stream(7, b, 8),
                    "shards {a} and {b} collided"
                );
            }
        }
    }

    #[test]
    fn distinct_base_seeds_give_distinct_streams() {
        assert_ne!(stream(1, 0, 8), stream(2, 0, 8));
    }

    #[test]
    fn shard_zero_is_not_the_raw_base_seed_stream() {
        // Shard 0 must still go through the derivation, otherwise its
        // stream would collide with unrelated uses of the base seed.
        let mut raw = StdRng::seed_from_u64(2018);
        let raw_stream: Vec<u64> = (0..8).map(|_| raw.next_u64()).collect();
        assert_ne!(stream(2018, 0, 8), raw_stream);
    }

    #[test]
    fn worker_count_does_not_affect_any_shard_stream() {
        // Each shard samples from its RNG; results must be identical for
        // every worker count, in shard order.
        let job = |shard: usize, rng: &mut StdRng| -> (usize, Vec<u64>) {
            // Uneven work per shard, to force interleaved completion.
            let n = 1 + (shard * 7) % 13;
            (shard, (0..n).map(|_| rng.next_u64()).collect())
        };
        let serial = Executor::serial().run_sharded(42, 29, job);
        for workers in [2usize, 3, 4, 8] {
            let parallel = Executor::new(NonZeroUsize::new(workers)).run_sharded(42, 29, job);
            assert_eq!(serial, parallel, "workers={workers} diverged from serial");
        }
    }

    #[test]
    fn results_come_back_in_shard_order() {
        let out = Executor::new(NonZeroUsize::new(4)).run_sharded(0, 100, |shard, _| shard);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_shards_is_fine() {
        let out = Executor::new(NonZeroUsize::new(4)).run_sharded(0, 0, |shard, _| shard);
        assert!(out.is_empty());
    }

    #[test]
    fn single_chunk_shards_reproduce_run_sharded_exactly() {
        let sharded_job = |shard: usize, rng: &mut StdRng| -> (usize, Vec<u64>) {
            (shard, (0..6).map(|_| rng.next_u64()).collect())
        };
        let chunked_job = |shard: usize, chunk: usize, rng: &mut StdRng| -> (usize, Vec<u64>) {
            assert_eq!(chunk, 0);
            (shard, (0..6).map(|_| rng.next_u64()).collect())
        };
        let sharded = Executor::serial().run_sharded(2018, 9, sharded_job);
        let chunked = Executor::serial().run_chunked(2018, &[1; 9], chunked_job);
        assert_eq!(
            sharded,
            chunked
                .into_iter()
                .map(|mut v| v.remove(0))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn chunk_streams_are_distinct_from_each_other_and_the_shard_stream() {
        let shard = stream(2018, 4, 8);
        let mut chunk_streams = Vec::new();
        for chunk in 0..8u64 {
            let mut rng = chunk_rng(2018, 4, chunk);
            chunk_streams.push((0..8).map(|_| rng.next_u64()).collect::<Vec<_>>());
        }
        for (i, cs) in chunk_streams.iter().enumerate() {
            assert_ne!(*cs, shard, "chunk {i} collided with the shard stream");
            for (j, other) in chunk_streams.iter().enumerate().skip(i + 1) {
                assert_ne!(cs, other, "chunks {i} and {j} collided");
            }
        }
    }

    #[test]
    fn worker_count_does_not_affect_chunked_results() {
        let chunks = [3usize, 1, 7, 2, 1, 5, 4];
        let job = |shard: usize, chunk: usize, rng: &mut StdRng| -> (usize, usize, Vec<u64>) {
            let n = 1 + (shard * 5 + chunk * 3) % 11;
            (shard, chunk, (0..n).map(|_| rng.next_u64()).collect())
        };
        let serial = Executor::serial().run_chunked(42, &chunks, job);
        assert_eq!(serial.len(), chunks.len());
        for (shard, results) in serial.iter().enumerate() {
            assert_eq!(results.len(), chunks[shard]);
            for (chunk, r) in results.iter().enumerate() {
                assert_eq!((r.0, r.1), (shard, chunk));
            }
        }
        for workers in [2usize, 3, 4, 8] {
            let parallel = Executor::new(NonZeroUsize::new(workers)).run_chunked(42, &chunks, job);
            assert_eq!(serial, parallel, "workers={workers} diverged from serial");
        }
    }

    #[test]
    fn zero_chunks_everywhere_is_fine() {
        let out = Executor::new(NonZeroUsize::new(4)).run_chunked(
            0,
            &[0, 0, 0],
            |_, _, _| unreachable!(),
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(Vec::<()>::is_empty));
    }

    #[test]
    fn traced_chunking_matches_plain_and_aggregates_spans() {
        let chunks = [2usize, 1, 3];
        let plain_job = |shard: usize, chunk: usize, rng: &mut StdRng| -> u64 {
            rng.next_u64().wrapping_add((shard * 10 + chunk) as u64)
        };
        let traced_job = |shard: usize, chunk: usize, rng: &mut StdRng| -> (u64, Span) {
            let value = plain_job(shard, chunk, rng);
            let start = (chunk * 4) as u64;
            (
                value,
                Span::leaf(format!("chunk {chunk}"), start, start + 4, 1),
            )
        };
        let plain = Executor::serial().run_chunked(7, &chunks, plain_job);
        let (results, spans) = Executor::serial().run_chunked_traced(
            7,
            &chunks,
            |shard| format!("shard {shard}"),
            traced_job,
        );
        assert_eq!(results, plain, "tracing must not perturb results");
        assert_eq!(spans.len(), chunks.len());
        assert_eq!(spans[0].name, "shard 0");
        assert_eq!((spans[0].start_hour, spans[0].end_hour), (0, 8));
        assert_eq!(spans[0].units, 2);
        assert_eq!(spans[2].children.len(), 3);
        for workers in [2usize, 4] {
            let (_, parallel_spans) = Executor::new(NonZeroUsize::new(workers)).run_chunked_traced(
                7,
                &chunks,
                |shard| format!("shard {shard}"),
                traced_job,
            );
            assert_eq!(spans, parallel_spans, "workers={workers} trace diverged");
        }
    }

    #[test]
    fn shard_rng_draws_cover_ranges() {
        let mut rng = shard_rng(9, 9);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn default_executor_has_at_least_one_worker() {
        assert!(Executor::default().workers() >= 1);
    }
}
