//! The Alexa1M impact analysis — Figure 4.
//!
//! The paper's Alexa1M dataset maps popular domains to their OCSP
//! responders and asks: during each hour, from each vantage point, how
//! many domains could *not* have their revocation status checked because
//! their responder was down? The headline events: 163 k domains dark
//! from Oregon/Sydney/Seoul during the Comodo episode; 77 k from Seoul
//! during the Digicert episode; 318 domains *persistently* unavailable
//! from São Paulo.
//!
//! Engine note: this analysis performs no network I/O of its own — it
//! folds a completed [`HourlyDataset`], so `--engine reactor` reaches
//! it through the hourly campaign (the dataset is byte-identical under
//! either engine) and the fold itself is engine-independent.

use crate::executor::Executor;
use crate::hourly::HourlyDataset;
use asn1::Time;
use netsim::Region;
use std::time::Instant;
use telemetry::catalog;
use telemetry::trace::Span;
use telemetry::Registry;

/// Analysis wrapper over a completed campaign.
pub struct Alexa1mScan;

/// The Figure 4 summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alexa1mSummary {
    /// Per-region `(time, domains unreachable)` series.
    pub series: Vec<(Region, Vec<(Time, u64)>)>,
    /// Per-region peak `(time, domains)` — the outage-event spikes.
    pub peaks: Vec<(Region, Time, u64)>,
    /// Domains persistently unreachable from São Paulo only (paper: 318).
    pub sao_paulo_persistent: u64,
    /// Total Alexa domains covered by the mapping.
    pub total_domains: u64,
    /// Per-shard contribution counters (`scan.alexa1m.*`), merged in
    /// shard-id order.
    pub telemetry: Registry,
    /// Deterministic self-profile: one `scan.alexa1m` span over one
    /// responder span per shard; the analysis reads the whole campaign,
    /// so every span covers the full simulated hour range, with the
    /// responder's Alexa domain weight as its work units.
    pub trace: Span,
}

impl Alexa1mScan {
    /// Derive the summary from a campaign (default executor).
    pub fn summarize(dataset: &HourlyDataset) -> Alexa1mSummary {
        Alexa1mScan::summarize_with(dataset, &Executor::default())
    }

    /// Derive the summary from a campaign on a specific executor. One
    /// shard per responder; each shard's contribution to the persistent
    /// count is a pure function of its responder's report, and the merge
    /// is a plain sum — identical for every worker count.
    pub fn summarize_with(dataset: &HourlyDataset, executor: &Executor) -> Alexa1mSummary {
        let series: Vec<(Region, Vec<(Time, u64)>)> = dataset
            .alexa_unreachable
            .iter()
            .map(|(region, ts)| (*region, ts.counts()))
            .collect();

        let peaks = series
            .iter()
            .map(|(region, counts)| {
                let (t, n) = counts
                    .iter()
                    .max_by_key(|(_, n)| *n)
                    .copied()
                    .unwrap_or((Time::UNIX_EPOCH, 0));
                (*region, t, n)
            })
            .collect();

        // Persistently dark from São Paulo but fine elsewhere.
        let sp = Region::VANTAGE_POINTS
            .iter()
            .position(|&r| r == Region::SaoPaulo)
            .expect("São Paulo is a vantage point");
        // One chunk per responder: the per-shard work is a handful of
        // arithmetic ops, so the chunked API is used in its degenerate
        // (RNG-compatible) form purely for executor uniformity.
        let chunk_counts = vec![1usize; dataset.responders.len()];
        let (campaign_start_hour, campaign_end_hour) =
            (dataset.trace.start_hour, dataset.trace.end_hour);
        let (contributions, shard_spans) = executor.run_chunked_traced(
            0,
            &chunk_counts,
            |shard| dataset.responders[shard].url.clone(),
            |shard, _chunk, _rng| {
                let report = &dataset.responders[shard];
                // "Persistent" as the paper used it: dark from São Paulo for
                // essentially the whole campaign while reachable elsewhere.
                // (The digitalcertvalidation responders were fixed on Aug 31
                // — footnote 11 — so a strict never-succeeded test would
                // undercount them.)
                let attempts = report.attempts[sp].max(1);
                let dead_fraction = 1.0 - report.successes[sp] as f64 / attempts as f64;
                let alive_elsewhere = (0..6).any(|i| i != sp && report.successes[i] > 0);
                let mut shard_telemetry = Registry::new();
                shard_telemetry.incr(catalog::SCAN_ALEXA1M_RESPONDERS_EVALUATED, &report.url);
                let contribution = if dead_fraction >= 0.9 && alive_elsewhere {
                    let weight = dataset.alexa_weights[shard] as u64;
                    shard_telemetry.add(
                        catalog::SCAN_ALEXA1M_PERSISTENT_DOMAINS,
                        &report.url,
                        weight,
                    );
                    weight
                } else {
                    0
                };
                // The analysis reads the whole campaign for this responder;
                // its weight (domains depending on it) is the work covered.
                let span = Span::leaf(
                    "chunk 0",
                    campaign_start_hour,
                    campaign_end_hour,
                    dataset.alexa_weights[shard] as u64,
                );
                ((contribution, shard_telemetry), span)
            },
        );

        let mut telemetry = Registry::new();
        // detlint::allow(wall-clock): merge wall timing feeds a telemetry span, which is excluded from artifact equality
        let merge_started = Instant::now();
        let mut sao_paulo_persistent = 0u64;
        for (contribution, shard_telemetry) in contributions.iter().flatten() {
            sao_paulo_persistent += contribution;
            telemetry.merge(shard_telemetry);
        }
        telemetry.record_wall(
            catalog::SCAN_ALEXA1M_MERGE,
            merge_started.elapsed().as_nanos(),
        );

        let total_domains = dataset.alexa_weights.iter().map(|&w| w as u64).sum();
        Alexa1mSummary {
            series,
            peaks,
            sao_paulo_persistent,
            total_domains,
            telemetry,
            trace: Span::aggregate("scan.alexa1m", shard_spans),
        }
    }
}

impl Alexa1mSummary {
    /// The single largest event across all regions.
    pub fn global_peak(&self) -> (Region, Time, u64) {
        *self
            .peaks
            .iter()
            .max_by_key(|(_, _, n)| *n)
            .expect("six regions")
    }

    /// The series for one region.
    pub fn region_series(&self, region: Region) -> &[(Time, u64)] {
        &self
            .series
            .iter()
            .find(|(r, _)| *r == region)
            .expect("vantage point")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hourly::HourlyCampaign;
    use ecosystem::{EcosystemConfig, LiveEcosystem};

    #[test]
    fn comodo_episode_dominates_affected_regions() {
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        let dataset = HourlyCampaign::new(&eco).run();
        let summary = Alexa1mScan::summarize(&dataset);

        assert!(summary.total_domains > 0);
        assert_eq!(summary.series.len(), 6);

        // The Comodo outage (Apr 25, Oregon/Sydney/Seoul) is the largest
        // single event: those regions' peaks dwarf Virginia's and fall on
        // April 25.
        let (region, t, peak) = summary.global_peak();
        assert!(
            matches!(region, Region::Oregon | Region::Sydney | Region::Seoul),
            "peak region {region}"
        );
        assert!(peak > 0);
        let civil = t.civil();
        assert_eq!(
            (civil.year, civil.month, civil.day),
            (2018, 4, 25),
            "peak at {t}"
        );

        // And Comodo's market share makes the peak a big share of all
        // domains.
        assert!(peak as f64 / summary.total_domains as f64 > 0.1);
    }

    #[test]
    fn parallel_summary_equals_serial_summary_exactly() {
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        let dataset = HourlyCampaign::new(&eco).run();
        let serial = Alexa1mScan::summarize_with(&dataset, &Executor::serial());
        assert_eq!(
            serial
                .telemetry
                .counter_total("scan.alexa1m.responders_evaluated"),
            dataset.responders.len() as u64
        );
        assert_eq!(
            serial
                .telemetry
                .counter_total("scan.alexa1m.persistent_domains"),
            serial.sao_paulo_persistent
        );
        for workers in [2usize, 5] {
            let executor = Executor::new(std::num::NonZeroUsize::new(workers));
            let parallel = Alexa1mScan::summarize_with(&dataset, &executor);
            assert_eq!(serial, parallel, "workers={workers}");
            assert_eq!(
                serial.telemetry.to_csv(),
                parallel.telemetry.to_csv(),
                "workers={workers}"
            );
        }
    }
}
