//! The CDN's perspective (§5.2).
//!
//! Akamai logs from two locations over ~60 hours showed: a CDN fronting
//! OCSP traffic contacts only ~20 distinct responders, most responses
//! come from cache, and — in that window — every origin contact
//! succeeded. This module replays synthetic TLS-driven OCSP traffic
//! through [`netsim::CdnNode`] edges and reports the same three
//! observations.
//!
//! Engine note: the replay is a single sequential log — there is no
//! probe matrix to keep in flight — so this study adopts the reactor
//! work at depth 1: `CdnNode::fetch` drives its origin fetches through
//! the split [`netsim::World::start_request`] / `poll_response` API
//! (the same non-blocking path the reactor engine drains), which is
//! byte-identical to the old blocking call by construction.

use crate::executor::Executor;
use asn1::Time;
use ecosystem::LiveEcosystem;
use netsim::{CdnNode, Region};
use ocsp::{OcspRequest, OcspResponse, ResponseStatus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use telemetry::catalog;
use telemetry::trace::Span;

/// Study results.
#[derive(Debug, Clone)]
pub struct CdnSummary {
    /// TLS-driven OCSP lookups replayed.
    pub lookups: u64,
    /// Distinct responders the CDN contacted (paper: ~20).
    pub distinct_responders: usize,
    /// Fraction of lookups served from the edge cache.
    pub cache_hit_ratio: f64,
    /// Fraction of origin fetches that succeeded (paper: 100 %).
    pub origin_success_ratio: f64,
    /// Origin fetches made.
    pub origin_fetches: u64,
    /// Study telemetry: per-edge lookup counters plus everything the
    /// world recorded (edge hits/misses/origin fetches per region).
    pub telemetry: telemetry::Registry,
    /// Deterministic self-profile: one `scan.cdnlog` span over the
    /// single replay work unit, covering the replayed hour window with
    /// one unit per lookup.
    pub trace: Span,
}

/// The study driver.
pub struct CdnStudy;

impl CdnStudy {
    /// Replay `hours` of traffic (paper: ~60) at `lookups_per_hour`
    /// through two edge locations.
    pub fn run(
        eco: &LiveEcosystem,
        start: Time,
        hours: i64,
        lookups_per_hour: usize,
    ) -> CdnSummary {
        CdnStudy::run_with(eco, start, hours, lookups_per_hour, &Executor::serial())
    }

    /// [`CdnStudy::run`] scheduled on a specific executor.
    ///
    /// Both edges share one cache-coupled world and one sequentially
    /// drawn RNG, so the replay cannot be subdivided without changing
    /// its byte stream: it runs as a *single* work unit, letting the
    /// executor overlap it with other studies rather than split it. The
    /// study keeps its own `seed ^ 0xCD11` RNG (not the unit RNG) so
    /// results are identical to the historical serial path.
    pub fn run_with(
        eco: &LiveEcosystem,
        start: Time,
        hours: i64,
        lookups_per_hour: usize,
        executor: &Executor,
    ) -> CdnSummary {
        let (mut out, spans) = executor.run_chunked_traced(
            eco.config.seed ^ 0xCD11,
            &[1],
            |_shard| "replay".to_string(),
            |_shard, _chunk, _rng| {
                let summary = CdnStudy::replay(eco, start, hours, lookups_per_hour);
                let span = summary.trace.clone();
                (summary, span)
            },
        );
        let mut summary = out
            .pop()
            .and_then(|mut chunks| chunks.pop())
            .expect("one work unit");
        summary.trace = Span::aggregate("scan.cdnlog", spans);
        summary
    }

    /// The sequential replay body.
    fn replay(eco: &LiveEcosystem, start: Time, hours: i64, lookups_per_hour: usize) -> CdnSummary {
        let mut world = eco.build_world();
        let mut edges = [CdnNode::new(Region::Virginia), CdnNode::new(Region::Paris)];
        let mut rng = StdRng::seed_from_u64(eco.config.seed ^ 0xCD11);

        // Traffic concentrates on popular certificates: pick an operator
        // with probability proportional to the *square* of its market
        // share (popular sites skew toward the big CAs even harder than
        // issuance volume does), then one of its certificates. This is
        // why the paper's CDN logs show only ~20 distinct responders.
        let weights: Vec<f64> = eco
            .operators
            .iter()
            .map(|op| op.market_share * op.market_share)
            .collect();
        let total_weight: f64 = weights.iter().sum();
        let targets = &eco.scan_targets;
        let mut lookups = 0u64;
        let mut contacted: HashSet<String> = HashSet::new();

        for hour in 0..hours {
            for _ in 0..lookups_per_hour {
                let now = start + hour * 3_600 + rng.gen_range(0..3_600);
                let mut pick: f64 = rng.gen_range(0.0..total_weight);
                let mut op_idx = 0;
                for (i, w) in weights.iter().enumerate() {
                    if pick < *w {
                        op_idx = i;
                        break;
                    }
                    pick -= w;
                }
                let candidates: Vec<usize> = targets
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.operator == op_idx)
                    .map(|(i, _)| i)
                    .collect();
                let idx = candidates[rng.gen_range(0..candidates.len())];
                let target = &targets[idx];
                let req = OcspRequest::single(target.cert_id.clone()).to_der();
                // Each request lands on an edge independently (real
                // clients are routed per-connection, not per-hour);
                // drawn from the study RNG so replay stays deterministic.
                let edge = &mut edges[rng.gen_range(0..edges.len())];
                let edge_region = edge.region();
                let before = edge.stats().origin_fetches;
                let result = edge.fetch(&mut world, &target.url, &req, now, |body| {
                    // Cache until the response's nextUpdate (cap 24 h).
                    match OcspResponse::from_der(body) {
                        Ok(resp) if resp.status == ResponseStatus::Successful => resp
                            .basic
                            .as_ref()
                            .and_then(|b| b.responses.first())
                            .and_then(|sr| sr.next_update)
                            .map(|nu| (nu - now).clamp(0, 86_400))
                            .unwrap_or(3_600),
                        _ => 0, // never cache garbage
                    }
                });
                if edge.stats().origin_fetches > before {
                    contacted.insert(target.url.clone());
                }
                let _ = result;
                world
                    .telemetry_mut()
                    .incr(catalog::SCAN_CDN_LOOKUPS, edge_region.label());
                lookups += 1;
            }
        }

        let stats = edges[0].stats();
        let stats1 = edges[1].stats();
        let cache_hits = stats.cache_hits + stats1.cache_hits;
        let origin = stats.origin_fetches + stats1.origin_fetches;
        let origin_ok = stats.origin_successes + stats1.origin_successes;
        CdnSummary {
            lookups,
            distinct_responders: contacted.len(),
            cache_hit_ratio: cache_hits as f64 / lookups.max(1) as f64,
            origin_success_ratio: if origin == 0 {
                1.0
            } else {
                origin_ok as f64 / origin as f64
            },
            origin_fetches: origin,
            telemetry: world.take_telemetry(),
            trace: Span::leaf(
                "chunk 0",
                ((start - eco.config.campaign_start).max(0) / 3_600) as u64,
                ((start - eco.config.campaign_start).max(0) / 3_600 + hours.max(0)) as u64,
                lookups,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosystem::EcosystemConfig;

    #[test]
    fn cache_absorbs_most_lookups_and_origins_mostly_succeed() {
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        let start = eco.config.campaign_start + 86_400;
        let summary = CdnStudy::run(&eco, start, 60, 50);

        assert_eq!(summary.lookups, 60 * 50);
        // "most responses are served from cache".
        assert!(
            summary.cache_hit_ratio > 0.5,
            "hit ratio {}",
            summary.cache_hit_ratio
        );
        // Origin contacts are far rarer than lookups.
        assert!(summary.origin_fetches < summary.lookups / 2);
        // The CDN talks to a small set of responders.
        assert!(summary.distinct_responders <= eco.responders.len());
        // Origin success is high (the paper saw 100 %; our world has
        // scripted outages, so allow a small margin).
        assert!(
            summary.origin_success_ratio > 0.9,
            "{}",
            summary.origin_success_ratio
        );
    }

    #[test]
    fn single_hour_traffic_reaches_both_edges() {
        // Regression: edge selection used to be `edges[(hour % 2)]`,
        // pinning every request inside an hour to one location — a
        // single-hour replay would leave the other edge completely
        // idle. Requests are now routed per-lookup.
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        let start = eco.config.campaign_start + 86_400;
        let summary = CdnStudy::run(&eco, start, 1, 200);

        let virginia = summary
            .telemetry
            .counter("scan.cdn.lookups", Region::Virginia.label());
        let paris = summary
            .telemetry
            .counter("scan.cdn.lookups", Region::Paris.label());
        assert!(virginia > 0, "Virginia edge saw no traffic");
        assert!(paris > 0, "Paris edge saw no traffic");
        assert_eq!(virginia + paris, summary.lookups);
        // The world-side edge counters rode along with the merge.
        let hits: u64 = [Region::Virginia, Region::Paris]
            .iter()
            .map(|r| summary.telemetry.counter("cdn.edge.hit", r.label()))
            .sum();
        let misses: u64 = [Region::Virginia, Region::Paris]
            .iter()
            .map(|r| summary.telemetry.counter("cdn.edge.miss", r.label()))
            .sum();
        assert_eq!(hits + misses, summary.lookups);
    }
}
