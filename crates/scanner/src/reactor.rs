//! A deterministic simulated-time reactor: the event-loop core of the
//! `--engine reactor` scan engine.
//!
//! The threads engine drives one blocking `World::http_post` per work
//! unit; the reactor engine instead *submits* every probe in a work
//! unit up front ([`netsim::World::start_request`] draws the latency
//! and performs all world mutation at submission time) and then drains
//! completions from a simulated-time wheel, so tens of thousands of
//! responder connections can be in flight per core. DESIGN.md §12
//! documents the state-machine lifecycle and the determinism argument.
//!
//! # Determinism contract
//!
//! The reactor must preserve the repo's byte-for-byte invariant
//! (serial ≡ N workers ≡ any chunking). Two rules make that hold:
//!
//! 1. **All world mutation happens at submission time**, in canonical
//!    `(shard, chunk, sequence)` order — the same order the blocking
//!    engine issues requests in. Completion order can therefore never
//!    influence RNG streams, DNS caches, handler state, or telemetry.
//! 2. **Events at equal simulated timestamps are tie-broken by
//!    submission sequence**, never by ready-queue arrival: the wheel
//!    orders by `(ready_at, seq)` where `seq` is the canonical
//!    submission index within the work unit (the executor's canonical
//!    merge supplies the `(shard, chunk)` prefix across work units).
//!
//! Simulated time is milliseconds on an `f64` axis chosen by the
//! caller (typically `probe timestamp × 1000 + latency`). The reactor
//! never reads a wall clock — `detlint`'s wall-clock rule covers this
//! file as a hot path.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use telemetry::trace::Span;

/// One scheduled completion: a caller token that becomes ready at a
/// simulated-time instant.
#[derive(Debug)]
struct Event<T> {
    /// Simulated completion instant, in milliseconds.
    ready_at: f64,
    /// Submission sequence number — the tie-break for equal
    /// timestamps. Canonical order, never ready-queue arrival.
    seq: u64,
    token: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Event<T>) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Event<T>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Event<T>) -> Ordering {
        // Reversed on both keys: BinaryHeap is a max-heap, and we want
        // the *earliest* (ready_at, seq) on top. Latencies are finite
        // and non-negative, so `total_cmp` agrees with numeric order.
        other
            .ready_at
            .total_cmp(&self.ready_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A simulated-time event wheel with deterministic tie-breaking.
///
/// `T` is the caller's token — typically an index into a side table of
/// [`netsim::PendingRequest`]s. See the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct Reactor<T> {
    wheel: BinaryHeap<Event<T>>,
    next_seq: u64,
    now_ms: f64,
    peak_in_flight: usize,
    /// Events drained at the current timestamp (the "ready queue"
    /// width of the tick in progress).
    current_tick_width: u64,
    max_tick_width: u64,
    ticks: u64,
    completed: u64,
    /// Per-tick `(time_ms, events)` log, kept only when tick tracing
    /// is enabled — unbounded otherwise.
    tick_log: Option<Vec<(f64, u64)>>,
}

impl<T> Default for Reactor<T> {
    fn default() -> Reactor<T> {
        Reactor::new()
    }
}

impl<T> Reactor<T> {
    /// An empty reactor with simulated time at zero and tick tracing
    /// disabled.
    pub fn new() -> Reactor<T> {
        Reactor {
            wheel: BinaryHeap::new(),
            next_seq: 0,
            now_ms: 0.0,
            peak_in_flight: 0,
            current_tick_width: 0,
            max_tick_width: 0,
            ticks: 0,
            completed: 0,
            tick_log: None,
        }
    }

    /// Enable the per-tick log behind [`Reactor::trace_span`].
    /// Off by default: a campaign-scale run has millions of ticks.
    pub fn with_tick_trace(mut self) -> Reactor<T> {
        self.tick_log = Some(Vec::new());
        self
    }

    /// Schedule `token` to complete at simulated instant `ready_at_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `ready_at_ms` is not finite or lies in the simulated
    /// past — both are determinism bugs in the caller, not recoverable
    /// conditions.
    pub fn submit(&mut self, ready_at_ms: f64, token: T) {
        assert!(
            ready_at_ms.is_finite(),
            "reactor: non-finite completion time {ready_at_ms}"
        );
        assert!(
            ready_at_ms >= self.now_ms,
            "reactor: submission into the simulated past ({ready_at_ms} < {})",
            self.now_ms
        );
        self.wheel.push(Event {
            ready_at: ready_at_ms,
            seq: self.next_seq,
            token,
        });
        self.next_seq += 1;
        self.peak_in_flight = self.peak_in_flight.max(self.wheel.len());
    }

    /// Advance simulated time to the next completion and return
    /// `(now_ms, token)`, or `None` when the wheel is empty.
    ///
    /// Equal-timestamp events come back in submission-sequence order.
    pub fn next_ready(&mut self) -> Option<(f64, T)> {
        let event = self.wheel.pop()?;
        if self.ticks == 0 || event.ready_at > self.now_ms {
            // A new distinct timestamp: close out the previous tick.
            if let Some(log) = &mut self.tick_log {
                if self.current_tick_width > 0 {
                    log.push((self.now_ms, self.current_tick_width));
                }
            }
            self.ticks += 1;
            self.current_tick_width = 0;
        }
        self.now_ms = event.ready_at;
        self.current_tick_width += 1;
        self.max_tick_width = self.max_tick_width.max(self.current_tick_width);
        self.completed += 1;
        Some((event.ready_at, event.token))
    }

    /// Events submitted but not yet drained.
    pub fn in_flight(&self) -> usize {
        self.wheel.len()
    }

    /// High watermark of [`Reactor::in_flight`] over the reactor's
    /// lifetime.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Widest tick so far: the most events drained at one simulated
    /// timestamp (the ready-queue width).
    pub fn max_tick_width(&self) -> u64 {
        self.max_tick_width
    }

    /// Distinct simulated timestamps drained so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total events drained.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Current simulated time in milliseconds (the timestamp of the
    /// most recent completion).
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// An introspection span tree over the per-tick log: one child per
    /// simulated-time tick carrying its event count. Requires
    /// [`Reactor::with_tick_trace`]; returns an empty aggregate
    /// otherwise.
    ///
    /// This span is for humans and tests — it is *not* attached to the
    /// campaign trace, which must stay byte-identical between engines.
    pub fn trace_span(&self, name: &str) -> Span {
        let mut children = Vec::new();
        if let Some(log) = &self.tick_log {
            for (time_ms, events) in log {
                let hour = (*time_ms / 3_600_000.0) as u64;
                children.push(Span::leaf(format!("tick@{time_ms}ms"), hour, hour, *events));
            }
        }
        // The tick in progress (if any) hasn't been flushed to the log.
        if self.tick_log.is_some() && self.current_tick_width > 0 {
            let hour = (self.now_ms / 3_600_000.0) as u64;
            children.push(Span::leaf(
                format!("tick@{}ms", self.now_ms),
                hour,
                hour,
                self.current_tick_width,
            ));
        }
        Span::aggregate(name, children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_come_back_in_time_order() {
        let mut r = Reactor::new();
        r.submit(30.0, "c");
        r.submit(10.0, "a");
        r.submit(20.0, "b");
        assert_eq!(r.in_flight(), 3);
        assert_eq!(r.next_ready(), Some((10.0, "a")));
        assert_eq!(r.next_ready(), Some((20.0, "b")));
        assert_eq!(r.next_ready(), Some((30.0, "c")));
        assert_eq!(r.next_ready(), None);
        assert_eq!(r.completed(), 3);
        assert_eq!(r.peak_in_flight(), 3);
    }

    #[test]
    fn equal_timestamps_tie_break_by_submission_sequence() {
        // The determinism rule: canonical submission order wins at
        // equal simulated timestamps, regardless of heap internals.
        let mut r = Reactor::new();
        for token in 0..100u32 {
            r.submit(5.0, token);
        }
        for expected in 0..100u32 {
            assert_eq!(r.next_ready(), Some((5.0, expected)));
        }
    }

    #[test]
    fn interleaved_submit_and_drain_stays_ordered() {
        let mut r = Reactor::new();
        r.submit(10.0, 1);
        r.submit(50.0, 2);
        assert_eq!(r.next_ready(), Some((10.0, 1)));
        // New submissions may land between pending ones...
        r.submit(30.0, 3);
        r.submit(10.0, 4); // ...or exactly at the current instant.
        assert_eq!(r.next_ready(), Some((10.0, 4)));
        assert_eq!(r.next_ready(), Some((30.0, 3)));
        assert_eq!(r.next_ready(), Some((50.0, 2)));
        assert_eq!(r.now_ms(), 50.0);
    }

    #[test]
    #[should_panic(expected = "simulated past")]
    fn submitting_into_the_past_panics() {
        let mut r = Reactor::new();
        r.submit(10.0, 1);
        r.next_ready();
        r.submit(5.0, 2);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn submitting_nan_panics() {
        let mut r = Reactor::new();
        r.submit(f64::NAN, 1);
    }

    #[test]
    fn ten_thousand_probes_in_flight_at_once() {
        // The scale claim behind the engine: one reactor instance holds
        // ≥ 10,000 concurrently-pending probes and drains them in
        // deterministic order.
        const N: u64 = 12_000;
        let mut r = Reactor::new();
        for i in 0..N {
            // Colliding timestamps on purpose: 40 distinct instants.
            r.submit((i % 40) as f64, i);
        }
        assert!(r.in_flight() >= 10_000, "in flight: {}", r.in_flight());
        assert_eq!(r.peak_in_flight(), N as usize);
        let mut drained = Vec::with_capacity(N as usize);
        while let Some((at, token)) = r.next_ready() {
            drained.push((at, token));
        }
        assert_eq!(drained.len(), N as usize);
        // (time, seq) order: each instant's tokens ascend by submission
        // sequence, instants ascend overall.
        let mut expected: Vec<(f64, u64)> = (0..N).map(|i| ((i % 40) as f64, i)).collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        assert_eq!(drained, expected);
        assert_eq!(r.ticks(), 40);
        assert_eq!(r.max_tick_width(), N / 40);
    }

    #[test]
    fn tick_trace_records_one_leaf_per_instant() {
        let mut r = Reactor::new().with_tick_trace();
        r.submit(1_000.0, 1);
        r.submit(1_000.0, 2);
        r.submit(2_000.0, 3);
        while r.next_ready().is_some() {}
        let span = r.trace_span("reactor");
        let jsonl = span.to_jsonl();
        assert!(jsonl.contains("tick@1000ms"));
        assert!(jsonl.contains("tick@2000ms"));
        assert_eq!(r.ticks(), 2);
        assert_eq!(r.max_tick_width(), 2);

        // Without tick tracing the span is an empty aggregate.
        let mut quiet: Reactor<u32> = Reactor::new();
        quiet.submit(5.0, 9);
        quiet.next_ready();
        assert!(!quiet.trace_span("reactor").to_jsonl().contains("tick@"));
    }
}
