//! The CRL↔OCSP consistency study (§5.4, Table 1, Figure 10).
//!
//! Methodology, as in the paper: download every CRL referenced by the
//! revoked-certificate pool, extract `(serial, revocation time, reason)`
//! triples, then send an OCSP request for every unexpired-and-revoked
//! certificate and compare the two channels on three axes:
//!
//! * **status** — a CRL-revoked serial answering `Good` or `Unknown`
//!   over OCSP is Table 1's finding;
//! * **revocation time** — Figure 10's CDF of `T_ocsp − T_crl`, with
//!   14.7 % of differing times *negative* and a tail past 137 M s;
//! * **reason code** — 15 % differ, 99.99 % of those because the CRL
//!   carries a code and OCSP none.

use crate::executor::Executor;
use crate::reactor::Reactor;
use analysis::{Cdf, StreamingCdf};
use asn1::Time;
use ecosystem::{Engine, LiveEcosystem};
use netsim::{HttpOutcome, PendingRequest, Region, World};
use ocsp::{
    validate_response_cached, CertStatus, OcspRequest, SigVerifyCache, ValidatedResponse,
    ValidationConfig,
};
use opsmon::{Event, EventKind, EventLog, HealthLog, HealthPolicy, HealthReport};
use pki::Crl;
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;
use telemetry::catalog;
use telemetry::trace::Span;
use telemetry::Registry;

/// One Table 1 row: a responder whose OCSP answers disagree with its CRL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscrepantResponder {
    /// OCSP URL.
    pub ocsp_url: String,
    /// CRL URL.
    pub crl_url: String,
    /// CRL-revoked serials answered `Unknown`.
    pub unknown: u64,
    /// CRL-revoked serials answered `Good`.
    pub good: u64,
    /// CRL-revoked serials correctly answered `Revoked`.
    pub revoked: u64,
}

/// The study results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencySummary {
    /// Distinct CRLs fetched and parsed.
    pub crls_fetched: usize,
    /// OCSP responses successfully collected (paper: 99.9 %).
    pub responses_collected: u64,
    /// Requests issued.
    pub requests: u64,
    /// Table 1: responders with status discrepancies.
    pub table1: Vec<DiscrepantResponder>,
    /// All `T_ocsp − T_crl` differences for revoked-on-both-sides
    /// certificates, seconds (Figure 10's sample set) — held as a
    /// streaming count-map, so memory is bounded by the number of
    /// *distinct* differences (a handful of fault-model lags), not the
    /// pool size (DESIGN.md §13).
    pub time_diffs: StreamingCdf,
    /// Revocations whose reason exists in the CRL but not over OCSP.
    pub reason_crl_only: u64,
    /// Revocations whose reasons are present and equal on both sides.
    pub reason_match: u64,
    /// Revocations carrying no reason on either side.
    pub reason_absent: u64,
    /// Any other reason mismatch (paper: ~0.01 % of differing reasons).
    pub reason_other_mismatch: u64,
    /// Study telemetry, merged from the per-operator shards in shard-id
    /// order: CRL fetches, per-responder request counts, and one
    /// `scan.consistency.validate` counter per validation outcome.
    pub telemetry: Registry,
    /// Deterministic self-profile: one `scan.consistency` span over one
    /// operator span per shard. The study probes a single simulated
    /// instant, so every span is a point at that campaign hour, with the
    /// shard's request count as its work units.
    pub trace: Span,
    /// Per-responder health snapshots: every probe outcome (collected
    /// or not) at the study instant, replayed through the [`opsmon`]
    /// state machine in pool order.
    pub health: HealthReport,
    /// The study's event stream: health transitions, outage open/close
    /// pairs, and one revocation event per serial confirmed revoked
    /// over both channels, stamped with the CRL's revocation time.
    pub events: EventLog,
}

impl ConsistencySummary {
    /// Fraction of matched revocations with differing times (paper: 0.15 %).
    pub fn time_diff_fraction(&self) -> f64 {
        let differing: u64 = self
            .time_diffs
            .counts()
            .filter(|&(d, _)| d != 0.0)
            .map(|(_, n)| n)
            .sum();
        differing as f64 / (self.time_diffs.len().max(1)) as f64
    }

    /// Of the differing times, the fraction that are negative
    /// (paper: 14.7 %).
    pub fn negative_diff_fraction(&self) -> f64 {
        let differing: u64 = self
            .time_diffs
            .counts()
            .filter(|&(d, _)| d != 0.0)
            .map(|(_, n)| n)
            .sum();
        if differing == 0 {
            return 0.0;
        }
        let negative: u64 = self
            .time_diffs
            .counts()
            .filter(|&(d, _)| d < 0.0)
            .map(|(_, n)| n)
            .sum();
        negative as f64 / differing as f64
    }

    /// Figure 10: the CDF of nonzero time differences.
    pub fn time_diff_cdf(&self) -> Cdf {
        Cdf::from_samples(
            self.time_diffs
                .counts()
                .filter(|&(d, _)| d != 0.0)
                .flat_map(|(d, n)| std::iter::repeat_n(d, n as usize)),
        )
    }

    /// Fraction of revocations with a reason-code discrepancy.
    pub fn reason_diff_fraction(&self) -> f64 {
        let total = self.reason_crl_only
            + self.reason_match
            + self.reason_absent
            + self.reason_other_mismatch;
        (self.reason_crl_only + self.reason_other_mismatch) as f64 / total.max(1) as f64
    }
}

/// One shard's partial study results (one operator's targets).
struct ShardSummary {
    crls_fetched: usize,
    responses_collected: u64,
    requests: u64,
    rows: Vec<DiscrepantResponder>,
    time_diffs: StreamingCdf,
    reason_crl_only: u64,
    reason_match: u64,
    reason_absent: u64,
    reason_other_mismatch: u64,
    telemetry: Registry,
    health: HealthLog,
    events: EventLog,
}

/// The study driver.
pub struct ConsistencyStudy;

impl ConsistencyStudy {
    /// Run the study at time `at` (the paper ran on May 1st, 2018) from
    /// the given vantage point, with the worker count from the
    /// ecosystem config.
    pub fn run(eco: &LiveEcosystem, at: Time, vantage: Region) -> ConsistencySummary {
        let executor = Executor::new(eco.config.parallelism);
        ConsistencyStudy::run_with(eco, at, vantage, &executor)
    }

    /// Run the study on a specific executor, with the engine from the
    /// ecosystem config.
    ///
    /// Each shard is one *operator*: its CRL endpoint and its responder
    /// URLs are touched by no other shard, and every operator's CRL URL
    /// is distinct, so per-shard CRL deduplication is exactly the global
    /// deduplication and the merged counters equal a serial run's.
    pub fn run_with(
        eco: &LiveEcosystem,
        at: Time,
        vantage: Region,
        executor: &Executor,
    ) -> ConsistencySummary {
        ConsistencyStudy::run_with_engine(eco, at, vantage, executor, eco.config.engine)
    }

    /// [`ConsistencyStudy::run_with`] with an explicit [`Engine`].
    ///
    /// The reactor engine runs each shard in two submit/drain phases —
    /// CRL fetches (in first-occurrence order), then OCSP probes (in
    /// pool order) — and folds the comparisons back in pool order, so
    /// its output is byte-identical to the threads engine's
    /// (DESIGN.md §12).
    pub fn run_with_engine(
        eco: &LiveEcosystem,
        at: Time,
        vantage: Region,
        executor: &Executor,
        engine: Engine,
    ) -> ConsistencySummary {
        let topo = eco.build_topology();

        // Partition the revoked pool by operator, preserving pool order
        // within each shard (the order responder caches see).
        let mut targets_of: Vec<Vec<usize>> = vec![Vec::new(); eco.operators.len()];
        for (idx, target) in eco.revoked.iter().enumerate() {
            targets_of[target.operator].push(idx);
        }
        let targets_of = &targets_of;
        let topo = &topo;

        // The study draws no randomness of its own; the shard RNG is
        // part of the executor contract but unused here. One chunk per
        // operator: a single probe instant gives time slicing nothing
        // to cut, so the chunked API is used in its degenerate
        // (RNG-compatible) form.
        let chunk_counts = vec![1usize; eco.operators.len()];
        // The single probe instant, as a simulated campaign hour.
        let study_hour = ((at - eco.config.campaign_start).max(0) / 3_600) as u64;
        let (shards, shard_spans) = executor.run_chunked_traced(
            eco.config.seed,
            &chunk_counts,
            |shard| eco.operators[shard].name.clone(),
            |shard, _chunk, _rng| {
                let mut world = World::from_topology(topo.clone());
                // Memoized signature verification for this operator's
                // responders — repeated bodies (shared windows, load
                // balancing) verify once.
                let mut sigcache = SigVerifyCache::new();

                // Parse one fetched CRL body, counting the outcome. Runs
                // at completion time under the reactor — safe, because
                // counter sums are completion-order-insensitive.
                let parse_crl = |world: &mut World, outcome: HttpOutcome| -> Option<Crl> {
                    match outcome {
                        HttpOutcome::Ok(body) => {
                            let parsed = Crl::from_der(&body).ok();
                            let label = if parsed.is_some() {
                                "ok"
                            } else {
                                "unparseable"
                            };
                            world
                                .telemetry_mut()
                                .incr(catalog::SCAN_CONSISTENCY_CRL_FETCH, label);
                            parsed
                        }
                        _ => {
                            world
                                .telemetry_mut()
                                .incr(catalog::SCAN_CONSISTENCY_CRL_FETCH, "unreachable");
                            None
                        }
                    }
                };

                // Step 1: fetch and parse this operator's CRLs once each.
                let mut crls: HashMap<String, Option<Crl>> = HashMap::new();
                match engine {
                    Engine::Threads => {
                        for &idx in &targets_of[shard] {
                            let target = &eco.revoked[idx];
                            if !crls.contains_key(&target.crl_url) {
                                let outcome =
                                    world.http_post(vantage, &target.crl_url, b"", at).outcome;
                                let parsed = parse_crl(&mut world, outcome);
                                crls.insert(target.crl_url.clone(), parsed);
                            }
                        }
                    }
                    Engine::Reactor => {
                        // Submit every distinct CRL fetch in
                        // first-occurrence order, then drain. The study
                        // probes one instant, so the event axis is just
                        // each fetch's latency.
                        let mut reactor = Reactor::new();
                        let mut order: Vec<String> = Vec::new();
                        let mut crl_requests: HashMap<String, Option<PendingRequest>> =
                            HashMap::new();
                        for &idx in &targets_of[shard] {
                            let target = &eco.revoked[idx];
                            if !crl_requests.contains_key(&target.crl_url) {
                                let request =
                                    world.start_request(vantage, &target.crl_url, b"", at);
                                reactor.submit(request.latency_ms(), order.len());
                                crl_requests.insert(target.crl_url.clone(), Some(request));
                                order.push(target.crl_url.clone());
                            }
                        }
                        while let Some((_, token)) = reactor.next_ready() {
                            let url = &order[token];
                            let mut request = crl_requests
                                .get_mut(url)
                                .and_then(Option::take)
                                .expect("each CRL fetch drains once");
                            let latency_ms = request.latency_ms();
                            let outcome = world
                                .poll_response(&mut request, latency_ms)
                                .expect("the wheel only releases completed requests")
                                .outcome;
                            let parsed = parse_crl(&mut world, outcome);
                            crls.insert(url.clone(), parsed);
                        }
                        world.telemetry_mut().set_gauge(
                            catalog::SCAN_CONSISTENCY_REACTOR_CRL_DEPTH,
                            reactor.peak_in_flight() as u64,
                        );
                    }
                }

                let mut partial = ShardSummary {
                    // detlint::allow(unordered-iter): a count over all values is order-insensitive
                    crls_fetched: crls.values().filter(|c| c.is_some()).count(),
                    responses_collected: 0,
                    requests: 0,
                    rows: Vec::new(),
                    time_diffs: StreamingCdf::new(),
                    reason_crl_only: 0,
                    reason_match: 0,
                    reason_absent: 0,
                    reason_other_mismatch: 0,
                    telemetry: Registry::new(),
                    health: HealthLog::new(),
                    events: EventLog::new(),
                };
                // BTreeMap, not HashMap: `into_values` feeds `partial.rows`,
                // so the iteration order is artifact-relevant — keyed by URL
                // it yields rows in a deterministic (sorted) order.
                let mut per_responder: BTreeMap<String, DiscrepantResponder> = BTreeMap::new();

                // Fold one validated OCSP answer into the comparison
                // accumulators. Shared by both engines and always called
                // in pool order, so Table 1 rows and the Figure 10
                // sample order never depend on the engine.
                let fold_comparison =
                    |partial: &mut ShardSummary,
                     per_responder: &mut BTreeMap<String, DiscrepantResponder>,
                     idx: usize,
                     validated: &ValidatedResponse| {
                        let target = &eco.revoked[idx];
                        let crl = crls
                            .get(&target.crl_url)
                            .and_then(Option::as_ref)
                            .expect("only probed with a parsed CRL");
                        let crl_entry = crl
                            .find(&target.serial)
                            .expect("only probed when the CRL lists the serial");
                        let row = per_responder.entry(target.url.clone()).or_insert_with(|| {
                            DiscrepantResponder {
                                ocsp_url: target.url.clone(),
                                crl_url: target.crl_url.clone(),
                                unknown: 0,
                                good: 0,
                                revoked: 0,
                            }
                        });
                        match validated.status {
                            CertStatus::Good => row.good += 1,
                            CertStatus::Unknown => row.unknown += 1,
                            CertStatus::Revoked { time, reason } => {
                                row.revoked += 1;
                                // One bus event per serial revoked on both
                                // channels, stamped with the CRL's time —
                                // the channel the paper treats as ground
                                // truth for Figure 10.
                                partial.events.push(Event::new(
                                    crl_entry.revocation_time,
                                    EventKind::Revocation,
                                    &target.url,
                                    &format!("serial {}", target.serial),
                                ));
                                // i64 seconds are exact in f64 far past any
                                // campaign-scale difference (< 2^53).
                                partial
                                    .time_diffs
                                    .add((time - crl_entry.revocation_time) as f64);
                                match (crl_entry.reason, reason) {
                                    (None, None) => partial.reason_absent += 1,
                                    (Some(a), Some(b)) if a == b => partial.reason_match += 1,
                                    (Some(_), None) => partial.reason_crl_only += 1,
                                    _ => partial.reason_other_mismatch += 1,
                                }
                            }
                        }
                    };

                // Step 2: OCSP for every revoked target; compare.
                match engine {
                    Engine::Threads => {
                        for &idx in &targets_of[shard] {
                            let target = &eco.revoked[idx];
                            let Some(Some(crl)) = crls.get(&target.crl_url) else {
                                continue;
                            };
                            if crl.find(&target.serial).is_none() {
                                continue;
                            }

                            partial.requests += 1;
                            world
                                .telemetry_mut()
                                .incr(catalog::SCAN_CONSISTENCY_PROBES, &target.url);
                            let req = OcspRequest::single(target.cert_id.clone()).to_der();
                            let outcome = world.http_post(vantage, &target.url, &req, at).outcome;
                            partial.health.record(
                                &target.url,
                                at,
                                matches!(outcome, HttpOutcome::Ok(_)),
                            );
                            let HttpOutcome::Ok(body) = outcome else {
                                continue;
                            };
                            // "Collected" means an HTTP response arrived (the
                            // paper's 99.9 %); unusable bodies are then
                            // excluded from comparison.
                            partial.responses_collected += 1;
                            let issuer = eco.issuer_of(target.operator);
                            let Ok(validated) = validate_response_cached(
                                world.telemetry_mut(),
                                catalog::SCAN_CONSISTENCY_VALIDATE,
                                &mut sigcache,
                                &body,
                                &target.cert_id,
                                issuer,
                                at,
                                ValidationConfig::default(),
                            ) else {
                                continue;
                            };
                            fold_comparison(&mut partial, &mut per_responder, idx, &validated);
                        }
                    }
                    Engine::Reactor => {
                        // Submit every eligible probe in pool order —
                        // all request/probe accounting happens here, at
                        // submission time.
                        let mut reactor = Reactor::new();
                        let mut pending: Vec<(usize, Option<PendingRequest>)> = Vec::new();
                        for &idx in &targets_of[shard] {
                            let target = &eco.revoked[idx];
                            let Some(Some(crl)) = crls.get(&target.crl_url) else {
                                continue;
                            };
                            if crl.find(&target.serial).is_none() {
                                continue;
                            }
                            partial.requests += 1;
                            world
                                .telemetry_mut()
                                .incr(catalog::SCAN_CONSISTENCY_PROBES, &target.url);
                            let req = OcspRequest::single(target.cert_id.clone()).to_der();
                            let request = world.start_request(vantage, &target.url, &req, at);
                            reactor.submit(request.latency_ms(), pending.len());
                            pending.push((idx, Some(request)));
                        }
                        // Drain: validate at completion (counter sums and
                        // the signature memo are order-insensitive),
                        // remembering `(collected, validated)` per token.
                        let mut results: Vec<Option<(bool, Option<ValidatedResponse>)>> =
                            (0..pending.len()).map(|_| None).collect();
                        while let Some((_, token)) = reactor.next_ready() {
                            let idx = pending[token].0;
                            let target = &eco.revoked[idx];
                            let mut request =
                                pending[token].1.take().expect("each token drains once");
                            let latency_ms = request.latency_ms();
                            let outcome = world
                                .poll_response(&mut request, latency_ms)
                                .expect("the wheel only releases completed requests")
                                .outcome;
                            results[token] = Some(match outcome {
                                HttpOutcome::Ok(body) => {
                                    let issuer = eco.issuer_of(target.operator);
                                    let validated = validate_response_cached(
                                        world.telemetry_mut(),
                                        catalog::SCAN_CONSISTENCY_VALIDATE,
                                        &mut sigcache,
                                        &body,
                                        &target.cert_id,
                                        issuer,
                                        at,
                                        ValidationConfig::default(),
                                    )
                                    .ok();
                                    (true, validated)
                                }
                                _ => (false, None),
                            });
                        }
                        // Fold in pool (submission) order — health
                        // observations included, so the reactor's log
                        // matches the threads engine's byte-for-byte.
                        for (token, &(idx, _)) in pending.iter().enumerate() {
                            let (collected, validated) =
                                results[token].take().expect("every probe classified");
                            partial.health.record(&eco.revoked[idx].url, at, collected);
                            if collected {
                                partial.responses_collected += 1;
                            }
                            if let Some(validated) = validated {
                                fold_comparison(&mut partial, &mut per_responder, idx, &validated);
                            }
                        }
                        world.telemetry_mut().set_gauge(
                            catalog::SCAN_CONSISTENCY_REACTOR_DEPTH,
                            reactor.peak_in_flight() as u64,
                        );
                    }
                }

                partial.rows = per_responder
                    .into_values()
                    .filter(|row| row.unknown + row.good > 0)
                    .collect();
                partial.telemetry = world.take_telemetry();
                let span = Span::leaf("chunk 0", study_hour, study_hour, partial.requests);
                (partial, span)
            },
        );

        // Canonical merge in shard-id (operator) order; Table 1 gets a
        // final global sort, so intra-shard row order is irrelevant.
        let mut summary = ConsistencySummary {
            crls_fetched: 0,
            responses_collected: 0,
            requests: 0,
            table1: Vec::new(),
            time_diffs: StreamingCdf::new(),
            reason_crl_only: 0,
            reason_match: 0,
            reason_absent: 0,
            reason_other_mismatch: 0,
            telemetry: Registry::new(),
            trace: Span::aggregate("scan.consistency", shard_spans),
            health: HealthReport::default(),
            events: EventLog::new(),
        };
        // detlint::allow(wall-clock): merge wall timing feeds a telemetry span, which is excluded from artifact equality
        let merge_started = Instant::now();
        let mut health_log = HealthLog::new();
        for partial in shards.into_iter().flatten() {
            summary.crls_fetched += partial.crls_fetched;
            summary.responses_collected += partial.responses_collected;
            summary.requests += partial.requests;
            summary.table1.extend(partial.rows);
            summary.time_diffs.merge(&partial.time_diffs);
            summary.reason_crl_only += partial.reason_crl_only;
            summary.reason_match += partial.reason_match;
            summary.reason_absent += partial.reason_absent;
            summary.reason_other_mismatch += partial.reason_other_mismatch;
            summary.telemetry.merge(&partial.telemetry);
            health_log.merge(partial.health);
            summary.events.merge(partial.events);
        }
        summary.health = health_log.replay(&HealthPolicy::default(), &mut summary.events);
        summary.health.export(&mut summary.telemetry);
        summary.telemetry.record_wall(
            catalog::SCAN_CONSISTENCY_MERGE,
            merge_started.elapsed().as_nanos(),
        );
        summary.table1.sort_by(|a, b| a.ocsp_url.cmp(&b.ocsp_url));
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosystem::EcosystemConfig;

    fn summary() -> ConsistencySummary {
        let mut config = EcosystemConfig::tiny();
        config.responders = 92; // include all named (fault-scripted) operators
        config.revoked_pool = 400;
        let eco = LiveEcosystem::generate(config);
        ConsistencyStudy::run(
            &eco,
            Time::from_civil(2018, 5, 1, 0, 0, 0),
            Region::Virginia,
        )
    }

    #[test]
    fn nearly_all_responses_collected() {
        let s = summary();
        assert!(s.requests > 0);
        let rate = s.responses_collected as f64 / s.requests as f64;
        assert!(rate > 0.9, "collection rate {rate}");
        assert!(s.crls_fetched > 10);
    }

    #[test]
    fn table1_contains_good_and_unknown_rows() {
        let s = summary();
        assert!(!s.table1.is_empty(), "discrepant responders expected");
        let has_good = s.table1.iter().any(|r| r.good > 0);
        let has_unknown_for_all = s
            .table1
            .iter()
            .any(|r| r.unknown > 0 && r.revoked == 0 && r.good == 0);
        assert!(has_good, "a GoodForSome responder should appear");
        assert!(
            has_unknown_for_all,
            "an UnknownForAll responder should appear"
        );
    }

    #[test]
    fn time_diffs_mostly_zero_with_a_tail() {
        let s = summary();
        assert!(!s.time_diffs.is_empty());
        let f = s.time_diff_fraction();
        // msocsp's lag makes this a bit higher than the paper's global
        // 0.15 % at tiny scale; the shape requirement is "small".
        assert!(f < 0.2, "diff fraction {f}");
        // The msocsp lag is present: some positive diffs of >= 7 hours.
        assert!(
            s.time_diffs.max().is_some_and(|d| d >= (7 * 3_600) as f64),
            "expected msocsp-style lag"
        );
    }

    #[test]
    fn parallel_run_equals_serial_run_exactly() {
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        let at = Time::from_civil(2018, 5, 1, 0, 0, 0);
        let serial = ConsistencyStudy::run_with(&eco, at, Region::Virginia, &Executor::serial());
        for workers in [2usize, 5] {
            let executor = Executor::new(std::num::NonZeroUsize::new(workers));
            let parallel = ConsistencyStudy::run_with(&eco, at, Region::Virginia, &executor);
            assert_eq!(serial, parallel, "workers={workers}");
            assert_eq!(
                serial.telemetry.to_csv(),
                parallel.telemetry.to_csv(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn reactor_engine_matches_threads_engine_byte_for_byte() {
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        let at = Time::from_civil(2018, 5, 1, 0, 0, 0);
        let threads = ConsistencyStudy::run_with_engine(
            &eco,
            at,
            Region::Virginia,
            &Executor::serial(),
            Engine::Threads,
        );
        for workers in [1usize, 2, 4] {
            let executor = Executor::new(std::num::NonZeroUsize::new(workers));
            let reactor = ConsistencyStudy::run_with_engine(
                &eco,
                at,
                Region::Virginia,
                &executor,
                Engine::Reactor,
            );
            // ConsistencySummary's PartialEq covers every artifact field;
            // telemetry equality ignores gauges, which are the only
            // engine-dependent output.
            assert_eq!(threads, reactor, "workers={workers}");
            assert_eq!(
                threads.telemetry.to_csv(),
                reactor.telemetry.to_csv(),
                "workers={workers}"
            );
            assert_eq!(
                threads.telemetry.to_prometheus(),
                reactor.telemetry.to_prometheus(),
                "workers={workers}"
            );
            assert_eq!(
                threads.trace.to_jsonl(),
                reactor.trace.to_jsonl(),
                "workers={workers}"
            );
            assert!(
                reactor.telemetry.gauge("scan.consistency.reactor.depth") > Some(0),
                "the reactor engine should report its probe depth"
            );
        }
    }

    #[test]
    fn table1_row_order_is_deterministic_and_sorted() {
        // Regression: `per_responder` was once a HashMap, so intra-shard
        // row order leaked hash order into Table 1 until the final sort.
        // With the BTreeMap the rows are sorted (and thus repeatable) at
        // every stage.
        let a = summary();
        let b = summary();
        assert_eq!(a.table1, b.table1);
        let urls: Vec<&str> = a.table1.iter().map(|r| r.ocsp_url.as_str()).collect();
        let mut sorted = urls.clone();
        sorted.sort();
        assert_eq!(urls, sorted, "Table 1 rows must come out sorted by URL");
    }

    #[test]
    fn telemetry_counts_match_summary_totals() {
        let s = summary();
        assert_eq!(
            s.telemetry.counter_total("scan.consistency.probes"),
            s.requests
        );
        assert_eq!(
            s.telemetry.counter("scan.consistency.crl_fetch", "ok"),
            s.crls_fetched as u64
        );
        // Every collected response is validated exactly once (ok or err).
        assert_eq!(
            s.telemetry.counter_total("scan.consistency.validate"),
            s.responses_collected
        );
    }

    #[test]
    fn reason_discrepancies_are_crl_only() {
        let s = summary();
        assert!(s.reason_crl_only > 0, "CRL-only reasons expected");
        assert_eq!(
            s.reason_other_mismatch, 0,
            "no cross-coded reasons in the model"
        );
        let f = s.reason_diff_fraction();
        assert!((0.05..0.3).contains(&f), "reason diff fraction {f}");
    }
}
