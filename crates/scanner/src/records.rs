//! Probe outcome classification.

use netsim::HttpOutcome;
use ocsp::{ResponseError, ValidatedResponse};

/// The §5.3 error taxonomy for responses that arrived over HTTP 200 but
/// cannot be used (Figure 5's three curves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorClass {
    /// Not parseable ASN.1 ("ASN.1 Unparseable" in Figure 5).
    Asn1Unparseable,
    /// Parsed, but no entry matches the requested serial ("SerialUnmatch").
    SerialUnmatch,
    /// Parsed and matched, but the signature fails ("Signature").
    Signature,
}

impl ErrorClass {
    /// Figure 5 legend label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::Asn1Unparseable => "ASN.1 Unparseable",
            ErrorClass::SerialUnmatch => "SerialUnmatch",
            ErrorClass::Signature => "Signature",
        }
    }

    /// All classes, in the figure's legend order.
    pub const ALL: [ErrorClass; 3] = [
        ErrorClass::Asn1Unparseable,
        ErrorClass::SerialUnmatch,
        ErrorClass::Signature,
    ];
}

/// The complete classification of one probe.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOutcome {
    /// HTTP 200 and a fully valid OCSP response.
    Valid(ValidatedResponse),
    /// HTTP 200 but the body is unusable (Figure 5).
    Unusable(ErrorClass),
    /// HTTP 200, parseable, but an OCSP error status or a time-window
    /// failure (counted as "successful request" by §5.2's HTTP-200
    /// criterion, but not a usable answer).
    OtherInvalid(ResponseError),
    /// The HTTP request itself failed (§5.2's unsuccessful requests).
    TransportFailure(HttpOutcome),
}

impl ProbeOutcome {
    /// §5.2's "successful request": the server answered HTTP 200.
    pub fn http_success(&self) -> bool {
        !matches!(self, ProbeOutcome::TransportFailure(_))
    }

    /// Whether the response is fully usable by a client.
    pub fn usable(&self) -> bool {
        matches!(self, ProbeOutcome::Valid(_))
    }

    /// The Figure 5 class, if any.
    pub fn error_class(&self) -> Option<ErrorClass> {
        match self {
            ProbeOutcome::Unusable(class) => Some(*class),
            _ => None,
        }
    }
}

/// Map a validation error into the probe classification.
pub fn classify_validation_error(err: ResponseError) -> ProbeOutcome {
    match err {
        ResponseError::MalformedStructure => ProbeOutcome::Unusable(ErrorClass::Asn1Unparseable),
        ResponseError::SerialMismatch => ProbeOutcome::Unusable(ErrorClass::SerialUnmatch),
        ResponseError::SignatureInvalid | ResponseError::UntrustedDelegate => {
            ProbeOutcome::Unusable(ErrorClass::Signature)
        }
        other => ProbeOutcome::OtherInvalid(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_mapping() {
        assert_eq!(
            classify_validation_error(ResponseError::MalformedStructure).error_class(),
            Some(ErrorClass::Asn1Unparseable)
        );
        assert_eq!(
            classify_validation_error(ResponseError::SerialMismatch).error_class(),
            Some(ErrorClass::SerialUnmatch)
        );
        assert_eq!(
            classify_validation_error(ResponseError::SignatureInvalid).error_class(),
            Some(ErrorClass::Signature)
        );
        assert_eq!(
            classify_validation_error(ResponseError::Expired { late_by: 5 }).error_class(),
            None
        );
    }

    #[test]
    fn http_success_criterion() {
        let transport = ProbeOutcome::TransportFailure(HttpOutcome::DnsFailure);
        assert!(!transport.http_success());
        assert!(!transport.usable());
        let unusable = ProbeOutcome::Unusable(ErrorClass::Signature);
        assert!(unusable.http_success());
        assert!(!unusable.usable());
    }

    #[test]
    fn labels() {
        assert_eq!(ErrorClass::ALL.len(), 3);
        assert_eq!(ErrorClass::Asn1Unparseable.label(), "ASN.1 Unparseable");
    }
}
