//! The measurement pipelines of the study.
//!
//! Four campaigns, one module each, mirroring §5's methodology:
//!
//! * [`hourly`] — the **Hourly dataset**: every scan round, every vantage
//!   point POSTs an OCSP request for every tracked certificate to its
//!   responder, classifying the result with the full §5.2/§5.3 taxonomy
//!   and accumulating the per-responder quality metrics behind
//!   Figures 3, 5, 6, 7, 8, 9 and the §5.4 freshness analysis;
//! * [`alexa1m`] — the **Alexa1M scan**: maps popular domains to their
//!   responders and measures how many domains lose revocation checking
//!   during outages (Figure 4);
//! * [`consistency`] — the **CRL↔OCSP consistency study**: downloads
//!   CRLs, replays the revoked pool against OCSP, and reports status,
//!   revocation-time, and reason-code discrepancies (Table 1,
//!   Figure 10);
//! * [`cdnlog`] — the **CDN perspective**: replays traffic through a
//!   caching CDN edge and reports origin-contact rarity and success
//!   (§5.2's Akamai-log observation).
//!
//! All campaigns run on [`executor`] — a sharded, deterministic thread
//! executor whose output is byte-identical for every worker count.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod alexa1m;
pub mod cdnlog;
pub mod consistency;
pub mod executor;
pub mod hourly;
pub mod reactor;
pub mod records;

pub use alexa1m::{Alexa1mScan, Alexa1mSummary};
pub use cdnlog::{CdnStudy, CdnSummary};
pub use consistency::{ConsistencyStudy, ConsistencySummary};
pub use executor::{seed_for_shard, Executor};
pub use hourly::{HourlyCampaign, HourlyDataset, ResponderReport};
pub use reactor::Reactor;
pub use records::{ErrorClass, ProbeOutcome};
