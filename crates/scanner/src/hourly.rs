//! The Hourly dataset campaign (§5.1–§5.4).
//!
//! Every scan round, each of the six vantage points POSTs an OCSP
//! request for every tracked certificate to its responder. Results are
//! aggregated streaming (the paper's campaign made ~84 M probes; even
//! scaled down, storing raw records would be wasteful):
//!
//! * per-region success time series → Figure 3;
//! * per-class unusable-response time series → Figure 5;
//! * per-responder quality accumulators → Figures 6–9;
//! * per-responder `producedAt` samples → the §5.4 freshness analysis
//!   (on-demand vs pre-generated, non-overlapping windows, multi-
//!   instance `producedAt` regressions).

use crate::executor::Executor;
use crate::reactor::Reactor;
use crate::records::{classify_validation_error, ErrorClass, ProbeOutcome};
use analysis::{Cdf, TimeSeries};
use asn1::Time;
use ecosystem::LiveEcosystem;
use netsim::{HttpOutcome, PendingRequest, Region, Topology, World};
use ocsp::profile::GenerationMode;
use ocsp::{validate_response_cached, OcspRequest, SigVerifyCache, ValidationConfig};
use opsmon::{Event, EventKind, EventLog, HealthLog, HealthPolicy, HealthReport, Notifier};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;
use telemetry::catalog;
use telemetry::trace::Span;
use telemetry::Registry;

/// Per-responder accumulators.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponderReport {
    /// Responder URL.
    pub url: String,
    /// Operator display name.
    pub operator: String,
    /// Requests attempted per region (indexed like `Region::VANTAGE_POINTS`).
    pub attempts: [u64; 6],
    /// HTTP-successful requests per region.
    pub successes: [u64; 6],
    /// Fully valid responses.
    pub valid: u64,
    /// Unusable responses by class.
    pub unusable: BTreeMap<ErrorClass, u64>,
    /// Parseable-but-invalid (error status / expired / not yet valid).
    pub other_invalid: u64,
    /// Sum and count of certificates per response.
    pub cert_count_sum: u64,
    /// Number of valid responses contributing to the sums.
    pub quality_samples: u64,
    /// Sum of serials per response.
    pub serial_count_sum: u64,
    /// Sum of finite validity periods (seconds).
    pub validity_sum: i64,
    /// Valid responses with a finite validity period.
    pub validity_samples: u64,
    /// Valid responses with a blank `nextUpdate`.
    pub blank_next_update: u64,
    /// Sum of `thisUpdate` margins (receive − thisUpdate, seconds).
    pub margin_sum: i64,
    /// Freshness accumulator fed by the Virginia client's
    /// `(probe_time, produced_at)` samples — stale/sample counts, the
    /// regression flag, and the distinct-`producedAt` set, folded
    /// per-probe instead of retaining the raw sample vector
    /// (DESIGN.md §13).
    pub freshness: FreshnessAccumulator,
    /// Current consecutive-failure streak per region (scan rounds).
    pub failure_streak: [u32; 6],
    /// Longest observed failure streak per region (scan rounds) — the
    /// §8 outage-duration argument: most outages are far shorter than
    /// most validity periods, so prefetching servers ride them out.
    pub max_failure_streak: [u32; 6],
    /// Every *closed* failure streak per region (scan rounds), in the
    /// order observed. A streak closes when a success follows failures;
    /// streaks still open at campaign end are persistent failures, not
    /// transient outages, and never appear here.
    pub closed_streaks: [Vec<u32>; 6],
}

impl ResponderReport {
    fn new(url: &str, operator: &str) -> ResponderReport {
        ResponderReport {
            url: url.to_string(),
            operator: operator.to_string(),
            attempts: [0; 6],
            successes: [0; 6],
            valid: 0,
            unusable: BTreeMap::new(),
            other_invalid: 0,
            cert_count_sum: 0,
            quality_samples: 0,
            serial_count_sum: 0,
            validity_sum: 0,
            validity_samples: 0,
            blank_next_update: 0,
            margin_sum: 0,
            freshness: FreshnessAccumulator::new(),
            failure_streak: [0; 6],
            max_failure_streak: [0; 6],
            closed_streaks: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// Average certificates per response (Figure 6 sample).
    pub fn avg_cert_count(&self) -> Option<f64> {
        (self.quality_samples > 0).then(|| self.cert_count_sum as f64 / self.quality_samples as f64)
    }

    /// Average serials per response (Figure 7 sample).
    pub fn avg_serial_count(&self) -> Option<f64> {
        (self.quality_samples > 0)
            .then(|| self.serial_count_sum as f64 / self.quality_samples as f64)
    }

    /// Average validity period; `None` if no valid responses,
    /// `Some(None)` means "blank `nextUpdate` dominates" (∞ in Figure 8).
    pub fn avg_validity(&self) -> Option<Option<f64>> {
        if self.valid == 0 {
            return None;
        }
        if self.blank_next_update > self.validity_samples {
            return Some(None);
        }
        (self.validity_samples > 0)
            .then(|| Some(self.validity_sum as f64 / self.validity_samples as f64))
    }

    /// Average `thisUpdate` margin (Figure 9 sample).
    pub fn avg_margin(&self) -> Option<f64> {
        (self.valid + self.other_invalid > 0 && self.quality_samples > 0)
            .then(|| self.margin_sum as f64 / self.quality_samples as f64)
    }

    /// Whether this responder never returned an HTTP success from
    /// `region_idx`.
    pub fn never_succeeded_from(&self, region_idx: usize) -> bool {
        self.attempts[region_idx] > 0 && self.successes[region_idx] == 0
    }

    /// Whether the responder had at least one *transient* outage seen
    /// from some region: a failure after a success, followed by another
    /// success, is approximated here as "some but not all requests
    /// failed from a region that generally works".
    pub fn had_transient_outage(&self) -> bool {
        (0..6).any(|r| self.successes[r] > 0 && self.successes[r] < self.attempts[r])
    }
}

/// The freshness classification of §5.4.
#[derive(Debug, Clone, Default)]
pub struct FreshnessReport {
    /// Responders generating per-request (producedAt tracks receipt).
    pub on_demand: usize,
    /// Responders serving pre-generated responses.
    pub pre_generated: usize,
    /// Pre-generated responders whose validity ≤ refresh period (the
    /// non-overlap hazard; paper: 7).
    pub non_overlapping: Vec<String>,
    /// Responders whose `producedAt` went backwards between consecutive
    /// scans (footnote 17's multi-instance artifact).
    pub produced_at_regressions: Vec<String>,
}

/// The aggregated campaign results.
pub struct HourlyDataset {
    /// Scan rounds executed.
    pub rounds: usize,
    /// Total probes sent.
    pub requests: u64,
    /// Per-region HTTP-success time series (Figure 3).
    pub per_region_success: Vec<(Region, TimeSeries)>,
    /// Per-class unusable-response time series (Figure 5).
    pub class_series: Vec<(ErrorClass, TimeSeries)>,
    /// Per-responder reports.
    pub responders: Vec<ResponderReport>,
    /// Per-region series of Alexa domains whose responder was down
    /// (Figure 4); counts are domain-weighted.
    pub alexa_unreachable: Vec<(Region, TimeSeries)>,
    /// Alexa domains depending on each responder.
    pub alexa_weights: Vec<usize>,
    /// Campaign telemetry: per-responder probe/round counters, the
    /// `scan.hourly.validate` error-taxonomy counters, and everything
    /// the per-shard worlds recorded (net failures, responder faults),
    /// merged in canonical shard order.
    pub telemetry: Registry,
    /// Deterministic self-profile: one `scan.hourly` span over one
    /// responder span per shard over one span per time chunk, stamped
    /// with simulated campaign hours (see [`telemetry::trace`]).
    pub trace: Span,
    /// Per-responder health-state timelines, replayed from the stitched
    /// first-target probe logs through the [`opsmon`] state machine in
    /// canonical (responder, round, region) order — byte-stable across
    /// worker counts, engines, and chunkings like every other field.
    pub health: HealthReport,
    /// The campaign's operational event stream: health transitions,
    /// outage open/close pairs, and pre-generation window rollovers,
    /// all stamped with simulated-clock instants (see
    /// [`opsmon::EventLog`]).
    pub events: EventLog,
}

impl HourlyDataset {
    /// Overall fraction of failed requests (paper: 1.7 % average).
    pub fn overall_failure_rate(&self) -> f64 {
        let mut attempts = 0u64;
        let mut successes = 0u64;
        for r in &self.responders {
            attempts += r.attempts.iter().sum::<u64>();
            successes += r.successes.iter().sum::<u64>();
        }
        1.0 - successes as f64 / attempts.max(1) as f64
    }

    /// Failure rate from one vantage point.
    pub fn region_failure_rate(&self, region: Region) -> f64 {
        let idx = region_index(region);
        let mut attempts = 0u64;
        let mut successes = 0u64;
        for r in &self.responders {
            attempts += r.attempts[idx];
            successes += r.successes[idx];
        }
        1.0 - successes as f64 / attempts.max(1) as f64
    }

    /// Responders never reachable from *any* vantage point (paper: 2).
    pub fn responders_never_reachable(&self) -> usize {
        self.responders
            .iter()
            .filter(|r| (0..6).all(|i| r.never_succeeded_from(i)))
            .count()
    }

    /// Responders with ≥1 vantage point that never succeeded while
    /// others did (paper: 29 more).
    pub fn responders_partially_dead(&self) -> usize {
        self.responders
            .iter()
            .filter(|r| {
                let dead = (0..6).filter(|&i| r.never_succeeded_from(i)).count();
                (1..6).contains(&dead)
            })
            .count()
    }

    /// Fraction of responders with at least one transient outage
    /// (paper: 36.8 %).
    pub fn transient_outage_fraction(&self) -> f64 {
        let n = self.responders.len().max(1);
        self.responders
            .iter()
            .filter(|r| r.had_transient_outage())
            .count() as f64
            / n as f64
    }

    /// Figure 6: CDF of average certificates per response.
    pub fn cdf_cert_counts(&self) -> Cdf {
        Cdf::from_samples(
            self.responders
                .iter()
                .filter_map(ResponderReport::avg_cert_count),
        )
    }

    /// Figure 7: CDF of average serials per response.
    pub fn cdf_serial_counts(&self) -> Cdf {
        Cdf::from_samples(
            self.responders
                .iter()
                .filter_map(ResponderReport::avg_serial_count),
        )
    }

    /// Figure 8: CDF of average validity periods; blank `nextUpdate`
    /// responders contribute +∞ mass.
    pub fn cdf_validity(&self) -> Cdf {
        let mut cdf = Cdf::new();
        for r in &self.responders {
            match r.avg_validity() {
                Some(Some(v)) => cdf.add(v),
                Some(None) => cdf.add_infinite(),
                None => {}
            }
        }
        cdf
    }

    /// Figure 9: CDF of average `thisUpdate` margins (receive − thisUpdate).
    pub fn cdf_margins(&self) -> Cdf {
        Cdf::from_samples(
            self.responders
                .iter()
                .filter_map(ResponderReport::avg_margin),
        )
    }

    /// Fraction of responders whose average margin is (effectively) zero
    /// or negative — Figure 9's headline 17.2 % + 3 %.
    pub fn zero_margin_fraction(&self) -> f64 {
        let samples: Vec<f64> = self
            .responders
            .iter()
            .filter_map(ResponderReport::avg_margin)
            .collect();
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().filter(|&&m| m <= 1.0).count() as f64 / samples.len() as f64
    }

    /// CDF of every observed finite outage per (responder, region), in
    /// seconds — all *closed* failure streaks, not just the longest one,
    /// so short repeated outages carry their full weight. Streaks still
    /// open at campaign end are persistent failures and excluded. The §8
    /// argument compares this against the validity CDF: "most failures
    /// persist far shorter than most OCSP responses' validity periods".
    pub fn cdf_outage_durations(&self, scan_interval: i64) -> Cdf {
        let mut cdf = Cdf::new();
        for r in &self.responders {
            for region in 0..6 {
                for &streak in &r.closed_streaks[region] {
                    cdf.add((streak as i64 * scan_interval) as f64);
                }
            }
        }
        cdf
    }

    /// The §5.4 freshness classification.
    pub fn freshness(&self) -> FreshnessReport {
        let mut report = FreshnessReport::default();
        for r in &self.responders {
            if r.freshness.samples() < 2 {
                continue;
            }
            if !r.freshness.is_pre_generated() {
                report.on_demand += 1;
                continue;
            }
            report.pre_generated += 1;

            // Regressions (footnote 17): producedAt going backwards.
            if r.freshness.has_regression() {
                report.produced_at_regressions.push(r.url.clone());
            }
            if let (Some(refresh), Some(Some(validity))) =
                (r.freshness.min_refresh_gap(), r.avg_validity())
            {
                if validity as i64 <= refresh {
                    report.non_overlapping.push(r.url.clone());
                }
            }
        }
        report
    }
}

/// The §5.4 freshness fold: everything the freshness analysis needs
/// from a responder's Virginia `(probe_time, produced_at)` samples,
/// accumulated per probe so no raw sample vector is ever retained.
/// Memory is bounded by the number of *distinct* `producedAt` values
/// (at most one per refresh window for pre-generated responders).
///
/// The paper's rule, applied per responder behavior: a sample is "not
/// generated on demand" when `producedAt` is more than two minutes
/// before receipt, and a responder is classified pre-generated when
/// the *majority* of its samples say so — a lone stale outlier (cache,
/// load balancer hiccup) must not flip an on-demand responder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FreshnessAccumulator {
    samples: u64,
    stale: u64,
    first_produced: Option<Time>,
    last_produced: Option<Time>,
    regressed: bool,
    produced: BTreeSet<Time>,
}

impl FreshnessAccumulator {
    /// An empty accumulator.
    pub fn new() -> FreshnessAccumulator {
        FreshnessAccumulator::default()
    }

    /// Fold one Virginia sample in. Samples must arrive in probe-time
    /// order (they do: chunks run rounds in order and merge in time
    /// order), so a backwards `producedAt` step is observable right
    /// here.
    pub fn record(&mut self, probe: Time, produced: Time) {
        self.samples += 1;
        if probe - produced > 120 {
            self.stale += 1;
        }
        if let Some(last) = self.last_produced {
            if produced < last {
                self.regressed = true;
            }
        }
        if self.first_produced.is_none() {
            self.first_produced = Some(produced);
        }
        self.last_produced = Some(produced);
        self.produced.insert(produced);
    }

    /// Fold a later chunk's accumulator in (chunks merge in time
    /// order), stitching regression detection across the chunk
    /// boundary.
    pub fn merge(&mut self, other: &FreshnessAccumulator) {
        if other.samples == 0 {
            return;
        }
        self.samples += other.samples;
        self.stale += other.stale;
        self.regressed |= other.regressed;
        if let (Some(last), Some(first)) = (self.last_produced, other.first_produced) {
            if first < last {
                self.regressed = true;
            }
        }
        if self.first_produced.is_none() {
            self.first_produced = other.first_produced;
        }
        self.last_produced = other.last_produced;
        self.produced.extend(other.produced.iter().copied());
    }

    /// Number of samples folded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The §5.4 per-responder behavioral rule: pre-generated iff a
    /// strict majority of samples show `producedAt` more than two
    /// minutes before receipt.
    pub fn is_pre_generated(&self) -> bool {
        self.stale * 2 > self.samples
    }

    /// Whether `producedAt` ever went backwards (footnote 17's
    /// multi-instance regressions).
    pub fn has_regression(&self) -> bool {
        self.regressed
    }

    /// Refresh-period estimate: minimum positive gap between distinct
    /// consecutive `producedAt` values. (The set is sorted and
    /// deduplicated, so consecutive gaps are exactly the old
    /// sort+dedup+windows computation.)
    pub fn min_refresh_gap(&self) -> Option<i64> {
        let mut prev: Option<Time> = None;
        let mut min_gap: Option<i64> = None;
        for &p in &self.produced {
            if let Some(prev) = prev {
                let gap = p - prev;
                if gap > 0 && min_gap.is_none_or(|m| gap < m) {
                    min_gap = Some(gap);
                }
            }
            prev = Some(p);
        }
        min_gap
    }
}

/// Deterministic FNV-1a hash used to stagger probe times per responder.
/// Real scan fleets stagger requests; without it, a coarse scan grid
/// would systematically miss short outage windows.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

fn region_index(region: Region) -> usize {
    Region::VANTAGE_POINTS
        .iter()
        .position(|&r| r == region)
        .expect("vantage point")
}

/// One work unit's partial campaign results: everything one responder
/// contributes over one contiguous round range. Chunks merge in
/// (shard, chunk) order — time order within each responder — so the
/// assembled [`HourlyDataset`] is identical for every worker count and
/// every chunk plan.
struct ChunkRecords {
    requests: u64,
    /// Accumulators for this round range only; the streak fields stay
    /// zero here and are recomputed at merge time from
    /// `first_target_ok`, so a chunk boundary can never split a streak.
    report: ResponderReport,
    /// Per-region, per-round first-target HTTP success — the §8 streak
    /// signal, logged raw so the merge can stitch streaks across chunk
    /// boundaries with the one serial pass both paths share.
    first_target_ok: [Vec<bool>; 6],
    per_region_success: Vec<TimeSeries>,
    class_series: Vec<TimeSeries>,
    alexa_unreachable: Vec<TimeSeries>,
    telemetry: Registry,
}

// `Chunking` moved to `ecosystem::config` (PR 7) so it can ride on
// `EcosystemConfig` next to `Engine`; re-exported here for existing
// callers.
pub use ecosystem::{Chunking, Engine};

/// Aim for this many time chunks per responder.
const TARGET_CHUNKS_PER_SHARD: usize = 8;

/// Cut one responder's `rounds` probe rounds into contiguous
/// `(start, end)` chunks at cache-safe boundaries.
///
/// A boundary is safe when a fresh per-chunk [`World`] replays the
/// monolithic run byte-for-byte from that round on, *including* every
/// telemetry counter. Responder state (the signed-response cache, the
/// validator's signature memo) is a pure function of the request and
/// its generation window, so:
///
/// * on-demand responders key everything by the request second — every
///   round boundary is safe;
/// * pre-generated responders share signed bytes (and the cache events
///   they produce) across all rounds inside one window — boundaries are
///   safe only where the window index `t.div_euclid(interval)` rolls
///   over between consecutive probe times.
///
/// The plan is a pure function of the ecosystem config — never of the
/// worker count — so every executor sees identical chunks.
fn chunk_plan(
    rounds: usize,
    campaign_start: i64,
    scan_interval: i64,
    offset: i64,
    generation: GenerationMode,
) -> Vec<(usize, usize)> {
    let target = (rounds / TARGET_CHUNKS_PER_SHARD).max(1);
    let mut starts = vec![0usize];
    for r in 1..rounds {
        let safe = match generation {
            GenerationMode::OnDemand => true,
            GenerationMode::PreGenerated { interval } => {
                let t_prev = campaign_start + (r as i64 - 1) * scan_interval + offset;
                (t_prev + scan_interval).div_euclid(interval) != t_prev.div_euclid(interval)
            }
        };
        if safe && r - starts.last().unwrap() >= target {
            starts.push(r);
        }
    }
    starts
        .iter()
        .enumerate()
        .map(|(i, &start)| (start, starts.get(i + 1).copied().unwrap_or(rounds)))
        .collect()
}

/// Fold one chunk's accumulators into the responder-wide report.
/// Streak fields are deliberately untouched — they come from the
/// stitched `first_target_ok` logs.
fn absorb_report(into: &mut ResponderReport, chunk: ResponderReport) {
    for i in 0..6 {
        into.attempts[i] += chunk.attempts[i];
        into.successes[i] += chunk.successes[i];
    }
    into.valid += chunk.valid;
    for (class, n) in chunk.unusable {
        *into.unusable.entry(class).or_default() += n;
    }
    into.other_invalid += chunk.other_invalid;
    into.cert_count_sum += chunk.cert_count_sum;
    into.quality_samples += chunk.quality_samples;
    into.serial_count_sum += chunk.serial_count_sum;
    into.validity_sum += chunk.validity_sum;
    into.validity_samples += chunk.validity_samples;
    into.blank_next_update += chunk.blank_next_update;
    into.margin_sum += chunk.margin_sum;
    into.freshness.merge(&chunk.freshness);
}

/// Fold one classified probe into the chunk's accumulators — the one
/// place record state mutates per probe, shared verbatim by the
/// threads and reactor engines. The threads engine calls it right
/// after each blocking probe; the reactor engine calls it in canonical
/// submission order after draining all completions, so the two
/// engines' records are byte-identical by construction.
#[allow(clippy::too_many_arguments)]
fn fold_probe(
    records: &mut ChunkRecords,
    region_idx: usize,
    region: Region,
    is_first_target: bool,
    alexa_weight: u64,
    t: Time,
    outcome: &ProbeOutcome,
) {
    let report = &mut records.report;
    report.attempts[region_idx] += 1;
    let probe_ok = outcome.http_success();
    if is_first_target {
        records.first_target_ok[region_idx].push(probe_ok);
    }
    if probe_ok {
        report.successes[region_idx] += 1;
    }
    records.per_region_success[region_idx].record_bool(t, probe_ok);
    if is_first_target {
        let down = if probe_ok { 0 } else { alexa_weight };
        records.alexa_unreachable[region_idx].record_hits(t, down, alexa_weight);
    }
    if probe_ok {
        for (class_idx, class) in ErrorClass::ALL.iter().enumerate() {
            records.class_series[class_idx].record_bool(t, outcome.error_class() == Some(*class));
        }
    }
    match outcome {
        ProbeOutcome::Valid(v) => {
            report.valid += 1;
            report.quality_samples += 1;
            report.cert_count_sum += v.cert_count as u64;
            report.serial_count_sum += v.serial_count as u64;
            match v.validity_period() {
                Some(secs) => {
                    report.validity_sum += secs;
                    report.validity_samples += 1;
                }
                None => report.blank_next_update += 1,
            }
            report.margin_sum += v.this_update_margin;
            // The paper sampled producedAt across all of a responder's
            // tracked certificates; multiple samples per window are what
            // expose the footnote 17 multi-instance regressions.
            if region == Region::Virginia {
                report.freshness.record(t, v.produced_at);
            }
        }
        ProbeOutcome::Unusable(class) => {
            *report.unusable.entry(*class).or_default() += 1;
        }
        ProbeOutcome::OtherInvalid(err) => {
            report.other_invalid += 1;
            // Future-dated thisUpdate responders show up here; keep
            // their margin contribution so the Figure 9 CDF reaches
            // below zero.
            if let ocsp::ResponseError::NotYetValid { early_by } = err {
                report.quality_samples += 1;
                report.margin_sum -= *early_by;
            }
        }
        ProbeOutcome::TransportFailure(_) => {}
    }
}

/// The one streak pass both chunkings share: replay the per-round
/// first-target outcomes in time order and fill the §8 streak fields.
fn fill_streaks(report: &mut ResponderReport, first_target_ok: &[Vec<bool>; 6]) {
    for (region, outcomes) in first_target_ok.iter().enumerate() {
        let mut streak = 0u32;
        for &ok in outcomes {
            if ok {
                if streak > 0 {
                    // A success closes the streak: record it for the §8
                    // outage-duration CDF.
                    report.closed_streaks[region].push(streak);
                }
                streak = 0;
            } else {
                streak += 1;
                report.max_failure_streak[region] = report.max_failure_streak[region].max(streak);
            }
        }
        report.failure_streak[region] = streak;
    }
}

/// The campaign driver.
pub struct HourlyCampaign<'a> {
    eco: &'a LiveEcosystem,
    topo: Arc<Topology>,
}

impl<'a> HourlyCampaign<'a> {
    /// Wire the shared topology for the ecosystem.
    pub fn new(eco: &'a LiveEcosystem) -> HourlyCampaign<'a> {
        HourlyCampaign {
            eco,
            topo: eco.build_topology(),
        }
    }

    /// Run the full campaign with the worker count from the ecosystem
    /// config.
    pub fn run(self) -> HourlyDataset {
        let executor = Executor::new(self.eco.config.parallelism);
        self.run_with(&executor)
    }

    /// Run the full campaign on a specific executor with the default
    /// [`Chunking::TimeSliced`] work units.
    ///
    /// Each work unit is one responder over one contiguous round range.
    /// A unit replays *its responder's* exact serial-run probe
    /// subsequence — round by round, region by region, target by
    /// target — against a private [`World`] over the shared topology.
    /// Responder caches and the validator's signature memo are pure
    /// functions of the request and its generation window, chunk
    /// boundaries fall only where no cached state crosses them (see
    /// [`chunk_plan`]), latency is a pure hash of
    /// `(topology seed, host, time)`, and failure streaks are stitched
    /// from raw per-round logs at merge time — so the assembled dataset
    /// is byte-identical for every worker count and both chunkings.
    pub fn run_with(self, executor: &Executor) -> HourlyDataset {
        let chunking = self.eco.config.chunking;
        let engine = self.eco.config.engine;
        self.run_with_engine(executor, chunking, engine)
    }

    /// [`HourlyCampaign::run_with`] with an explicit [`Chunking`] —
    /// the coarse plan exists so tests can prove the fine-grained one
    /// changes nothing but wall-clock time.
    pub fn run_with_chunking(self, executor: &Executor, chunking: Chunking) -> HourlyDataset {
        let engine = self.eco.config.engine;
        self.run_with_engine(executor, chunking, engine)
    }

    /// [`HourlyCampaign::run_with_chunking`] with an explicit
    /// [`Engine`].
    ///
    /// Under [`Engine::Threads`] each work unit issues one blocking
    /// `http_post` at a time. Under [`Engine::Reactor`] a work unit
    /// *submits* every probe of its chunk up front in canonical
    /// (round, region, target) order — `World::start_request` performs
    /// all world mutation and draws the latency at submission time —
    /// then drains completions from a simulated-time wheel and folds
    /// the classified outcomes back in canonical order. Both engines
    /// therefore mutate world state and records in the identical
    /// sequence, and the assembled dataset is byte-identical
    /// (DESIGN.md §12 gives the full argument).
    pub fn run_with_engine(
        self,
        executor: &Executor,
        chunking: Chunking,
        engine: Engine,
    ) -> HourlyDataset {
        let eco = self.eco;
        let config = &eco.config;
        let bin = config.scan_interval;
        let rounds = config.scan_rounds();

        // Figure 4: how many Alexa domains ride on each responder. The
        // paper's Alexa1M population is the ~60 % of the list that
        // supports HTTPS+OCSP.
        let alexa_ocsp_domains = (config.alexa_size as f64 * 0.6) as usize;
        let alexa_weights = eco.alexa_domains_per_responder(alexa_ocsp_domains);

        // Pre-encode requests; remember which target samples producedAt
        // and which targets belong to which responder shard.
        let requests_der: Vec<Vec<u8>> = eco
            .scan_targets
            .iter()
            .map(|t| OcspRequest::single(t.cert_id.clone()).to_der())
            .collect();
        let mut first_target_of: Vec<Option<usize>> = vec![None; eco.responders.len()];
        let mut targets_of: Vec<Vec<usize>> = vec![Vec::new(); eco.responders.len()];
        for (idx, target) in eco.scan_targets.iter().enumerate() {
            first_target_of[target.responder].get_or_insert(idx);
            targets_of[target.responder].push(idx);
        }
        // Per-responder probe stagger within the scan interval.
        let offsets: Vec<i64> = eco
            .responders
            .iter()
            .map(|host| (fnv1a(host.hostname.as_bytes()) % config.scan_interval as u64) as i64)
            .collect();

        // The chunk plan is a pure function of the config (never of the
        // worker count): responders × window-aligned round ranges.
        let plans: Vec<Vec<(usize, usize)>> = eco
            .responders
            .iter()
            .enumerate()
            .map(|(shard, host)| match chunking {
                Chunking::PerResponder => vec![(0, rounds)],
                Chunking::TimeSliced => chunk_plan(
                    rounds,
                    config.campaign_start.unix(),
                    config.scan_interval,
                    offsets[shard],
                    host.profile.generation,
                ),
            })
            .collect();
        let chunk_counts: Vec<usize> = plans.iter().map(Vec::len).collect();

        let topo = &self.topo;
        let requests_der = &requests_der;
        let first_target_of = &first_target_of;
        let targets_of = &targets_of;
        let offsets = &offsets;
        let plans = &plans;

        // The campaign draws no randomness of its own (probe times are
        // FNV-staggered, latency is a pure hash) — the unit RNG is part
        // of the executor contract but unused here.
        let (shards, shard_spans) = executor.run_chunked_traced(
            config.seed,
            &chunk_counts,
            |shard| eco.responders[shard].hostname.clone(),
            |shard, chunk, _rng| {
                let (start_round, end_round) = plans[shard][chunk];
                let host = &eco.responders[shard];
                let mut world = World::from_topology(topo.clone());
                // Signature verification is memoized per work unit; entries
                // never outlive the generation window that produced their
                // bytes, so per-chunk caches count exactly like a
                // per-responder one.
                let mut sigcache = SigVerifyCache::new();
                let mut records = ChunkRecords {
                    requests: 0,
                    report: ResponderReport::new(&host.url, &eco.operators[host.operator].name),
                    first_target_ok: std::array::from_fn(|_| Vec::new()),
                    per_region_success: (0..6).map(|_| TimeSeries::new(bin)).collect(),
                    class_series: ErrorClass::ALL
                        .iter()
                        .map(|_| TimeSeries::new(bin))
                        .collect(),
                    alexa_unreachable: (0..6).map(|_| TimeSeries::new(bin)).collect(),
                    telemetry: Registry::new(),
                };
                // Classify one HTTP result: validation counters and the
                // per-unit signature memo mutate here. Keyed purely by
                // the request bytes and window, so calling this in
                // completion order (reactor) instead of submission
                // order (threads) changes no counter sums.
                let classify = |world: &mut World,
                                sigcache: &mut SigVerifyCache,
                                target_idx: usize,
                                t: Time,
                                result: netsim::HttpResult|
                 -> ProbeOutcome {
                    let target = &eco.scan_targets[target_idx];
                    match result.outcome {
                        HttpOutcome::Ok(body) => match validate_response_cached(
                            world.telemetry_mut(),
                            catalog::SCAN_HOURLY_VALIDATE,
                            sigcache,
                            &body,
                            &target.cert_id,
                            eco.issuer_of(target.operator),
                            t,
                            ValidationConfig::default(),
                        ) {
                            Ok(validated) => ProbeOutcome::Valid(validated),
                            Err(err) => classify_validation_error(err),
                        },
                        other => ProbeOutcome::TransportFailure(other),
                    }
                };
                let alexa_weight = alexa_weights[shard] as u64;
                match engine {
                    Engine::Threads => {
                        for round in start_round..end_round {
                            world
                                .telemetry_mut()
                                .incr(catalog::SCAN_HOURLY_ROUNDS, &host.url);
                            let round_start =
                                config.campaign_start + round as i64 * config.scan_interval;
                            let t = round_start + offsets[shard];
                            for (region_idx, &region) in Region::VANTAGE_POINTS.iter().enumerate() {
                                for &target_idx in &targets_of[shard] {
                                    let target = &eco.scan_targets[target_idx];
                                    records.requests += 1;
                                    world
                                        .telemetry_mut()
                                        .incr(catalog::SCAN_HOURLY_PROBES, &host.url);
                                    let result = world.http_post(
                                        region,
                                        &target.url,
                                        &requests_der[target_idx],
                                        t,
                                    );
                                    let outcome =
                                        classify(&mut world, &mut sigcache, target_idx, t, result);
                                    fold_probe(
                                        &mut records,
                                        region_idx,
                                        region,
                                        first_target_of[shard] == Some(target_idx),
                                        alexa_weight,
                                        t,
                                        &outcome,
                                    );
                                }
                            }
                        }
                    }
                    Engine::Reactor => {
                        // Phase 1 — submit the whole chunk in canonical
                        // (round, region, target) order. All world
                        // mutation (DNS cache, handler state, latency
                        // draw, telemetry) happens here, so it replays
                        // the threads engine's sequence exactly.
                        let mut reactor = Reactor::new();
                        let mut pending: Vec<(usize, Region, usize, Time, Option<PendingRequest>)> =
                            Vec::new();
                        let epoch = config.campaign_start;
                        for round in start_round..end_round {
                            world
                                .telemetry_mut()
                                .incr(catalog::SCAN_HOURLY_ROUNDS, &host.url);
                            let round_start =
                                config.campaign_start + round as i64 * config.scan_interval;
                            let t = round_start + offsets[shard];
                            for (region_idx, &region) in Region::VANTAGE_POINTS.iter().enumerate() {
                                for &target_idx in &targets_of[shard] {
                                    let target = &eco.scan_targets[target_idx];
                                    records.requests += 1;
                                    world
                                        .telemetry_mut()
                                        .incr(catalog::SCAN_HOURLY_PROBES, &host.url);
                                    let request = world.start_request(
                                        region,
                                        &target.url,
                                        &requests_der[target_idx],
                                        t,
                                    );
                                    let at_ms = t.seconds_since(epoch) as f64 * 1_000.0
                                        + request.latency_ms();
                                    reactor.submit(at_ms, pending.len());
                                    pending.push((
                                        region_idx,
                                        region,
                                        target_idx,
                                        t,
                                        Some(request),
                                    ));
                                }
                            }
                        }
                        // Phase 2 — drain completions in simulated-time
                        // order (ties broken by submission sequence).
                        // Only validation runs here, and its counter
                        // sums and signature-memo hits are completion-
                        // order-insensitive.
                        let mut outcomes: Vec<Option<ProbeOutcome>> =
                            (0..pending.len()).map(|_| None).collect();
                        while let Some((_, token)) = reactor.next_ready() {
                            let (target_idx, t) = (pending[token].2, pending[token].3);
                            let mut request =
                                pending[token].4.take().expect("each token drains once");
                            let latency_ms = request.latency_ms();
                            let result = world
                                .poll_response(&mut request, latency_ms)
                                .expect("the wheel only releases completed requests");
                            outcomes[token] =
                                Some(classify(&mut world, &mut sigcache, target_idx, t, result));
                        }
                        // Phase 3 — fold in canonical submission order:
                        // the order-sensitive record fields (streak
                        // logs, producedAt samples, time series) see
                        // the exact serial sequence.
                        for (token, &(region_idx, region, target_idx, t, _)) in
                            pending.iter().enumerate()
                        {
                            let outcome = outcomes[token].take().expect("every probe classified");
                            fold_probe(
                                &mut records,
                                region_idx,
                                region,
                                first_target_of[shard] == Some(target_idx),
                                alexa_weight,
                                t,
                                &outcome,
                            );
                        }
                        // Introspection gauges: excluded from artifacts
                        // (telemetry.prom/csv and equality), so the
                        // engines stay byte-identical.
                        world.telemetry_mut().set_gauge(
                            catalog::SCAN_HOURLY_REACTOR_DEPTH,
                            reactor.peak_in_flight() as u64,
                        );
                        world.telemetry_mut().set_gauge(
                            catalog::SCAN_HOURLY_REACTOR_READY,
                            reactor.max_tick_width(),
                        );
                    }
                }
                records.telemetry = world.take_telemetry();
                // Chunk span: the simulated hour range this round slice
                // covers, with one unit per probe sent.
                let span = Span::leaf(
                    format!("chunk {chunk}"),
                    (start_round as i64 * config.scan_interval / 3_600) as u64,
                    (end_round as i64 * config.scan_interval / 3_600) as u64,
                    records.requests,
                );
                (records, span)
            },
        );

        // Canonical merge: shard-id order == responder order; within a
        // shard, chunk order == time order, so concatenated logs replay
        // the serial probe sequence exactly.
        let mut requests = 0u64;
        let mut telemetry = Registry::new();
        // detlint::allow(wall-clock): merge wall timing feeds a telemetry span, which is excluded from artifact equality
        let merge_started = Instant::now();
        let mut per_region: Vec<(Region, TimeSeries)> = Region::VANTAGE_POINTS
            .iter()
            .map(|&r| (r, TimeSeries::new(bin)))
            .collect();
        let mut class_series: Vec<(ErrorClass, TimeSeries)> = ErrorClass::ALL
            .iter()
            .map(|&c| (c, TimeSeries::new(bin)))
            .collect();
        let mut alexa_unreachable: Vec<(Region, TimeSeries)> = Region::VANTAGE_POINTS
            .iter()
            .map(|&r| (r, TimeSeries::new(bin)))
            .collect();
        let mut responders = Vec::with_capacity(shards.len());
        let mut health_log = HealthLog::new();
        for (shard_idx, chunks) in shards.into_iter().enumerate() {
            let host = &eco.responders[shard_idx];
            let mut report = ResponderReport::new(&host.url, &eco.operators[host.operator].name);
            let mut first_target_ok: [Vec<bool>; 6] = std::array::from_fn(|_| Vec::new());
            // Chunks arrive in time order, so merging each chunk's
            // probe-outcome log into the campaign log replays the serial
            // (round, region) sequence — the associativity the opsmon
            // property tests pin is exactly what makes this split safe.
            let mut rounds_done = 0usize;
            for chunk in chunks {
                requests += chunk.requests;
                for (i, series) in chunk.per_region_success.iter().enumerate() {
                    per_region[i].1.merge(series);
                }
                for (i, series) in chunk.class_series.iter().enumerate() {
                    class_series[i].1.merge(series);
                }
                for (i, series) in chunk.alexa_unreachable.iter().enumerate() {
                    alexa_unreachable[i].1.merge(series);
                }
                telemetry.merge(&chunk.telemetry);
                let chunk_rounds = chunk.first_target_ok[0].len();
                let mut chunk_health = HealthLog::new();
                for round in 0..chunk_rounds {
                    let t = config.campaign_start
                        + (rounds_done + round) as i64 * config.scan_interval
                        + offsets[shard_idx];
                    for region_log in &chunk.first_target_ok {
                        chunk_health.record(&host.url, t, region_log[round]);
                    }
                }
                rounds_done += chunk_rounds;
                health_log.merge(chunk_health);
                for (into, log) in first_target_ok.iter_mut().zip(chunk.first_target_ok.iter()) {
                    into.extend_from_slice(log);
                }
                absorb_report(&mut report, chunk.report);
            }
            fill_streaks(&mut report, &first_target_ok);
            responders.push(report);
        }
        // Replay the stitched probe logs through the health-state
        // machine and export the resulting gauges/counters; window
        // rollovers for pre-generated responders ride the same bus.
        let mut events = EventLog::new();
        let health = health_log.replay(&HealthPolicy::default(), &mut events);
        health.export(&mut telemetry);
        if rounds > 0 {
            for (shard_idx, host) in eco.responders.iter().enumerate() {
                let GenerationMode::PreGenerated { interval } = host.profile.generation else {
                    continue;
                };
                let first = config.campaign_start.unix() + offsets[shard_idx];
                let last = first + (rounds - 1) as i64 * config.scan_interval;
                for window in (first.div_euclid(interval) + 1)..=(last.div_euclid(interval)) {
                    events.notify(Event::new(
                        Time::from_unix(window * interval),
                        EventKind::Rollover,
                        &host.url,
                        &format!("window {window}"),
                    ));
                }
            }
        }
        // Wall-clock span only — never serialized, never compared.
        telemetry.record_wall(
            catalog::SCAN_HOURLY_MERGE,
            merge_started.elapsed().as_nanos(),
        );

        HourlyDataset {
            rounds,
            requests,
            per_region_success: per_region,
            class_series,
            responders,
            alexa_unreachable,
            alexa_weights,
            telemetry,
            trace: Span::aggregate("scan.hourly", shard_spans),
            health,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosystem::EcosystemConfig;

    fn dataset() -> HourlyDataset {
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        HourlyCampaign::new(&eco).run()
    }

    #[test]
    fn campaign_covers_all_probes() {
        let d = dataset();
        let config = EcosystemConfig::tiny();
        let expected =
            (config.scan_rounds() * 6 * config.responders * config.certs_per_responder) as u64;
        assert_eq!(d.requests, expected);
        assert_eq!(d.responders.len(), config.responders);
        assert_eq!(d.per_region_success.len(), 6);
    }

    #[test]
    fn telemetry_accounts_for_every_probe() {
        // Replaces the old eprintln-based debug test: the campaign's
        // accounting is now a telemetry event stream we can assert on.
        let d = dataset();
        assert_eq!(d.telemetry.counter_total("scan.hourly.probes"), d.requests);
        let rounds_total: u64 = d.telemetry.counter_total("scan.hourly.rounds");
        assert_eq!(rounds_total, (d.rounds * d.responders.len()) as u64);
        // Every HTTP success was validated exactly once.
        let successes: u64 = d
            .responders
            .iter()
            .map(|r| r.successes.iter().sum::<u64>())
            .sum();
        assert_eq!(d.telemetry.counter_total("scan.hourly.validate"), successes);
        // Transport failures show up in the netsim counters.
        let failures = d.requests - successes;
        let net_failures: u64 = ["dns", "tcp", "http4xx", "http5xx", "tls", "http"]
            .iter()
            .map(|k| d.telemetry.counter_total(&format!("net.failure.{k}")))
            .sum();
        assert_eq!(net_failures, failures);
    }

    #[test]
    fn telemetry_validate_counters_cross_check_fig5_unusable_totals() {
        // Acceptance cross-check: the per-variant validate counters must
        // sum to the same totals Figure 5's unusable classes report.
        let d = dataset();
        let unusable_total = |class: ErrorClass| -> u64 {
            d.responders
                .iter()
                .map(|r| r.unusable.get(&class).copied().unwrap_or(0))
                .sum()
        };
        assert_eq!(
            d.telemetry
                .counter("scan.hourly.validate", "err.malformed_structure"),
            unusable_total(ErrorClass::Asn1Unparseable)
        );
        assert_eq!(
            d.telemetry
                .counter("scan.hourly.validate", "err.serial_mismatch"),
            unusable_total(ErrorClass::SerialUnmatch)
        );
        assert_eq!(
            d.telemetry
                .counter("scan.hourly.validate", "err.signature_invalid")
                + d.telemetry
                    .counter("scan.hourly.validate", "err.untrusted_delegate"),
            unusable_total(ErrorClass::Signature)
        );
    }

    #[test]
    fn most_requests_succeed_but_not_all() {
        let d = dataset();
        let failure = d.overall_failure_rate();
        assert!(failure > 0.0, "some failures must occur (outage script)");
        assert!(failure < 0.25, "but most requests succeed; got {failure}");
    }

    #[test]
    fn quality_cdfs_are_populated() {
        let d = dataset();
        assert!(!d.cdf_cert_counts().is_empty());
        assert!(!d.cdf_serial_counts().is_empty());
        assert!(!d.cdf_margins().is_empty());
        let mut validity = d.cdf_validity();
        assert!(!validity.is_empty());
        // Median validity should be in the days range.
        if let Some(median) = validity.median() {
            assert!(median > 3_600.0, "median validity {median}");
        }
        let _ = d.cdf_cert_counts().len();
    }

    #[test]
    fn freshness_classifies_both_modes() {
        let d = dataset();
        let f = d.freshness();
        assert!(f.on_demand + f.pre_generated > 0);
        // hinet-style non-overlap exists only at larger scales; at tiny
        // scale just ensure the analysis runs.
    }

    fn accumulate(samples: &[(Time, Time)]) -> FreshnessAccumulator {
        let mut acc = FreshnessAccumulator::new();
        for &(probe, produced) in samples {
            acc.record(probe, produced);
        }
        acc
    }

    #[test]
    fn one_stale_outlier_does_not_flip_freshness_to_pre_generated() {
        // Regression: the old rule (`.any(gap > 120)`) classified a
        // responder as pre-generated from a single outlier sample. Nine
        // on-demand samples plus one stale must stay on-demand.
        let t0 = Time::from_civil(2018, 4, 25, 0, 0, 0);
        let mut samples: Vec<(Time, Time)> = (0..9)
            .map(|k| (t0 + k * 3_600, t0 + k * 3_600 - 5))
            .collect();
        samples.push((t0 + 9 * 3_600, t0 + 9 * 3_600 - 7_200)); // the outlier
        assert!(
            samples
                .iter()
                .any(|&(probe, produced)| probe - produced > 120),
            "the outlier must trip the old any() rule"
        );
        assert!(!accumulate(&samples).is_pre_generated());
    }

    #[test]
    fn majority_stale_samples_classify_as_pre_generated() {
        let t0 = Time::from_civil(2018, 4, 25, 0, 0, 0);
        // Six of ten samples stale by two hours: pre-generated.
        let samples: Vec<(Time, Time)> = (0..10)
            .map(|k| {
                let probe = t0 + k * 3_600;
                let produced = if k < 6 { probe - 7_200 } else { probe - 5 };
                (probe, produced)
            })
            .collect();
        assert!(accumulate(&samples).is_pre_generated());
        // An exact half is not a strict majority.
        let split: Vec<(Time, Time)> = (0..10)
            .map(|k| {
                let probe = t0 + k * 3_600;
                let produced = if k < 5 { probe - 7_200 } else { probe - 5 };
                (probe, produced)
            })
            .collect();
        assert!(!accumulate(&split).is_pre_generated());
    }

    #[test]
    fn freshness_merge_stitches_regressions_across_chunks() {
        // A producedAt step backwards exactly at a chunk boundary must
        // still be seen as a regression after the chunks merge.
        let t0 = Time::from_civil(2018, 4, 25, 0, 0, 0);
        let mut first = FreshnessAccumulator::new();
        first.record(t0, t0 - 7_200);
        first.record(t0 + 3_600, t0 - 3_600);
        let mut second = FreshnessAccumulator::new();
        second.record(t0 + 7_200, t0 - 5_400); // backwards vs. first's last
        assert!(!first.has_regression());
        assert!(!second.has_regression());
        first.merge(&second);
        assert!(first.has_regression());

        // And the merged state equals recording everything in order.
        let whole = accumulate(&[
            (t0, t0 - 7_200),
            (t0 + 3_600, t0 - 3_600),
            (t0 + 7_200, t0 - 5_400),
        ]);
        assert_eq!(first, whole);
    }

    #[test]
    fn min_refresh_gap_matches_sort_dedup_windows() {
        let t0 = Time::from_civil(2018, 4, 25, 0, 0, 0);
        // Produced values {0, 0, 7200, 18000}: gaps 7200 and 10800.
        let acc = accumulate(&[
            (t0 + 60, t0),
            (t0 + 3_660, t0),
            (t0 + 7_260, t0 + 7_200),
            (t0 + 18_060, t0 + 18_000),
        ]);
        assert_eq!(acc.min_refresh_gap(), Some(7_200));
        // Fewer than two distinct values: no estimate.
        let flat = accumulate(&[(t0 + 60, t0), (t0 + 3_660, t0)]);
        assert_eq!(flat.min_refresh_gap(), None);
    }

    #[test]
    fn every_closed_streak_enters_the_outage_cdf() {
        // Regression: the old CDF kept only the longest closed streak
        // per (responder, region), silently dropping shorter outages.
        let mut report = ResponderReport::new("http://r.test/", "Op");
        report.closed_streaks[0] = vec![2, 3]; // two distinct outages, region 0
        report.closed_streaks[1] = vec![1]; // one more from region 1
                                            // A still-open streak at campaign end must not contribute.
        report.failure_streak[2] = 5;
        report.max_failure_streak[2] = 5;

        let d = HourlyDataset {
            rounds: 10,
            requests: 0,
            per_region_success: Vec::new(),
            class_series: Vec::new(),
            responders: vec![report],
            alexa_unreachable: Vec::new(),
            alexa_weights: Vec::new(),
            telemetry: Registry::new(),
            trace: Span::aggregate("scan.hourly", Vec::new()),
            health: HealthReport::default(),
            events: EventLog::new(),
        };
        let mut cdf = d.cdf_outage_durations(3_600);
        assert_eq!(
            cdf.len(),
            3,
            "all closed streaks counted, open one excluded"
        );
        assert_eq!(cdf.median(), Some(2.0 * 3_600.0));
    }

    #[test]
    fn health_and_events_ride_the_campaign() {
        let d = dataset();
        // Only responders that fielded probes have a health timeline.
        assert!(!d.health.subjects.is_empty());
        assert!(d.health.subjects.len() <= d.responders.len());
        // The exported transition counters live in the merged registry.
        let exported: u64 = d.health.transition_counts.values().sum();
        assert_eq!(
            d.telemetry
                .counter_total(telemetry::catalog::HEALTH_TRANSITIONS),
            exported
        );
        // The event stream round-trips byte-exactly through its strict
        // parser — the same contract trace.jsonl honours.
        let text = d.events.to_jsonl();
        let parsed = EventLog::parse_jsonl(&text).unwrap_or_else(|_| EventLog::new());
        assert!(!text.is_empty(), "the campaign must emit events");
        assert_eq!(parsed.to_jsonl(), text, "events.jsonl parses strictly");
    }

    #[test]
    fn time_series_cover_campaign() {
        let d = dataset();
        for (_, series) in &d.per_region_success {
            assert_eq!(series.bin_count(), d.rounds);
        }
    }

    #[test]
    fn chunk_plans_cover_all_rounds_contiguously() {
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        let config = &eco.config;
        let rounds = config.scan_rounds();
        let mut saw_multi_chunk = false;
        for host in &eco.responders {
            let offset = (fnv1a(host.hostname.as_bytes()) % config.scan_interval as u64) as i64;
            let plan = chunk_plan(
                rounds,
                config.campaign_start.unix(),
                config.scan_interval,
                offset,
                host.profile.generation,
            );
            assert_eq!(plan.first().unwrap().0, 0);
            assert_eq!(plan.last().unwrap().1, rounds);
            for pair in plan.windows(2) {
                assert_eq!(pair[0].1, pair[1].0, "chunks must be contiguous");
            }
            // Pre-generated responders only split where the window rolls.
            if let GenerationMode::PreGenerated { interval } = host.profile.generation {
                for &(start, _) in &plan[1..] {
                    let t_prev = config.campaign_start.unix()
                        + (start as i64 - 1) * config.scan_interval
                        + offset;
                    assert_ne!(
                        (t_prev + config.scan_interval).div_euclid(interval),
                        t_prev.div_euclid(interval),
                        "{}: chunk start {start} is mid-window",
                        host.hostname
                    );
                }
            }
            saw_multi_chunk |= plan.len() > 1;
        }
        assert!(
            saw_multi_chunk,
            "tiny scale must actually exercise chunking"
        );
    }

    #[test]
    fn time_sliced_chunking_matches_per_responder_sharding_exactly() {
        // The §5.2 replication contract for the fine-grained executor:
        // (responder × time-chunk) units must reproduce the coarse
        // shard-per-responder run byte-for-byte — figures, reports, AND
        // telemetry (cache and sigcache counters included) — at every
        // worker count.
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        let coarse = HourlyCampaign::new(&eco)
            .run_with_chunking(&Executor::serial(), Chunking::PerResponder);
        for workers in [1usize, 2, 4] {
            let executor = Executor::new(std::num::NonZeroUsize::new(workers));
            let fine = HourlyCampaign::new(&eco).run_with_chunking(&executor, Chunking::TimeSliced);
            assert_eq!(coarse.requests, fine.requests, "workers={workers}");
            assert_eq!(coarse.responders, fine.responders, "workers={workers}");
            assert_eq!(coarse.alexa_weights, fine.alexa_weights);
            assert_eq!(coarse.telemetry, fine.telemetry, "workers={workers}");
            assert_eq!(coarse.telemetry.to_csv(), fine.telemetry.to_csv());
            // The Prometheus exposition is chunking-invariant too (the
            // span tree is not: chunk plans legitimately differ).
            assert_eq!(
                coarse.telemetry.to_prometheus(),
                fine.telemetry.to_prometheus()
            );
            for (a, b) in coarse
                .per_region_success
                .iter()
                .zip(&fine.per_region_success)
            {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.fractions(), b.1.fractions());
            }
            for (a, b) in coarse.class_series.iter().zip(&fine.class_series) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.fractions(), b.1.fractions());
            }
            for (a, b) in coarse.alexa_unreachable.iter().zip(&fine.alexa_unreachable) {
                assert_eq!(a.1.counts(), b.1.counts());
            }
        }
    }

    #[test]
    fn responder_cache_hit_rate_is_high_on_healthy_paths_only() {
        // Acceptance: with six vantage points sharing each probe second,
        // the healthy-path signed-response cache must serve most probes
        // from cached bytes, and fault-profile probes must never touch
        // the cache (they'd serve valid bytes for broken responders).
        let d = dataset();
        let hit = d.telemetry.counter("ocsp.responder.cache", "hit");
        let miss = d.telemetry.counter("ocsp.responder.cache", "miss");
        assert!(hit + miss > 0);
        let rate = hit as f64 / (hit + miss) as f64;
        assert!(rate > 0.8, "request-path hit rate {rate} too low");
        // Fault events and cache events are disjoint by construction:
        // every probe is either served from the healthy path (cache
        // gate) or triggers fault counters, never both.
        assert!(d.telemetry.counter_total("ocsp.responder.fault") > 0);
    }

    #[test]
    fn parallel_run_equals_serial_run_exactly() {
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        let serial = HourlyCampaign::new(&eco).run_with(&Executor::serial());
        for workers in [2usize, 5] {
            let executor = Executor::new(std::num::NonZeroUsize::new(workers));
            let parallel = HourlyCampaign::new(&eco).run_with(&executor);
            assert_eq!(serial.requests, parallel.requests);
            assert_eq!(serial.responders, parallel.responders, "workers={workers}");
            assert_eq!(serial.alexa_weights, parallel.alexa_weights);
            assert_eq!(serial.telemetry, parallel.telemetry, "workers={workers}");
            assert_eq!(serial.telemetry.to_csv(), parallel.telemetry.to_csv());
            assert_eq!(serial.trace, parallel.trace, "workers={workers}");
            assert_eq!(serial.trace.to_jsonl(), parallel.trace.to_jsonl());
            for (a, b) in serial
                .per_region_success
                .iter()
                .zip(&parallel.per_region_success)
            {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.fractions(), b.1.fractions());
            }
            for (a, b) in serial.class_series.iter().zip(&parallel.class_series) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.fractions(), b.1.fractions());
            }
            for (a, b) in serial
                .alexa_unreachable
                .iter()
                .zip(&parallel.alexa_unreachable)
            {
                assert_eq!(a.1.counts(), b.1.counts());
            }
        }
    }

    #[test]
    fn reactor_engine_matches_threads_engine_byte_for_byte() {
        // The tentpole acceptance test: the reactor engine must replay
        // the threads engine exactly — every record, every telemetry
        // counter, the exported Prometheus bytes, and the trace tree —
        // at every worker count and under both chunkings.
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        for chunking in [Chunking::TimeSliced, Chunking::PerResponder] {
            // The threads baseline shares the chunk plan under test:
            // the trace tree has one span per chunk, so it is only
            // engine- and worker-invariant *within* a chunking.
            let baseline = HourlyCampaign::new(&eco).run_with_engine(
                &Executor::serial(),
                chunking,
                Engine::Threads,
            );
            for workers in [1usize, 2, 4] {
                let executor = Executor::new(std::num::NonZeroUsize::new(workers));
                let reactor =
                    HourlyCampaign::new(&eco).run_with_engine(&executor, chunking, Engine::Reactor);
                let label = format!("chunking={chunking:?} workers={workers}");
                assert_eq!(baseline.requests, reactor.requests, "{label}");
                assert_eq!(baseline.responders, reactor.responders, "{label}");
                assert_eq!(baseline.alexa_weights, reactor.alexa_weights, "{label}");
                assert_eq!(baseline.telemetry, reactor.telemetry, "{label}");
                assert_eq!(
                    baseline.telemetry.to_csv(),
                    reactor.telemetry.to_csv(),
                    "{label}"
                );
                assert_eq!(
                    baseline.telemetry.to_prometheus(),
                    reactor.telemetry.to_prometheus(),
                    "{label}"
                );
                assert_eq!(
                    baseline.trace.to_jsonl(),
                    reactor.trace.to_jsonl(),
                    "{label}"
                );
                for (a, b) in baseline
                    .per_region_success
                    .iter()
                    .zip(&reactor.per_region_success)
                {
                    assert_eq!(a.1.fractions(), b.1.fractions(), "{label}");
                }
                for (a, b) in baseline.class_series.iter().zip(&reactor.class_series) {
                    assert_eq!(a.1.fractions(), b.1.fractions(), "{label}");
                }
                for (a, b) in baseline
                    .alexa_unreachable
                    .iter()
                    .zip(&reactor.alexa_unreachable)
                {
                    assert_eq!(a.1.counts(), b.1.counts(), "{label}");
                }
                // The reactor's introspection gauges exist — but only
                // outside the artifact surface.
                assert!(reactor
                    .telemetry
                    .gauge_max("scan.hourly.reactor.depth")
                    .is_some());
                assert!(!reactor.telemetry.to_csv().contains("reactor"), "{label}");
            }
        }
    }

    #[test]
    fn trailing_open_streak_is_reported_but_not_closed() {
        // Pinned semantics for the reactor port (§8 streak fields): a
        // failure streak still open at campaign end lands in
        // `failure_streak` (persistent failure) but deliberately never
        // in `closed_streaks` (transient-outage CDF) — only a
        // subsequent success closes a streak.
        let mut report = ResponderReport::new("http://r.test/", "op");
        let mut first_target_ok: [Vec<bool>; 6] = std::array::from_fn(|_| Vec::new());
        // Region 0: ok, fail, fail, ok, fail — one closed streak of 2,
        // plus a trailing open streak of 1.
        first_target_ok[0] = vec![true, false, false, true, false];
        // Region 1: all failures — a fully open streak, nothing closed.
        first_target_ok[1] = vec![false, false, false];
        // Region 2: ends in a success — streak closed, none open.
        first_target_ok[2] = vec![false, true];
        fill_streaks(&mut report, &first_target_ok);

        assert_eq!(report.closed_streaks[0], vec![2]);
        assert_eq!(report.failure_streak[0], 1);
        assert_eq!(report.max_failure_streak[0], 2);

        assert!(report.closed_streaks[1].is_empty());
        assert_eq!(report.failure_streak[1], 3);
        assert_eq!(report.max_failure_streak[1], 3);

        assert_eq!(report.closed_streaks[2], vec![1]);
        assert_eq!(report.failure_streak[2], 0);
    }
}
