//! Vendored stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container has no crates.io registry, so this crate
//! implements the 0.5 API surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. It measures real wall-clock time and prints mean and median
//! per-iteration cost, but does no statistical outlier analysis, HTML
//! reports, or baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortizes setup cost. The stand-in
/// runs one routine call per setup call regardless of variant, so the
/// variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_count: usize,
    time_budget: Duration,
}

impl Bencher<'_> {
    /// Benchmark `routine`, timing batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to estimate cost and warm caches.
        let est_start = Instant::now();
        black_box(routine());
        let est = est_start.elapsed().max(Duration::from_nanos(1));

        // Batch fast routines so each sample is at least ~1ms of work.
        let per_sample = (Duration::from_millis(1).as_nanos() / est.as_nanos()).max(1) as u64;
        let deadline = Instant::now() + self.time_budget;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / per_sample as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Benchmark `routine` on fresh inputs from `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.time_budget;
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_count: usize,
    time_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_count: 100,
            time_budget: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Set how many timing samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_count = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name.into(), self.sample_count, self.time_budget, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.sample_count,
            time_budget: self.time_budget,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    time_budget: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(full, self.sample_count, self.time_budget, f);
        self
    }

    /// End the group (upstream finalizes reports here; a no-op for us).
    pub fn finish(self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(
    name: String,
    sample_count: usize,
    time_budget: Duration,
    f: F,
) {
    let mut samples = Vec::with_capacity(sample_count);
    let mut bencher = Bencher {
        samples: &mut samples,
        sample_count,
        time_budget,
    };
    f(&mut bencher);
    if samples.is_empty() {
        println!("{name:<44} (no samples collected)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<44} time: [median {} mean {}] ({} samples)",
        format_ns(median),
        format_ns(mean),
        samples.len()
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Define a benchmark group runner function (both the struct-like and
/// tuple-like upstream forms are accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(12.3), "12.3 ns");
        assert_eq!(format_ns(12_300.0), "12.300 µs");
        assert_eq!(format_ns(12_300_000.0), "12.300 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }
}
