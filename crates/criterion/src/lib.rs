//! Vendored stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container has no crates.io registry, so this crate
//! implements the 0.5 API surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. It measures real wall-clock time and prints mean and median
//! per-iteration cost, but does no statistical outlier analysis, HTML
//! reports, or baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortizes setup cost. The stand-in
/// runs one routine call per setup call regardless of variant, so the
/// variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_count: usize,
    time_budget: Duration,
}

impl Bencher<'_> {
    /// Benchmark `routine`, timing batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to estimate cost and warm caches.
        let est_start = Instant::now();
        black_box(routine());
        let est = est_start.elapsed().max(Duration::from_nanos(1));

        // Batch fast routines so each sample is at least ~1ms of work.
        let per_sample = (Duration::from_millis(1).as_nanos() / est.as_nanos()).max(1) as u64;
        let deadline = Instant::now() + self.time_budget;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / per_sample as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Benchmark `routine` on fresh inputs from `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.time_budget;
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Summary of one finished benchmark, handed to the reporter.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Benchmark name (group-qualified for grouped benchmarks).
    pub name: String,
    /// Number of timing samples collected (0 if the closure never ran).
    pub samples: usize,
    /// Median per-iteration cost in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration cost in nanoseconds.
    pub mean_ns: f64,
}

impl BenchReport {
    /// The console line upstream criterion would print for this report.
    pub fn render(&self) -> String {
        if self.samples == 0 {
            return format!("{:<44} (no samples collected)", self.name);
        }
        format!(
            "{:<44} time: [median {} mean {}] ({} samples)",
            self.name,
            format_ns(self.median_ns),
            format_ns(self.mean_ns),
            self.samples
        )
    }
}

/// Where finished benchmarks are announced. The default reporter prints
/// [`BenchReport::render`] to stdout; tests and embedding harnesses can
/// swap in their own sink.
type Reporter = Box<dyn FnMut(&BenchReport)>;

fn console_reporter() -> Reporter {
    Box::new(|report: &BenchReport| println!("{}", report.render()))
}

/// The benchmark driver.
pub struct Criterion {
    sample_count: usize,
    time_budget: Duration,
    reporter: Reporter,
    telemetry: telemetry::Registry,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_count: 100,
            time_budget: Duration::from_secs(3),
            reporter: console_reporter(),
            telemetry: telemetry::Registry::new(),
        }
    }
}

impl Criterion {
    /// Set how many timing samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_count = n.max(1);
        self
    }

    /// Replace the console reporter with a custom sink for finished
    /// benchmarks (not part of the upstream API).
    pub fn with_reporter(mut self, reporter: impl FnMut(&BenchReport) + 'static) -> Criterion {
        self.reporter = Box::new(reporter);
        self
    }

    /// Telemetry accumulated so far: one `criterion.sample_ns` histogram
    /// per benchmark name (not part of the upstream API).
    pub fn telemetry(&self) -> &telemetry::Registry {
        &self.telemetry
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(
            name.into(),
            self.sample_count,
            self.time_budget,
            f,
            &mut self.reporter,
            &mut self.telemetry,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.sample_count,
            time_budget: self.time_budget,
            parent: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    time_budget: Duration,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(
            full,
            self.sample_count,
            self.time_budget,
            f,
            &mut self.parent.reporter,
            &mut self.parent.telemetry,
        );
        self
    }

    /// End the group (upstream finalizes reports here; a no-op for us).
    pub fn finish(self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(
    name: String,
    sample_count: usize,
    time_budget: Duration,
    f: F,
    reporter: &mut Reporter,
    registry: &mut telemetry::Registry,
) {
    let mut samples = Vec::with_capacity(sample_count);
    let mut bencher = Bencher {
        samples: &mut samples,
        sample_count,
        time_budget,
    };
    f(&mut bencher);
    let report = if samples.is_empty() {
        BenchReport {
            name,
            samples: 0,
            median_ns: 0.0,
            mean_ns: 0.0,
        }
    } else {
        samples.sort_by(|a, b| a.total_cmp(b));
        for &s in &samples {
            registry.observe("criterion.sample_ns", &name, s as u64);
        }
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        BenchReport {
            name,
            samples: samples.len(),
            median_ns: median,
            mean_ns: mean,
        }
    };
    reporter(&report);
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Define a benchmark group runner function (both the struct-like and
/// tuple-like upstream forms are accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    #[test]
    fn custom_reporter_receives_reports_and_telemetry_accumulates() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<BenchReport>>> = Rc::default();
        let sink = Rc::clone(&seen);
        let mut c = Criterion::default()
            .sample_size(4)
            .with_reporter(move |r| sink.borrow_mut().push(r.clone()));
        c.bench_function("reported", |b| b.iter(|| black_box(1 + 1)));
        let reports = seen.borrow();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].name, "reported");
        assert!(reports[0].samples > 0);
        assert!(reports[0].render().contains("reported"));
        // Every sample also lands in the telemetry histogram.
        let hist = c
            .telemetry()
            .histogram("criterion.sample_ns", "reported")
            .expect("histogram recorded");
        assert_eq!(hist.count(), reports[0].samples as u64);
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(12.3), "12.3 ns");
        assert_eq!(format_ns(12_300.0), "12.300 µs");
        assert_eq!(format_ns(12_300_000.0), "12.300 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }
}
