//! The metric-catalog pack: one namespace for every telemetry name.
//!
//! `telemetry::catalog` declares every metric, gauge, and wall-span
//! name as a `pub const NAME: &str = "dotted.name";`. This pass proves
//! the three-way closure code ↔ baseline ↔ tolerances:
//!
//! * **call sites** — in the configured metric crates, the first
//!   argument of every `Registry` call (`incr`, `observe`, `set_gauge`,
//!   `record_wall`, reads included) must be a catalog constant: string
//!   literals and `format!`-built names are errors, as are constants
//!   the catalog does not declare. Test code keeps its literals — the
//!   equality tests deliberately cross-check the constants' values.
//! * **baseline** — every family in `results/telemetry.prom` (the
//!   dotted name on each `# HELP` line) must be declared, so a retired
//!   metric cannot linger silently in the committed baseline.
//! * **tolerances** — every `["metric"]` section in `teldiff.toml`
//!   must be declared, so a tolerance cannot outlive its metric.
//! * **liveness** — every catalog constant must be referenced from at
//!   least one file outside the catalog module; an orphaned constant is
//!   a retired metric that should be deleted (or carry a reviewed
//!   `detlint::allow(metric-catalog)` suppression explaining why it
//!   stays).

use crate::config::Config;
use crate::dag;
use crate::parse::{FileModel, FirstArg};
use crate::report::{Finding, Rule, Severity};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// `Registry` methods whose first argument is a metric name. Covers
/// both the emit and the read surface — a typo in a read silently
/// queries a metric that never existed.
const METRIC_METHODS: &[&str] = &[
    "incr",
    "add",
    "observe",
    "set_gauge",
    "record_wall",
    "time",
    "counter",
    "counter_total",
    "histogram",
    "gauge",
    "gauge_max",
    "wall_count",
];

fn err(file: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: Rule::MetricCatalog,
        file: file.to_string(),
        line,
        message,
        severity: Severity::Error,
    }
}

/// Run the metric-catalog checks. `models` maps workspace-relative
/// `.rs` paths to their models; the catalog module itself must be one
/// of them.
pub fn check(root: &Path, config: &Config, models: &BTreeMap<String, FileModel>) -> Vec<Finding> {
    let Some(policy) = &config.catalog else {
        return Vec::new();
    };
    let mut out = Vec::new();

    let Some(catalog_model) = models.get(&policy.module) else {
        out.push(err(
            &policy.module,
            0,
            "metric catalog module is missing; declare metric names in \
             telemetry::catalog"
                .to_string(),
        ));
        return out;
    };

    // name → value and value → name, with duplicate detection.
    let mut by_name: BTreeMap<&str, &str> = BTreeMap::new();
    let mut by_value: BTreeMap<&str, &str> = BTreeMap::new();
    for c in &catalog_model.str_consts {
        if by_name.insert(&c.name, &c.value).is_some() {
            out.push(err(
                &policy.module,
                c.line,
                format!("duplicate catalog constant `{}`", c.name),
            ));
        }
        if let Some(prev) = by_value.insert(&c.value, &c.name) {
            out.push(err(
                &policy.module,
                c.line,
                format!(
                    "catalog value \"{}\" is declared twice (`{prev}` and `{}`)",
                    c.value, c.name
                ),
            ));
        }
    }
    if by_name.is_empty() {
        out.push(err(
            &policy.module,
            0,
            "metric catalog declares no `pub const NAME: &str` entries".to_string(),
        ));
        return out;
    }

    // Call-site discipline in the metric crates.
    for (rel, model) in models {
        if rel == &policy.module || dag::is_test_path(rel) {
            continue;
        }
        let crate_id = Config::crate_of(rel);
        if !config.metric_crates.iter().any(|c| c == crate_id) {
            continue;
        }
        for call in &model.calls {
            if !METRIC_METHODS.contains(&call.method.as_str()) || model.in_test_range(call.line) {
                continue;
            }
            match &call.arg {
                FirstArg::Str(value) => {
                    let hint = match by_value.get(value.as_str()) {
                        Some(name) => format!("use telemetry::catalog::{name}"),
                        None => "declare it in telemetry::catalog and use the constant".to_string(),
                    };
                    out.push(err(
                        rel,
                        call.line,
                        format!(
                            "hardcoded metric name \"{value}\" at `.{}(…)`; {hint}",
                            call.method
                        ),
                    ));
                }
                FirstArg::Dynamic => {
                    out.push(err(
                        rel,
                        call.line,
                        format!(
                            "metric name built with format! at `.{}(…)`; declare each \
                             variant in telemetry::catalog and select one statically",
                            call.method
                        ),
                    ));
                }
                FirstArg::Const(name) => {
                    if !by_name.contains_key(name.as_str()) {
                        out.push(err(
                            rel,
                            call.line,
                            format!(
                                "`.{}(…)` references constant `{name}`, which is not \
                                 declared in telemetry::catalog",
                                call.method
                            ),
                        ));
                    }
                }
                FirstArg::Other => {}
            }
        }
    }

    // Baseline closure: every prom family resolves to a catalog value.
    match fs::read_to_string(root.join(&policy.prom_baseline)) {
        Ok(text) => {
            for (idx, line) in text.lines().enumerate() {
                let Some(rest) = line.strip_prefix("# HELP ") else {
                    continue;
                };
                let Some((_, dotted)) = rest.split_once(' ') else {
                    continue;
                };
                let dotted = dotted.trim();
                if !by_value.contains_key(dotted) {
                    out.push(err(
                        &policy.prom_baseline,
                        (idx + 1) as u32,
                        format!(
                            "baseline metric \"{dotted}\" is not declared in \
                             telemetry::catalog; declare it or retire the baseline family"
                        ),
                    ));
                }
            }
        }
        Err(_) => out.push(err(
            &policy.prom_baseline,
            0,
            "prometheus baseline is missing; the catalog closure cannot be checked".to_string(),
        )),
    }

    // Tolerance closure: every teldiff section resolves to a catalog
    // value.
    match fs::read_to_string(root.join(&policy.teldiff)) {
        Ok(text) => {
            for (idx, line) in text.lines().enumerate() {
                let line = line.trim();
                let Some(name) = line.strip_prefix("[\"").and_then(|r| r.strip_suffix("\"]"))
                else {
                    continue;
                };
                if !by_value.contains_key(name) {
                    out.push(err(
                        &policy.teldiff,
                        (idx + 1) as u32,
                        format!(
                            "tolerance section \"{name}\" names a metric not declared \
                             in telemetry::catalog"
                        ),
                    ));
                }
            }
        }
        Err(_) => out.push(err(
            &policy.teldiff,
            0,
            "teldiff tolerance file is missing; the catalog closure cannot be checked".to_string(),
        )),
    }

    // Liveness: every catalog constant is referenced somewhere else.
    for c in &catalog_model.str_consts {
        let referenced = models
            .iter()
            .any(|(rel, m)| rel != &policy.module && m.idents.contains(&c.name));
        if !referenced {
            out.push(err(
                &policy.module,
                c.line,
                format!(
                    "catalog constant `{}` (\"{}\") is never referenced at any call \
                     site; delete it or suppress with a retirement note",
                    c.name, c.value
                ),
            ));
        }
    }

    out
}
