//! `detlint` — the workspace determinism & hygiene linter.
//!
//! Every paper shape this repository reproduces rests on one invariant:
//! a scan campaign is a pure function of `(config, seed)`, byte-identical
//! between serial and `--workers N` runs. The dynamic gates (determinism
//! tests, the CI CSV diff) check that invariant for the seeds they run;
//! this linter enforces its *preconditions* statically, at the source
//! line, for every seed:
//!
//! * **wall-clock** — `Instant::now`/`SystemTime::now` only in crates
//!   that measure the run (telemetry, criterion, bench), never in crates
//!   that produce artifacts;
//! * **unordered-iter** — no iteration over `HashMap`/`HashSet` internal
//!   order in artifact-producing crates;
//! * **unseeded-rng** — every RNG traces to the campaign seed;
//! * **forbid-unsafe** — every crate root carries
//!   `#![forbid(unsafe_code)]`;
//! * **panic-hygiene** — a ratchet over panic markers in the scan hot
//!   path, gated on `lint-baseline.json`, which may only shrink;
//! * **layering** — the workspace crate DAG declared in [`Config`] is
//!   enforced against `Cargo.toml` dependencies and `use` statements
//!   (undeclared edges, layer inversions, cycles, dev-deps reached
//!   from non-test code);
//! * **unused-dep** — declared dependencies no identifier references,
//!   and normal deps referenced only from test code;
//! * **metric-catalog** — every telemetry metric name routes through a
//!   `telemetry::catalog` constant, and the catalog is closed against
//!   the committed Prometheus baseline and the teldiff tolerances;
//! * **float-determinism** — `f64` accumulation over `HashMap` order
//!   outside the blessed order-insensitive helpers.
//!
//! Exceptions are scoped and documented:
//! `// detlint::allow(rule): reason`, with unused suppressions
//! themselves an error. Reports are deterministic (sorted findings,
//! byte-stable JSON), because a linter about determinism that diffed
//! against itself would be embarrassing.
//!
//! Std-only by construction: the build environment has no reachable
//! registry, so the Rust lexer in [`lexer`] is hand-rolled.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod config;
pub mod dag;
pub mod float;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod suppress;

pub use config::Config;
pub use report::{Baseline, Finding, Report, Rule, Severity};

use lexer::TokenKind;
use parse::FileModel;
use report::SuppressionRecord;
use rules::FileContext;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use suppress::Suppression;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "results"];

/// Collect every `.rs` file under `root`, as sorted workspace-relative
/// `/`-separated paths. Deterministic: directory entries are sorted
/// before descent (the OS order of `read_dir` is arbitrary).
pub fn collect_rs_files(root: &Path, exclude: &[String]) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let rel = rel_of(root, &path);
            if exclude.iter().any(|p| rel.starts_with(p.as_str())) {
                continue;
            }
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_of(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Lint one file's source text: runs the per-file rules and extracts
/// everything the workspace-level passes need. Findings stay *pending*
/// (unsuppressed) — the engine applies the suppression pool once all
/// passes have contributed.
fn lint_source(
    rel_path: &str,
    source: &str,
    config: &Config,
) -> (Vec<Finding>, Vec<Suppression>, Vec<Finding>, FileModel, u64) {
    let all_tokens = lexer::lex(source);
    let code_tokens: Vec<_> = all_tokens
        .iter()
        .filter(|t| t.kind != TokenKind::LineComment && t.kind != TokenKind::BlockComment)
        .cloned()
        .collect();
    let crate_name = Config::crate_of(rel_path);
    let model = parse::model(&code_tokens);
    let ctx = FileContext {
        rel_path,
        crate_name,
        tokens: &code_tokens,
    };

    let mut findings = Vec::new();
    if !config
        .wall_clock_allowed_crates
        .iter()
        .any(|c| c == crate_name)
    {
        findings.extend(rules::wall_clock(&ctx));
    }
    if config.artifact_crates.iter().any(|c| c == crate_name) {
        findings.extend(rules::unordered_iter(&ctx));
    }
    findings.extend(rules::unseeded_rng(&ctx));
    if Config::is_crate_root(rel_path) {
        findings.extend(rules::forbid_unsafe(&ctx));
    }
    if config.float_crates.iter().any(|c| c == crate_name) && !dag::is_test_path(rel_path) {
        findings.extend(float::float_determinism(&ctx, &model));
    }

    let (sups, sup_errors) = suppress::parse(rel_path, &all_tokens);
    let markers = rules::count_panic_markers(&code_tokens);
    (findings, sups, sup_errors, model, markers)
}

/// Lint the tree rooted at `root` under `config`, including the
/// panic-hygiene baseline comparison. The returned report is finalized
/// (findings sorted on the canonical key).
///
/// The engine runs in two phases. Phase one lexes and models every
/// `.rs` file, running the per-file rules and collecting the
/// suppression pool (`.rs` comments *and* `Cargo.toml` comments — the
/// layering findings anchor to manifests). Phase two runs the
/// workspace-level passes — layering/unused-dep over the manifests and
/// file models, and the metric-catalog closure — then applies the pool:
/// a suppression silences any same-rule finding on its covered line,
/// regardless of which pass produced it, and every suppression is
/// recorded for the `--audit-suppressions` inventory.
pub fn lint_root(root: &Path, config: &Config) -> io::Result<Report> {
    let mut report = Report::default();
    let files = collect_rs_files(root, &config.exclude)?;
    report.files_scanned = files.len();

    // Phase 1: per-file rules, models, suppression pool.
    let mut models: BTreeMap<String, FileModel> = BTreeMap::new();
    let mut pending: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    let mut pool: BTreeMap<String, Vec<Suppression>> = BTreeMap::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let (findings, sups, sup_errors, model, markers) = lint_source(rel, &source, config);
        report.findings.extend(sup_errors);
        if !findings.is_empty() {
            pending.entry(rel.clone()).or_default().extend(findings);
        }
        if !sups.is_empty() {
            pool.entry(rel.clone()).or_default().extend(sups);
        }
        if config.hot_path_files.iter().any(|f| f == rel) {
            report.panic_counts.insert(rel.clone(), markers);
        }
        models.insert(rel.clone(), model);
    }

    // Phase 2: workspace-level passes over manifests and models.
    if !config.layering.is_empty() || config.catalog.is_some() {
        let (ws, manifest_errors, manifest_sups) = dag::load(root)?;
        report.findings.extend(manifest_errors);
        for (file, sups) in manifest_sups {
            pool.entry(file).or_default().extend(sups);
        }
        if !config.layering.is_empty() {
            for f in dag::check(config, &ws, &models) {
                pending.entry(f.file.clone()).or_default().push(f);
            }
        }
        for f in catalog::check(root, config, &models) {
            pending.entry(f.file.clone()).or_default().push(f);
        }
    }

    // Apply the suppression pool and build the audit inventory.
    for (file, mut sups) in pool {
        let mut findings = pending.remove(&file).unwrap_or_default();
        let mut unused = Vec::new();
        let used = suppress::apply(&file, &mut sups, &mut findings, &mut unused);
        report.suppressions_used += used.iter().filter(|u| **u).count();
        for (s, &was_used) in sups.iter().zip(used.iter()) {
            report.suppression_records.push(SuppressionRecord {
                file: file.clone(),
                line: s.line,
                rule: s.rule.name(),
                reason: s.reason.clone(),
                used: was_used,
            });
        }
        report.findings.extend(findings);
        report.findings.extend(unused);
    }
    for (_, findings) in pending {
        report.findings.extend(findings);
    }

    // Hot-path files that were configured but never seen: the config has
    // drifted from the tree.
    for hot in &config.hot_path_files {
        if !report.panic_counts.contains_key(hot) {
            report.findings.push(Finding {
                rule: Rule::PanicHygiene,
                file: hot.clone(),
                line: 0,
                message: "configured hot-path file does not exist; update the detlint config"
                    .to_string(),
                severity: Severity::Error,
            });
        }
    }

    ratchet(root, config, &mut report);
    report.finalize();
    Ok(report)
}

/// Compare measured panic counts against the checked-in baseline.
fn ratchet(root: &Path, config: &Config, report: &mut Report) {
    if config.hot_path_files.is_empty() {
        return;
    }
    let baseline_rel = &config.baseline_path;
    let baseline = match fs::read_to_string(root.join(baseline_rel)) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                report.findings.push(Finding {
                    rule: Rule::PanicHygiene,
                    file: baseline_rel.clone(),
                    line: 0,
                    message: format!("unparseable baseline: {e}"),
                    severity: Severity::Error,
                });
                return;
            }
        },
        Err(_) => {
            report.findings.push(Finding {
                rule: Rule::PanicHygiene,
                file: baseline_rel.clone(),
                line: 0,
                message: "baseline file missing; run `cargo run -p detlint -- --update-baseline`"
                    .to_string(),
                severity: Severity::Error,
            });
            return;
        }
    };

    for (file, &count) in &report.panic_counts {
        match baseline.panic_markers.get(file) {
            None => report.findings.push(Finding {
                rule: Rule::PanicHygiene,
                file: file.clone(),
                line: 0,
                message: format!(
                    "hot-path file has {count} panic markers but no baseline entry; \
                     run `cargo run -p detlint -- --update-baseline`"
                ),
                severity: Severity::Error,
            }),
            Some(&allowed) if count > allowed => report.findings.push(Finding {
                rule: Rule::PanicHygiene,
                file: file.clone(),
                line: 0,
                message: format!(
                    "{count} panic markers (unwrap/expect(\"…\")/panic!) exceed the \
                     baseline of {allowed}; convert fallible sites to typed errors or \
                     expect() with invariant messages — the ratchet only tightens"
                ),
                severity: Severity::Error,
            }),
            Some(&allowed) if count < allowed => report.findings.push(Finding {
                rule: Rule::PanicHygiene,
                file: file.clone(),
                line: 0,
                message: format!(
                    "{count} panic markers, below the baseline of {allowed} — tighten \
                     the ratchet: run `cargo run -p detlint -- --update-baseline` and \
                     commit the result"
                ),
                severity: Severity::RatchetSlack,
            }),
            Some(_) => {}
        }
    }

    for file in baseline.panic_markers.keys() {
        if !report.panic_counts.contains_key(file) {
            report.findings.push(Finding {
                rule: Rule::PanicHygiene,
                file: file.clone(),
                line: 0,
                message: "stale baseline entry for a file not on the hot path; \
                          run `cargo run -p detlint -- --update-baseline`"
                    .to_string(),
                severity: Severity::Error,
            });
        }
    }
}

/// The baseline a clean tree would check in: the measured counts.
pub fn baseline_of(report: &Report) -> Baseline {
    Baseline {
        panic_markers: report.panic_counts.clone(),
    }
}
