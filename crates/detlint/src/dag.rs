//! The layering pack: a declared crate DAG enforced against reality.
//!
//! [`Config::layering`](crate::Config) names every workspace crate, its
//! layer, and the exact set of crates it may depend on. This pass
//! checks three things against that declaration:
//!
//! 1. **Manifests** — every `[dependencies]`/`[dev-dependencies]` entry
//!    resolves to a workspace crate in the allowed set, normal edges
//!    point at strictly lower layers, and the realized normal-edge
//!    graph is acyclic (dev edges are exempt from the ordering — test
//!    harness edges legitimately point upward).
//! 2. **Sources** — every `use` of (or path reference to) a workspace
//!    crate is backed by a declared dependency, and dev-dependencies
//!    are not reached from non-test code.
//! 3. **Usage** — a declared dependency that no identifier in the crate
//!    references is dead weight (`unused-dep`), and a normal dependency
//!    referenced only from test code belongs in `[dev-dependencies]`.
//!
//! The pass also renders the realized graph as DOT (`--graph-dot`),
//! with layers as ranks and dev edges dashed.

use crate::config::{Config, CrateSpec};
use crate::manifest::{self, Dep, Manifest};
use crate::parse::FileModel;
use crate::report::{Finding, Rule, Severity};
use crate::suppress::Suppression;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

/// One crate's manifest, located and parsed.
#[derive(Debug)]
pub struct CrateManifest {
    /// Crate id (directory name, or `study` for the root package).
    pub id: String,
    /// Manifest path relative to the root.
    pub rel_path: String,
    /// The parsed manifest.
    pub manifest: Manifest,
}

/// The workspace's manifests plus the root alias map.
#[derive(Debug, Default)]
pub struct WorkspaceManifests {
    /// Per-crate manifests, sorted by id.
    pub crates: Vec<CrateManifest>,
    /// Root `[workspace.dependencies]`: alias → (path, package).
    pub workspace_deps: BTreeMap<String, (Option<String>, Option<String>)>,
}

/// Read the root manifest and every `crates/*/Cargo.toml` under `root`.
/// Returns the manifests, malformed-suppression findings, and the
/// suppression pool entries (file → suppressions) for the engine.
pub fn load(
    root: &Path,
) -> std::io::Result<(
    WorkspaceManifests,
    Vec<Finding>,
    Vec<(String, Vec<Suppression>)>,
)> {
    let mut ws = WorkspaceManifests::default();
    let mut findings = Vec::new();
    let mut sups = Vec::new();

    let root_text = fs::read_to_string(root.join("Cargo.toml"))?;
    let (root_manifest, errs) = manifest::parse("Cargo.toml", &root_text);
    findings.extend(errs);
    ws.workspace_deps = root_manifest.workspace_deps.clone();
    if !root_manifest.suppressions.is_empty() {
        sups.push(("Cargo.toml".to_string(), root_manifest.suppressions.clone()));
    }
    // The root package, if the root manifest declares one.
    if root_manifest.package_name.is_some() || !root_manifest.deps.is_empty() {
        ws.crates.push(CrateManifest {
            id: "study".to_string(),
            rel_path: "Cargo.toml".to_string(),
            manifest: root_manifest,
        });
    }

    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<_> = fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let mf = dir.join("Cargo.toml");
            if !mf.exists() {
                continue;
            }
            let id = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let rel = format!("crates/{id}/Cargo.toml");
            let (parsed, errs) = manifest::parse(&rel, &fs::read_to_string(&mf)?);
            findings.extend(errs);
            if !parsed.suppressions.is_empty() {
                sups.push((rel.clone(), parsed.suppressions.clone()));
            }
            ws.crates.push(CrateManifest {
                id,
                rel_path: rel,
                manifest: parsed,
            });
        }
    }
    ws.crates.sort_by(|a, b| a.id.cmp(&b.id));
    Ok((ws, findings, sups))
}

/// Resolve a dependency to its target crate id (the last path
/// component of its `path`, looked up through the root alias map for
/// `workspace = true` entries).
pub fn resolve_target(dep: &Dep, ws: &WorkspaceManifests) -> Option<String> {
    let path = if dep.workspace {
        ws.workspace_deps.get(&dep.key)?.0.clone()?
    } else {
        dep.path.clone()?
    };
    path.replace('\\', "/")
        .split('/')
        .filter(|s| !s.is_empty() && *s != "." && *s != "..")
        .next_back()
        .map(|s| s.to_string())
}

fn spec_of<'a>(config: &'a Config, id: &str) -> Option<&'a CrateSpec> {
    config.layering.iter().find(|s| s.id == id)
}

fn err(rule: Rule, file: &str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line,
        message,
        severity: Severity::Error,
    }
}

/// Whether a file is compiled only for tests/benches/examples (where
/// dev-dependencies are in scope).
pub fn is_test_path(rel_path: &str) -> bool {
    let tail = match rel_path.strip_prefix("crates/") {
        Some(rest) => rest.split_once('/').map(|(_, t)| t).unwrap_or(rest),
        None => rel_path,
    };
    tail.starts_with("tests/") || tail.starts_with("benches/") || tail.starts_with("examples/")
}

/// Run every layering check. `models` maps workspace-relative `.rs`
/// paths to their extracted models.
pub fn check(
    config: &Config,
    ws: &WorkspaceManifests,
    models: &BTreeMap<String, FileModel>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let lib_to_id: BTreeMap<&str, &str> = config
        .layering
        .iter()
        .map(|s| (s.lib.as_str(), s.id.as_str()))
        .collect();

    // Per-crate identifier usage, split by test visibility.
    let mut used_any: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut used_non_test: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (rel, model) in models {
        let crate_id = Config::crate_of(rel);
        let any = used_any.entry(crate_id).or_default();
        for id in &model.idents {
            any.insert(id);
        }
        if !is_test_path(rel) {
            let non_test = used_non_test.entry(crate_id).or_default();
            for id in &model.non_test_idents {
                non_test.insert(id);
            }
        }
    }

    // Manifest checks + the realized normal-edge graph.
    let mut normal_edges: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    // Per-crate declared deps by target id → (dev, line), for the
    // source-level checks below.
    let mut declared: BTreeMap<&str, BTreeMap<String, bool>> = BTreeMap::new();

    for cm in &ws.crates {
        let Some(spec) = spec_of(config, &cm.id) else {
            out.push(err(
                Rule::Layering,
                &cm.rel_path,
                0,
                format!(
                    "crate `{}` is not declared in the layering config; add it to \
                     detlint's Config::workspace_layering with its layer and allowed deps",
                    cm.id
                ),
            ));
            continue;
        };
        let mut seen: BTreeMap<&str, bool> = BTreeMap::new(); // key → dev
        for dep in &cm.manifest.deps {
            let Some(target) = resolve_target(dep, ws) else {
                out.push(err(
                    Rule::Layering,
                    &cm.rel_path,
                    dep.line,
                    format!(
                        "dependency `{}` does not resolve to a workspace path crate; \
                         this workspace is hermetic (no registry deps)",
                        dep.key
                    ),
                ));
                continue;
            };
            // Duplicate normal + dev declaration of the same key.
            if let Some(&first_dev) = seen.get(dep.key.as_str()) {
                if first_dev != dep.dev {
                    out.push(err(
                        Rule::UnusedDep,
                        &cm.rel_path,
                        dep.line,
                        format!(
                            "`{}` is declared in both [dependencies] and \
                             [dev-dependencies]; the dev entry is redundant",
                            dep.key
                        ),
                    ));
                    continue;
                }
            }
            seen.insert(dep.key.as_str(), dep.dev);

            let Some(target_spec) = spec_of(config, &target) else {
                out.push(err(
                    Rule::Layering,
                    &cm.rel_path,
                    dep.line,
                    format!(
                        "dependency `{}` resolves to crate `{target}`, which is not in \
                         the layering config",
                        dep.key
                    ),
                ));
                continue;
            };
            if !spec.deps.iter().any(|d| d == &target) {
                out.push(err(
                    Rule::Layering,
                    &cm.rel_path,
                    dep.line,
                    format!(
                        "`{}` must not depend on `{target}`: the edge is not in the \
                         declared DAG; if the architecture changed, update \
                         Config::workspace_layering in the same diff",
                        cm.id
                    ),
                ));
            } else if !dep.dev {
                if let (Some(from), Some(to)) = (spec.layer, target_spec.layer) {
                    if to >= from {
                        out.push(err(
                            Rule::Layering,
                            &cm.rel_path,
                            dep.line,
                            format!(
                                "dependency inverts the declared layering: `{}` is \
                                 layer {from} but `{target}` is layer {to}",
                                cm.id
                            ),
                        ));
                    }
                }
                normal_edges
                    .entry(spec.id.as_str())
                    .or_default()
                    .push(target.clone());
            }
            declared
                .entry(spec.id.as_str())
                .or_default()
                .entry(target.clone())
                .and_modify(|dev| *dev &= dep.dev)
                .or_insert(dep.dev);

            // Usage checks.
            let lib_name = dep.key.replace('-', "_");
            let empty = BTreeSet::new();
            let any = used_any.get(cm.id.as_str()).unwrap_or(&empty);
            let non_test = used_non_test.get(cm.id.as_str()).unwrap_or(&empty);
            if !any.contains(lib_name.as_str()) {
                out.push(err(
                    Rule::UnusedDep,
                    &cm.rel_path,
                    dep.line,
                    format!(
                        "`{}` is declared but never referenced by any identifier in \
                         crate `{}`; remove it",
                        dep.key, cm.id
                    ),
                ));
            } else if !dep.dev && !non_test.contains(lib_name.as_str()) {
                out.push(err(
                    Rule::UnusedDep,
                    &cm.rel_path,
                    dep.line,
                    format!(
                        "`{}` is only referenced from test code; move it to \
                         [dev-dependencies]",
                        dep.key
                    ),
                ));
            }
        }
    }

    out.extend(cycles(ws, &normal_edges));

    // Source-level checks: every referenced workspace crate is declared.
    for (rel, model) in models {
        let crate_id = Config::crate_of(rel);
        if spec_of(config, crate_id).is_none() {
            continue;
        }
        let crate_declared = declared.get(crate_id);
        // Dedupe per (head, finding kind): the first offending line of
        // each crate reference is enough.
        let mut reported: BTreeSet<(&str, &str)> = BTreeSet::new();
        let refs = model.use_heads.iter().chain(model.path_heads.iter());
        for (head, line) in refs {
            let Some(&target_id) = lib_to_id.get(head.as_str()) else {
                continue;
            };
            if target_id == crate_id {
                continue;
            }
            match crate_declared.and_then(|d| d.get(target_id)) {
                None => {
                    if reported.insert((head.as_str(), "undeclared")) {
                        out.push(err(
                            Rule::Layering,
                            rel,
                            *line,
                            format!(
                                "crate `{crate_id}` references workspace crate `{head}` \
                                 without declaring the dependency in its Cargo.toml"
                            ),
                        ));
                    }
                }
                Some(&dev) => {
                    if dev
                        && !is_test_path(rel)
                        && !model.in_test_range(*line)
                        && reported.insert((head.as_str(), "dev-in-nontest"))
                    {
                        out.push(err(
                            Rule::Layering,
                            rel,
                            *line,
                            format!(
                                "`{head}` is a dev-dependency of `{crate_id}` but is \
                                 referenced from non-test code"
                            ),
                        ));
                    }
                }
            }
        }
    }

    out
}

/// Detect cycles in the realized normal-dependency graph.
fn cycles(ws: &WorkspaceManifests, edges: &BTreeMap<&str, Vec<String>>) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut done: BTreeSet<String> = BTreeSet::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in edges.keys() {
        let mut stack: Vec<(String, usize)> = vec![(start.to_string(), 0)];
        let mut path: Vec<String> = Vec::new();
        while let Some((node, next)) = stack.pop() {
            if next == 0 {
                if let Some(pos) = path.iter().position(|p| *p == node) {
                    // Found a cycle: canonicalize it so each is reported
                    // once regardless of entry point.
                    let mut cycle: Vec<String> = path[pos..].to_vec();
                    let min = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, v)| v.as_str())
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min);
                    if reported.insert(cycle.clone()) {
                        let anchor = ws
                            .crates
                            .iter()
                            .find(|c| c.id == cycle[0])
                            .map(|c| c.rel_path.clone())
                            .unwrap_or_else(|| "Cargo.toml".to_string());
                        out.push(err(
                            Rule::Layering,
                            &anchor,
                            0,
                            format!("dependency cycle: {} → {}", cycle.join(" → "), cycle[0]),
                        ));
                    }
                    continue;
                }
                if done.contains(&node) {
                    continue;
                }
                path.push(node.clone());
            }
            let succ = edges.get(node.as_str()).map(Vec::as_slice).unwrap_or(&[]);
            if next < succ.len() {
                stack.push((node.clone(), next + 1));
                stack.push((succ[next].clone(), 0));
            } else {
                done.insert(node.clone());
                path.pop();
            }
        }
    }
    out
}

/// Render the realized dependency graph as DOT: layers as same-rank
/// groups, dev edges dashed. Deterministic output.
pub fn dot(config: &Config, ws: &WorkspaceManifests) -> String {
    let mut out = String::new();
    out.push_str("digraph detlint_deps {\n");
    out.push_str("  rankdir=\"BT\";\n");
    out.push_str("  node [shape=box, fontname=\"monospace\"];\n");
    let mut by_layer: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    for spec in &config.layering {
        if let Some(layer) = spec.layer {
            by_layer.entry(layer).or_default().push(&spec.id);
        }
    }
    for (layer, ids) in &by_layer {
        out.push_str(&format!("  // layer {layer}\n  {{ rank=same;"));
        let mut ids = ids.clone();
        ids.sort_unstable();
        for id in ids {
            out.push_str(&format!(" \"{id}\";"));
        }
        out.push_str(" }\n");
    }
    let mut edges: BTreeSet<(String, String, bool)> = BTreeSet::new();
    for cm in &ws.crates {
        for dep in &cm.manifest.deps {
            if let Some(target) = resolve_target(dep, ws) {
                edges.insert((cm.id.clone(), target, dep.dev));
            }
        }
    }
    for (from, to, dev) in &edges {
        if *dev {
            out.push_str(&format!("  \"{from}\" -> \"{to}\" [style=dashed];\n"));
        } else {
            out.push_str(&format!("  \"{from}\" -> \"{to}\";\n"));
        }
    }
    out.push_str("}\n");
    out
}
