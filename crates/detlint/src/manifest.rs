//! A std-only Cargo.toml reader for the layering pass.
//!
//! This is not a TOML parser; it reads the narrow manifest dialect this
//! workspace actually uses — `[package] name`, `[dependencies]` /
//! `[dev-dependencies]` entries with inline tables (`path`, `package`,
//! `workspace = true`), `[dependencies.key]` sub-tables, and the root's
//! `[workspace.dependencies]` alias map. Everything else is skipped
//! without error: the manifest already has to parse for `cargo` to run
//! at all, so this reader's job is extraction, not validation.
//!
//! Manifests carry suppressions in comment form —
//! `# detlint::allow(rule): reason` — with the same same-line /
//! next-line scoping as the `//` form in Rust sources.

use crate::report::{Finding, Rule, Severity};
use crate::suppress::Suppression;
use std::collections::BTreeMap;

/// One declared dependency.
#[derive(Debug, Clone)]
pub struct Dep {
    /// The dependency key — the name code imports (modulo `-` → `_`).
    pub key: String,
    /// Whether it sits in `[dev-dependencies]`.
    pub dev: bool,
    /// 1-based line of the declaration.
    pub line: u32,
    /// `path = "…"` value, if any.
    pub path: Option<String>,
    /// `package = "…"` rename, if any.
    pub package: Option<String>,
    /// Whether it is `workspace = true` (resolved via the root map).
    pub workspace: bool,
}

/// One parsed manifest.
#[derive(Debug, Default)]
pub struct Manifest {
    /// `[package] name`, if present.
    pub package_name: Option<String>,
    /// All `[dependencies]` and `[dev-dependencies]` entries.
    pub deps: Vec<Dep>,
    /// Root-only: `[workspace.dependencies]` alias → (path, package).
    pub workspace_deps: BTreeMap<String, (Option<String>, Option<String>)>,
    /// `# detlint::allow(…)` suppressions found in the manifest.
    pub suppressions: Vec<Suppression>,
}

/// Parse one manifest. `rel_path` anchors malformed-suppression
/// findings.
pub fn parse(rel_path: &str, text: &str) -> (Manifest, Vec<Finding>) {
    let mut m = Manifest::default();
    let mut errors = Vec::new();
    let mut section = String::new();
    // Full-line suppression comments waiting for the next content line.
    let mut pending: Vec<(Rule, u32, String)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim();

        // Comment handling first: a `#` either opens a full-line comment
        // or trails content. (Quoted `#` does not occur in this
        // workspace's manifests, and a false split would only hide a
        // suppression — which then errors as malformed or unused.)
        let (content, comment) = match raw.find('#') {
            Some(at) => (raw[..at].trim(), Some(raw[at..].trim())),
            None => (line, None),
        };
        if let Some(c) = comment {
            if let Some(parsed) = parse_allow(c, rel_path, line_no, &mut errors) {
                if content.is_empty() {
                    pending.push(parsed);
                } else {
                    let (rule, _, reason) = parsed;
                    m.suppressions.push(Suppression {
                        rule,
                        line: line_no,
                        covers: line_no,
                        reason,
                    });
                }
            }
        }
        if content.is_empty() {
            continue;
        }
        for (rule, at, reason) in pending.drain(..) {
            m.suppressions.push(Suppression {
                rule,
                line: at,
                covers: line_no,
                reason,
            });
        }

        // Section headers.
        if content.starts_with('[') {
            section = content
                .trim_start_matches('[')
                .trim_end_matches(']')
                .trim()
                .to_string();
            // `[dependencies.key]` sub-table: synthesize the entry now;
            // its attribute lines below fill it in.
            for (prefix, dev) in [("dependencies.", false), ("dev-dependencies.", true)] {
                if let Some(key) = section.strip_prefix(prefix) {
                    m.deps.push(Dep {
                        key: unquote(key).to_string(),
                        dev,
                        line: line_no,
                        path: None,
                        package: None,
                        workspace: false,
                    });
                }
            }
            continue;
        }

        let Some((key, value)) = content.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();

        match section.as_str() {
            "package" if key == "name" => {
                m.package_name = Some(unquote(value).to_string());
            }
            "dependencies" | "dev-dependencies" => {
                let dev = section == "dev-dependencies";
                // `key.workspace = true` shorthand.
                if let Some(name) = key.strip_suffix(".workspace") {
                    m.deps.push(Dep {
                        key: unquote(name).to_string(),
                        dev,
                        line: line_no,
                        path: None,
                        package: None,
                        workspace: value == "true",
                    });
                    continue;
                }
                m.deps.push(Dep {
                    key: unquote(key).to_string(),
                    dev,
                    line: line_no,
                    path: attr(value, "path"),
                    package: attr(value, "package"),
                    workspace: has_flag(value, "workspace"),
                });
            }
            "workspace.dependencies" => {
                m.workspace_deps.insert(
                    unquote(key).to_string(),
                    (attr(value, "path"), attr(value, "package")),
                );
            }
            s if s.starts_with("dependencies.") || s.starts_with("dev-dependencies.") => {
                if let Some(dep) = m.deps.last_mut() {
                    match key {
                        "path" => dep.path = Some(unquote(value).to_string()),
                        "package" => dep.package = Some(unquote(value).to_string()),
                        "workspace" => dep.workspace = value == "true",
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    // A trailing full-line suppression annotating nothing: covers 0, so
    // it surfaces as unused.
    for (rule, at, reason) in pending {
        m.suppressions.push(Suppression {
            rule,
            line: at,
            covers: 0,
            reason,
        });
    }
    (m, errors)
}

/// Parse a `# detlint::allow(rule): reason` comment; `None` when the
/// comment is not a suppression at all. Malformed suppressions become
/// findings, exactly like the `//` form.
fn parse_allow(
    comment: &str,
    rel_path: &str,
    line: u32,
    errors: &mut Vec<Finding>,
) -> Option<(Rule, u32, String)> {
    let body = comment.trim_start_matches('#').trim_start();
    if !body.starts_with("detlint::allow") {
        return None;
    }
    let mut err = |message: String| {
        errors.push(Finding {
            rule: Rule::Suppression,
            file: rel_path.to_string(),
            line,
            message,
            severity: Severity::Error,
        });
    };
    let Some(rest) = body.strip_prefix("detlint::allow(") else {
        err("malformed suppression: expected `detlint::allow(rule): reason`".to_string());
        return None;
    };
    let Some(close) = rest.find(')') else {
        err("malformed suppression: unterminated rule name".to_string());
        return None;
    };
    let rule_name = rest[..close].trim();
    let Some(rule) = Rule::suppressible(rule_name) else {
        err(format!(
            "suppression names unknown or unsuppressible rule `{rule_name}`"
        ));
        return None;
    };
    let after = &rest[close + 1..];
    let Some(reason) = after.strip_prefix(':').map(str::trim) else {
        err("malformed suppression: expected `: reason` after the rule name".to_string());
        return None;
    };
    if reason.is_empty() {
        err("suppression has an empty reason; justify the exception".to_string());
        return None;
    }
    Some((rule, line, reason.to_string()))
}

/// Extract `name = "value"` from an inline table (or a bare string
/// value when `name` is "path"/"package" and the whole value is one
/// string — `foo = "1.0"` has neither).
fn attr(value: &str, name: &str) -> Option<String> {
    let inner = value.strip_prefix('{')?.strip_suffix('}')?;
    for part in inner.split(',') {
        // Parts without `=` (array elements from a split `features`
        // list) are skipped, not fatal.
        if let Some((k, v)) = part.split_once('=') {
            if k.trim() == name {
                return Some(unquote(v.trim()).to_string());
            }
        }
    }
    None
}

/// Whether an inline table has `name = true`.
fn has_flag(value: &str, name: &str) -> bool {
    let Some(inner) = value.strip_prefix('{').and_then(|v| v.strip_suffix('}')) else {
        return false;
    };
    inner.split(',').any(|part| {
        part.split_once('=')
            .map(|(k, v)| k.trim() == name && v.trim() == "true")
            .unwrap_or(false)
    })
}

fn unquote(s: &str) -> &str {
    s.trim().trim_start_matches('"').trim_end_matches('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "mustaple-netsim"
version.workspace = true

[dependencies]
asn1 = { workspace = true }
telemetry = { workspace = true }
local = { path = "../local", package = "real-local" }

[dev-dependencies]
proptest.workspace = true
"#;

    #[test]
    fn parses_package_and_deps() {
        let (m, errs) = parse("crates/netsim/Cargo.toml", SAMPLE);
        assert!(errs.is_empty());
        assert_eq!(m.package_name.as_deref(), Some("mustaple-netsim"));
        assert_eq!(m.deps.len(), 4);
        assert!(m.deps[0].workspace && !m.deps[0].dev);
        let local = &m.deps[2];
        assert_eq!(local.path.as_deref(), Some("../local"));
        assert_eq!(local.package.as_deref(), Some("real-local"));
        let dev = &m.deps[3];
        assert!(dev.dev && dev.workspace);
        assert_eq!(dev.key, "proptest");
    }

    #[test]
    fn parses_workspace_dep_map() {
        let (m, _) = parse(
            "Cargo.toml",
            "[workspace.dependencies]\n\
             rand = { path = \"crates/rand\" }\n\
             telemetry = { path = \"crates/telemetry\", package = \"mustaple-telemetry\" }\n",
        );
        assert_eq!(
            m.workspace_deps.get("telemetry"),
            Some(&(
                Some("crates/telemetry".to_string()),
                Some("mustaple-telemetry".to_string())
            ))
        );
    }

    #[test]
    fn dep_subtables() {
        let (m, _) = parse(
            "Cargo.toml",
            "[dependencies.foo]\npath = \"../foo\"\nfeatures = [\"x\"]\n",
        );
        assert_eq!(m.deps.len(), 1);
        assert_eq!(m.deps[0].path.as_deref(), Some("../foo"));
    }

    #[test]
    fn suppressions_trailing_and_leading() {
        let src = "\
[dependencies]
# detlint::allow(unused-dep): kept for the examples
tls = { workspace = true }
rand = { workspace = true } # detlint::allow(layering): transition
";
        let (m, errs) = parse("Cargo.toml", src);
        assert!(errs.is_empty());
        assert_eq!(m.suppressions.len(), 2);
        assert_eq!(m.suppressions[0].covers, 3);
        assert_eq!(m.suppressions[1].covers, 4);
    }

    #[test]
    fn malformed_suppression_is_error() {
        let (_, errs) = parse("Cargo.toml", "# detlint::allow(unused-dep) oops\n");
        assert_eq!(errs.len(), 1);
    }
}
