//! Lint policy: which rules apply where.
//!
//! The policy is code, not a config file, on purpose: the invariants it
//! encodes (which crates produce artifacts, which crates own wall-clock
//! reads, which files are the scan hot path) change only when the
//! workspace architecture changes, and a PR that changes the
//! architecture should have to change this file in the same diff.

/// Lint configuration for one root directory.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose outputs feed scan artifacts (CSV rows, telemetry,
    /// figures). The unordered-iter rule applies only here: iterating a
    /// `HashMap`/`HashSet` in these crates risks artifact-order
    /// nondeterminism.
    pub artifact_crates: Vec<String>,
    /// Crates allowed to read the wall clock. Telemetry spans and
    /// criterion timings are *measurements about the run* (excluded from
    /// artifact equality); everything else must be simulation time.
    pub wall_clock_allowed_crates: Vec<String>,
    /// Scan-hot-path files under the panic-hygiene ratchet, as
    /// `/`-separated paths relative to the root.
    pub hot_path_files: Vec<String>,
    /// Path prefixes (relative, `/`-separated) skipped entirely —
    /// lint-rule fixtures live here.
    pub exclude: Vec<String>,
    /// Path of the panic-hygiene baseline, relative to the root.
    pub baseline_path: String,
}

impl Config {
    /// The policy for this workspace.
    pub fn workspace() -> Config {
        Config {
            artifact_crates: vec![
                "scanner".into(),
                "netsim".into(),
                "ocsp".into(),
                "analysis".into(),
                "core".into(),
            ],
            wall_clock_allowed_crates: vec!["telemetry".into(), "criterion".into(), "bench".into()],
            hot_path_files: vec![
                "crates/ocsp/src/responder.rs".into(),
                "crates/ocsp/src/validate.rs".into(),
                "crates/scanner/src/hourly.rs".into(),
                "crates/scanner/src/reactor.rs".into(),
                "crates/scanner/src/consistency.rs".into(),
                "crates/scanner/src/alexa1m.rs".into(),
                "crates/scanner/src/cdnlog.rs".into(),
                "crates/scanner/src/executor.rs".into(),
                "crates/netsim/src/world.rs".into(),
                "crates/netsim/src/cdn.rs".into(),
                "crates/ecosystem/src/stream.rs".into(),
                "crates/analysis/src/stream.rs".into(),
                "crates/memprof/src/lib.rs".into(),
            ],
            exclude: vec!["crates/detlint/tests/fixtures".into()],
            baseline_path: "lint-baseline.json".into(),
        }
    }

    /// An empty policy for fixture trees; tests fill in what they need.
    pub fn bare() -> Config {
        Config {
            artifact_crates: Vec::new(),
            wall_clock_allowed_crates: Vec::new(),
            hot_path_files: Vec::new(),
            exclude: Vec::new(),
            baseline_path: "lint-baseline.json".into(),
        }
    }

    /// The crate a workspace-relative path belongs to: `crates/<name>/…`
    /// maps to `<name>`; the umbrella package's `src`/`tests`/`examples`
    /// map to `study`.
    pub fn crate_of(rel_path: &str) -> &str {
        let mut parts = rel_path.split('/');
        if parts.next() == Some("crates") {
            if let Some(name) = parts.next() {
                return name;
            }
        }
        "study"
    }

    /// Whether `rel_path` is a crate root (where `#![forbid(unsafe_code)]`
    /// must live): `src/lib.rs`, `src/main.rs`, or `src/bin/*.rs` of any
    /// crate, including the umbrella package.
    pub fn is_crate_root(rel_path: &str) -> bool {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let tail: &[&str] = if parts.first() == Some(&"crates") && parts.len() > 2 {
            &parts[2..]
        } else {
            &parts[..]
        };
        match tail {
            ["src", f] => *f == "lib.rs" || *f == "main.rs",
            ["src", "bin", f] => f.ends_with(".rs"),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_mapping() {
        assert_eq!(Config::crate_of("crates/scanner/src/hourly.rs"), "scanner");
        assert_eq!(Config::crate_of("src/lib.rs"), "study");
        assert_eq!(Config::crate_of("tests/determinism.rs"), "study");
    }

    #[test]
    fn crate_roots() {
        assert!(Config::is_crate_root("crates/ocsp/src/lib.rs"));
        assert!(Config::is_crate_root("crates/detlint/src/main.rs"));
        assert!(Config::is_crate_root("crates/bench/src/bin/figures.rs"));
        assert!(Config::is_crate_root("src/lib.rs"));
        assert!(!Config::is_crate_root("crates/ocsp/src/responder.rs"));
        assert!(!Config::is_crate_root("crates/asn1/tests/roundtrip.rs"));
        assert!(!Config::is_crate_root("examples/quickstart.rs"));
    }
}
