//! Lint policy: which rules apply where.
//!
//! The policy is code, not a config file, on purpose: the invariants it
//! encodes (which crates produce artifacts, which crates own wall-clock
//! reads, which files are the scan hot path) change only when the
//! workspace architecture changes, and a PR that changes the
//! architecture should have to change this file in the same diff.

/// One crate's position in the declared dependency DAG.
#[derive(Debug, Clone)]
pub struct CrateSpec {
    /// Crate id — the directory name under `crates/`, or `study` for
    /// the umbrella package.
    pub id: String,
    /// The name code imports it under (`use <lib>::…`), underscored.
    pub lib: String,
    /// Layer index for the DOT export and the inversion check: every
    /// normal dependency must point at a strictly lower layer. `None`
    /// exempts the crate from the layer ordering (cycle detection still
    /// applies).
    pub layer: Option<u32>,
    /// Crate ids this crate may depend on (normal or dev).
    pub deps: Vec<String>,
}

impl CrateSpec {
    fn new(id: &str, lib: &str, layer: u32, deps: &[&str]) -> CrateSpec {
        CrateSpec {
            id: id.into(),
            lib: lib.into(),
            layer: Some(layer),
            deps: deps.iter().map(|d| d.to_string()).collect(),
        }
    }
}

/// File paths the metric-catalog closure checks read.
#[derive(Debug, Clone)]
pub struct CatalogPolicy {
    /// The catalog module, relative to the root (its `pub const NAME:
    /// &str = "…";` items are the metric namespace).
    pub module: String,
    /// The committed Prometheus exposition baseline; every family in it
    /// must be declared in the catalog.
    pub prom_baseline: String,
    /// The teldiff tolerance file; every `["metric"]` section must be
    /// declared in the catalog.
    pub teldiff: String,
}

/// Lint configuration for one root directory.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose outputs feed scan artifacts (CSV rows, telemetry,
    /// figures). The unordered-iter rule applies only here: iterating a
    /// `HashMap`/`HashSet` in these crates risks artifact-order
    /// nondeterminism.
    pub artifact_crates: Vec<String>,
    /// Crates allowed to read the wall clock. Telemetry spans and
    /// criterion timings are *measurements about the run* (excluded from
    /// artifact equality); everything else must be simulation time.
    pub wall_clock_allowed_crates: Vec<String>,
    /// Scan-hot-path files under the panic-hygiene ratchet, as
    /// `/`-separated paths relative to the root.
    pub hot_path_files: Vec<String>,
    /// Path prefixes (relative, `/`-separated) skipped entirely —
    /// lint-rule fixtures live here.
    pub exclude: Vec<String>,
    /// Path of the panic-hygiene baseline, relative to the root.
    pub baseline_path: String,
    /// The declared crate DAG. Empty disables the layering pack.
    pub layering: Vec<CrateSpec>,
    /// Crates whose telemetry call sites must route metric names through
    /// `telemetry::catalog` constants. Empty disables the call-site
    /// check.
    pub metric_crates: Vec<String>,
    /// Catalog ↔ baseline ↔ tolerance closure policy. `None` disables
    /// the metric-catalog pack entirely.
    pub catalog: Option<CatalogPolicy>,
    /// Crates under the float-determinism rule (artifact crates plus the
    /// figure/bench producers). Empty disables the pack.
    pub float_crates: Vec<String>,
}

impl Config {
    /// The policy for this workspace.
    pub fn workspace() -> Config {
        Config {
            artifact_crates: vec![
                "scanner".into(),
                "netsim".into(),
                "ocsp".into(),
                "analysis".into(),
                "core".into(),
                "opsmon".into(),
            ],
            wall_clock_allowed_crates: vec!["telemetry".into(), "criterion".into(), "bench".into()],
            hot_path_files: vec![
                "crates/ocsp/src/responder.rs".into(),
                "crates/ocsp/src/validate.rs".into(),
                "crates/scanner/src/hourly.rs".into(),
                "crates/scanner/src/reactor.rs".into(),
                "crates/scanner/src/consistency.rs".into(),
                "crates/scanner/src/alexa1m.rs".into(),
                "crates/scanner/src/cdnlog.rs".into(),
                "crates/scanner/src/executor.rs".into(),
                "crates/netsim/src/world.rs".into(),
                "crates/netsim/src/cdn.rs".into(),
                "crates/ecosystem/src/stream.rs".into(),
                "crates/analysis/src/stream.rs".into(),
                "crates/memprof/src/lib.rs".into(),
            ],
            exclude: vec!["crates/detlint/tests/fixtures".into()],
            baseline_path: "lint-baseline.json".into(),
            layering: Self::workspace_layering(),
            metric_crates: vec![
                "netsim".into(),
                "ocsp".into(),
                "scanner".into(),
                "webserver".into(),
                "ecosystem".into(),
                "core".into(),
                "bench".into(),
                "study".into(),
                "opsmon".into(),
                "ocspd".into(),
            ],
            catalog: Some(CatalogPolicy {
                module: "crates/telemetry/src/catalog.rs".into(),
                prom_baseline: "results/telemetry.prom".into(),
                teldiff: "teldiff.toml".into(),
            }),
            float_crates: vec![
                "scanner".into(),
                "netsim".into(),
                "ocsp".into(),
                "analysis".into(),
                "core".into(),
                "ecosystem".into(),
                "bench".into(),
                "study".into(),
            ],
        }
    }

    /// The declared workspace DAG: who may depend on whom, and at which
    /// layer. Allowed sets are exact — a new edge must be added here (in
    /// the same diff that justifies it) before `cargo` metadata may grow
    /// it. Layers order the DOT export and catch inversions: every
    /// normal dependency points at a strictly lower layer (dev
    /// dependencies are exempt from the ordering, since test harness
    /// edges like telemetry → proptest legitimately point upward).
    fn workspace_layering() -> Vec<CrateSpec> {
        vec![
            // Layer 0: leaves — no workspace dependencies.
            CrateSpec::new("rand", "rand", 0, &[]),
            CrateSpec::new("asn1", "asn1", 0, &["proptest"]),
            CrateSpec::new("memprof", "memprof", 0, &[]),
            CrateSpec::new("detlint", "detlint", 0, &[]),
            CrateSpec::new("telemetry", "telemetry", 0, &["proptest"]),
            // Layer 1: primitives over the leaves.
            CrateSpec::new("simcrypto", "simcrypto", 1, &["rand", "proptest"]),
            CrateSpec::new("proptest", "proptest", 1, &["rand"]),
            CrateSpec::new("opsmon", "opsmon", 1, &["asn1", "telemetry", "proptest"]),
            CrateSpec::new("criterion", "criterion", 1, &["telemetry"]),
            CrateSpec::new("analysis", "analysis", 1, &["asn1", "proptest"]),
            CrateSpec::new("teldiff", "teldiff", 1, &["telemetry"]),
            // Layer 2–3: the PKI and protocol stack.
            CrateSpec::new("pki", "pki", 2, &["asn1", "simcrypto", "rand", "proptest"]),
            CrateSpec::new(
                "ocsp",
                "ocsp",
                3,
                &["asn1", "simcrypto", "pki", "rand", "telemetry", "proptest"],
            ),
            CrateSpec::new("tls", "tls", 3, &["asn1", "pki", "rand"]),
            // Layer 4–5: simulated infrastructure and its clients.
            CrateSpec::new("netsim", "netsim", 4, &["asn1", "telemetry", "simcrypto"]),
            CrateSpec::new(
                "ocspd",
                "ocspd",
                4,
                &["asn1", "pki", "ocsp", "rand", "telemetry", "opsmon"],
            ),
            CrateSpec::new(
                "webserver",
                "webserver",
                4,
                &["asn1", "pki", "ocsp", "tls", "rand", "telemetry"],
            ),
            CrateSpec::new(
                "browser",
                "browser",
                5,
                &["asn1", "pki", "ocsp", "tls", "webserver"],
            ),
            CrateSpec::new(
                "ecosystem",
                "ecosystem",
                5,
                &["asn1", "pki", "ocsp", "netsim", "rand", "telemetry"],
            ),
            // Layer 6–7: the scan pipelines and the study facade.
            CrateSpec::new(
                "scanner",
                "scanner",
                6,
                &[
                    "asn1",
                    "pki",
                    "ocsp",
                    "netsim",
                    "ecosystem",
                    "analysis",
                    "rand",
                    "telemetry",
                    "opsmon",
                    "proptest",
                ],
            ),
            CrateSpec::new(
                "core",
                "mustaple",
                7,
                &[
                    "asn1",
                    "simcrypto",
                    "pki",
                    "ocsp",
                    "netsim",
                    "tls",
                    "webserver",
                    "browser",
                    "ecosystem",
                    "scanner",
                    "analysis",
                    "telemetry",
                    "opsmon",
                    "proptest",
                ],
            ),
            // Layer 8–9: harnesses over everything.
            CrateSpec::new(
                "bench",
                "mustaple_bench",
                8,
                &[
                    "core",
                    "asn1",
                    "simcrypto",
                    "pki",
                    "ocsp",
                    "netsim",
                    "tls",
                    "webserver",
                    "browser",
                    "ecosystem",
                    "scanner",
                    "analysis",
                    "telemetry",
                    "rand",
                    "memprof",
                    "criterion",
                    "ocspd",
                ],
            ),
            CrateSpec::new(
                "study",
                "mustaple_study",
                9,
                &[
                    "core",
                    "bench",
                    "asn1",
                    "simcrypto",
                    "pki",
                    "ocsp",
                    "netsim",
                    "tls",
                    "webserver",
                    "browser",
                    "ecosystem",
                    "scanner",
                    "analysis",
                    "telemetry",
                    "rand",
                    "proptest",
                ],
            ),
        ]
    }

    /// An empty policy for fixture trees; tests fill in what they need.
    pub fn bare() -> Config {
        Config {
            artifact_crates: Vec::new(),
            wall_clock_allowed_crates: Vec::new(),
            hot_path_files: Vec::new(),
            exclude: Vec::new(),
            baseline_path: "lint-baseline.json".into(),
            layering: Vec::new(),
            metric_crates: Vec::new(),
            catalog: None,
            float_crates: Vec::new(),
        }
    }

    /// The crate a workspace-relative path belongs to: `crates/<name>/…`
    /// maps to `<name>`; the umbrella package's `src`/`tests`/`examples`
    /// map to `study`.
    pub fn crate_of(rel_path: &str) -> &str {
        let mut parts = rel_path.split('/');
        if parts.next() == Some("crates") {
            if let Some(name) = parts.next() {
                return name;
            }
        }
        "study"
    }

    /// Whether `rel_path` is a crate root (where `#![forbid(unsafe_code)]`
    /// must live): `src/lib.rs`, `src/main.rs`, or `src/bin/*.rs` of any
    /// crate, including the umbrella package.
    pub fn is_crate_root(rel_path: &str) -> bool {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let tail: &[&str] = if parts.first() == Some(&"crates") && parts.len() > 2 {
            &parts[2..]
        } else {
            &parts[..]
        };
        match tail {
            ["src", f] => *f == "lib.rs" || *f == "main.rs",
            ["src", "bin", f] => f.ends_with(".rs"),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_mapping() {
        assert_eq!(Config::crate_of("crates/scanner/src/hourly.rs"), "scanner");
        assert_eq!(Config::crate_of("src/lib.rs"), "study");
        assert_eq!(Config::crate_of("tests/determinism.rs"), "study");
    }

    #[test]
    fn crate_roots() {
        assert!(Config::is_crate_root("crates/ocsp/src/lib.rs"));
        assert!(Config::is_crate_root("crates/detlint/src/main.rs"));
        assert!(Config::is_crate_root("crates/bench/src/bin/figures.rs"));
        assert!(Config::is_crate_root("src/lib.rs"));
        assert!(!Config::is_crate_root("crates/ocsp/src/responder.rs"));
        assert!(!Config::is_crate_root("crates/asn1/tests/roundtrip.rs"));
        assert!(!Config::is_crate_root("examples/quickstart.rs"));
    }
}
