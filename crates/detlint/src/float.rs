//! The float-determinism pack.
//!
//! Floating-point addition is not associative: summing the same `f64`
//! values in two different orders can produce results differing in the
//! last ulp — enough to break the byte-identical artifact invariant
//! when the iteration order is a `HashMap`'s. Canonical-order folds
//! (over `Vec`s, slices, `BTreeMap`s) are fine; hash-order folds are
//! not, unless routed through the blessed order-insensitive helpers
//! (`Welford` accumulators, `StreamingCdf`, or `stats::sum_sorted`).
//!
//! Two token-level patterns are flagged in the configured crates:
//!
//! * **A** — a statement that mentions a declared hash collection,
//!   calls `.sum(`/`.fold(`/`.product(`, and shows `f64` evidence (an
//!   `f64` token, a float literal, or a declared-`f64` binding);
//! * **B** — a `for … in <hash>` loop whose body compound-assigns
//!   (`+=`, `-=`, `*=`) into a declared-`f64` binding (or shows float
//!   evidence on the assignment statement).
//!
//! Like unordered-iter, this is a heuristic, not type inference; it is
//! deliberately narrow (hash-typed names only) so canonical `Vec`
//! sums never need a suppression.

use crate::lexer::{Token, TokenKind};
use crate::parse::FileModel;
use crate::report::{Finding, Rule, Severity};
use crate::rules::{hash_collection_names, FileContext};

/// Identifiers that mark an order-insensitive accumulation: findings in
/// a statement/loop that mentions one of these are skipped.
const BLESSED: &[&str] = &["Welford", "StreamingCdf", "sum_sorted"];

const FOLD_METHODS: &[&str] = &["sum", "fold", "product"];

fn finding(ctx: &FileContext<'_>, line: u32, message: String) -> Finding {
    Finding {
        rule: Rule::FloatDeterminism,
        file: ctx.rel_path.to_string(),
        line,
        message,
        severity: Severity::Error,
    }
}

/// Names declared with an `f64` type ascription or initialized from a
/// float literal (`let mut acc = 0.0`).
fn f64_names(t: &[Token]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut declare = |name: &str| {
        if !out.iter().any(|d| d == name) {
            out.push(name.to_string());
        }
    };
    for i in 0..t.len() {
        // `name : [&][mut] f64`
        if t[i].is_ident("f64") {
            let mut j = i;
            while j > 0 && (t[j - 1].is_punct("&") || t[j - 1].is_ident("mut")) {
                j -= 1;
            }
            if j >= 2
                && t[j - 1].is_punct(":")
                && !(j >= 3 && t[j - 2].is_punct(":"))
                && t[j - 2].kind == TokenKind::Ident
            {
                declare(&t[j - 2].text);
            }
        }
        // `name = <float literal>`
        if t[i].kind == TokenKind::Number
            && is_float_literal(&t[i].text)
            && i >= 2
            && t[i - 1].is_punct("=")
            && t[i - 2].kind == TokenKind::Ident
        {
            declare(&t[i - 2].text);
        }
    }
    out
}

fn is_float_literal(text: &str) -> bool {
    text.contains('.') || text.ends_with("f64") || text.ends_with("f32")
}

fn mentions(t: &[Token], names: &[String]) -> bool {
    t.iter()
        .any(|tok| tok.kind == TokenKind::Ident && names.iter().any(|n| *n == tok.text))
}

fn mentions_strs(t: &[Token], names: &[&str]) -> bool {
    t.iter()
        .any(|tok| tok.kind == TokenKind::Ident && names.contains(&tok.text.as_str()))
}

/// Evidence that a statement accumulates `f64`s.
fn f64_evidence(t: &[Token], f64s: &[String]) -> bool {
    t.iter().any(|tok| {
        (tok.kind == TokenKind::Ident && tok.text == "f64")
            || (tok.kind == TokenKind::Number && is_float_literal(&tok.text))
    }) || mentions(t, f64s)
}

/// **float-determinism** — run both patterns over one file.
/// `model` supplies the `#[cfg(test)]` ranges; test code is exempt.
pub fn float_determinism(ctx: &FileContext<'_>, model: &FileModel) -> Vec<Finding> {
    let t = ctx.tokens;
    let hashes = hash_collection_names(t);
    if hashes.is_empty() {
        return Vec::new();
    }
    let f64s = f64_names(t);
    let mut out = Vec::new();

    // Pattern A: statement-level fold. Statements are token runs between
    // `;` / `{` / `}` boundaries — coarse, but co-occurrence within one
    // run is exactly the signal wanted.
    let mut start = 0usize;
    for i in 0..=t.len() {
        let boundary =
            i == t.len() || t[i].is_punct(";") || t[i].is_punct("{") || t[i].is_punct("}");
        if !boundary {
            continue;
        }
        let stmt = &t[start..i];
        start = i + 1;
        if stmt.is_empty() || mentions_strs(stmt, BLESSED) {
            continue;
        }
        let fold_at = stmt.windows(3).position(|w| {
            w[0].is_punct(".")
                && w[1].kind == TokenKind::Ident
                && FOLD_METHODS.contains(&w[1].text.as_str())
                && (w[2].is_punct("(") || w[2].is_punct(":"))
        });
        let Some(at) = fold_at else { continue };
        if !mentions(stmt, &hashes) || !f64_evidence(stmt, &f64s) {
            continue;
        }
        let line = stmt[at + 1].line;
        if model.in_test_range(line) {
            continue;
        }
        out.push(finding(
            ctx,
            line,
            format!(
                "`.{}()` accumulates f64 over HashMap/HashSet iteration order; \
                 route it through Welford/StreamingCdf/stats::sum_sorted (or sort first)",
                stmt[at + 1].text
            ),
        ));
    }

    // Pattern B: `for … in <hash> { … acc += … }`.
    let mut i = 0usize;
    while i < t.len() {
        if !t[i].is_ident("for") {
            i += 1;
            continue;
        }
        // Find the loop's opening brace; the header is everything up to
        // it.
        let Some(open) = (i..t.len()).find(|&j| t[j].is_punct("{")) else {
            break;
        };
        let header = &t[i..open];
        if !header.iter().any(|tok| tok.is_ident("in")) || !mentions(header, &hashes) {
            i += 1;
            continue;
        }
        // Body: matched braces.
        let mut depth = 0i32;
        let mut close = open;
        for j in open..t.len() {
            if t[j].is_punct("{") {
                depth += 1;
            } else if t[j].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
        }
        let body = &t[open..close];
        if !mentions_strs(body, BLESSED) {
            for w in body.windows(4) {
                let compound = (w[1].is_punct("+") || w[1].is_punct("-") || w[1].is_punct("*"))
                    && w[2].is_punct("=")
                    && !w[3].is_punct("="); // `==` comparison safety
                if !compound || w[0].kind != TokenKind::Ident {
                    continue;
                }
                let target_is_f64 = f64s.iter().any(|n| *n == w[0].text);
                let float_rhs = w[3].kind == TokenKind::Number && is_float_literal(&w[3].text);
                if !(target_is_f64 || float_rhs) || model.in_test_range(w[1].line) {
                    continue;
                }
                out.push(finding(
                    ctx,
                    w[1].line,
                    format!(
                        "`{} {}=` accumulates f64 inside a HashMap/HashSet loop; \
                         route it through Welford/StreamingCdf/stats::sum_sorted \
                         (or sort first)",
                        w[0].text, w[1].text
                    ),
                ));
            }
        }
        i = open + 1;
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse;

    fn run(src: &str) -> Vec<Finding> {
        let tokens: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::LineComment && t.kind != TokenKind::BlockComment)
            .collect();
        let model = parse::model(&tokens);
        let ctx = FileContext {
            rel_path: "crates/scanner/src/x.rs",
            crate_name: "scanner",
            tokens: &tokens,
        };
        float_determinism(&ctx, &model)
    }

    #[test]
    fn flags_hash_order_f64_sum() {
        let src = r"
            let weights: HashMap<String, f64> = HashMap::new();
            let total: f64 = weights.values().sum();
        ";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("sum"));
    }

    #[test]
    fn flags_turbofish_sum() {
        let src = r"
            let m: HashMap<u64, f64> = HashMap::new();
            let t = m.values().copied().sum::<f64>();
        ";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn flags_compound_assign_in_hash_loop() {
        let src = r"
            let m: HashMap<u64, f64> = HashMap::new();
            let mut acc = 0.0;
            for (_, v) in &m {
                acc += v;
            }
        ";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("acc"));
    }

    #[test]
    fn vec_sums_are_canonical() {
        let src = r"
            let m: HashMap<u64, f64> = HashMap::new();
            let weights: Vec<f64> = vec![1.0, 2.0];
            let total: f64 = weights.iter().sum();
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn u64_hash_sums_are_exact() {
        let src = r"
            let m: HashMap<u64, u64> = HashMap::new();
            let total: u64 = m.values().sum();
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn blessed_helpers_pass() {
        let src = r"
            let m: HashMap<u64, f64> = HashMap::new();
            let total = sum_sorted(m.values().copied());
            let mut w = Welford::new();
            for (_, v) in &m {
                w.push(*v);
            }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn integer_counter_in_hash_loop_is_fine() {
        let src = r"
            let m: HashMap<u64, u64> = HashMap::new();
            let mut n = 0u64;
            for (_, v) in &m {
                n += v;
            }
        ";
        assert!(run(src).is_empty());
    }
}
