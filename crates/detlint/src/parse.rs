//! A recursive-descent pass over the token stream: the "almost a
//! parser" layer the cross-crate rules build on.
//!
//! [`lexer`](crate::lexer) gives a flat token stream; the workspace
//! rules (layering, metric-catalog, float-determinism) need a little
//! more shape than that — which crates a file mentions, which string
//! constants it declares, which method calls it makes and with what
//! first argument, and which line ranges are test-only. This module
//! extracts exactly that into a [`FileModel`], once per file, so every
//! workspace pass reads the same pre-digested view instead of re-walking
//! tokens.
//!
//! It is still not type-aware (no `syn`, no name resolution): the model
//! is a set of token-level facts chosen so that the rules built on it
//! are conservative in the right direction — a `use` head is exact, a
//! call-site classification can say "don't know" (`FirstArg::Other`),
//! and anything inside `#[cfg(test)]` is attributable as test-only.

use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;

/// Classification of the first argument at a call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FirstArg {
    /// A string literal, decoded (`"net.request"`).
    Str(String),
    /// A path expression whose last segment is SCREAMING_CASE — a
    /// constant reference. Carries the last segment (`NET_REQUEST`).
    Const(String),
    /// A `format!(…)` invocation: the value is built at runtime.
    Dynamic,
    /// Anything else (variables, expressions, no argument).
    Other,
}

/// One `.method(first_arg, …)` call site.
#[derive(Debug, Clone)]
pub struct MethodCall {
    /// The method name.
    pub method: String,
    /// 1-based line of the method name token.
    pub line: u32,
    /// What the first argument looks like.
    pub arg: FirstArg,
}

/// One `const NAME: &str = "value";` declaration.
#[derive(Debug, Clone)]
pub struct StrConst {
    /// The constant's name.
    pub name: String,
    /// The decoded string value.
    pub value: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// Kinds of item declarations recorded in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn`
    Fn,
    /// `struct`
    Struct,
    /// `enum`
    Enum,
    /// `trait`
    Trait,
    /// `mod`
    Mod,
    /// `const`
    Const,
    /// `static`
    Static,
    /// `type`
    TypeAlias,
}

/// One item declaration (any nesting depth).
#[derive(Debug, Clone)]
pub struct Item {
    /// What kind of item.
    pub kind: ItemKind,
    /// Its name.
    pub name: String,
    /// 1-based line of the keyword.
    pub line: u32,
}

/// The extracted per-file facts.
#[derive(Debug, Default)]
pub struct FileModel {
    /// External heads of `use` declarations (first path segment that is
    /// not `crate`/`self`/`super`), with the line of each.
    pub use_heads: Vec<(String, u32)>,
    /// Identifiers in path-head position (`X` in `X::y`, not preceded by
    /// `::` or `.`), with the line of each occurrence.
    pub path_heads: Vec<(String, u32)>,
    /// Item declarations.
    pub items: Vec<Item>,
    /// `const NAME: &str = "…";` declarations.
    pub str_consts: Vec<StrConst>,
    /// Method call sites with classified first arguments.
    pub calls: Vec<MethodCall>,
    /// Inclusive line ranges under `#[cfg(test)]` / `#[test]`.
    pub test_ranges: Vec<(u32, u32)>,
    /// Every identifier in the file (including test code).
    pub idents: BTreeSet<String>,
    /// Identifiers outside the test ranges.
    pub non_test_idents: BTreeSet<String>,
}

impl FileModel {
    /// Whether `line` falls inside a `#[cfg(test)]` / `#[test]` region.
    pub fn in_test_range(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }
}

/// Build the model from a file's code tokens (comments filtered out).
pub fn model(tokens: &[Token]) -> FileModel {
    let mut m = FileModel {
        test_ranges: test_ranges(tokens),
        ..FileModel::default()
    };

    let t = tokens;
    let mut i = 0usize;
    while i < t.len() {
        let tok = &t[i];
        if tok.kind == TokenKind::Ident {
            m.idents.insert(tok.text.clone());
            if !m.in_test_range(tok.line) {
                m.non_test_idents.insert(tok.text.clone());
            }
        }

        // `use` declarations.
        if tok.is_ident("use") {
            i = use_decl(t, i + 1, &mut m);
            continue;
        }

        // Path heads: `X :: y` where the token before `X` is neither `:`
        // (mid-path) nor `.` (turbofish on a method), and the token after
        // `::` is an identifier (not a turbofish `<`).
        if tok.kind == TokenKind::Ident
            && is_path_sep(t, i + 1)
            && i + 3 < t.len()
            && t[i + 3].kind == TokenKind::Ident
            && !(i > 0 && (t[i - 1].is_punct(":") || t[i - 1].is_punct(".")))
        {
            m.path_heads.push((tok.text.clone(), tok.line));
        }

        // Item declarations.
        if let Some(kind) = item_kind(&tok.text) {
            if tok.kind == TokenKind::Ident
                && i + 1 < t.len()
                && t[i + 1].kind == TokenKind::Ident
                && !(i > 0 && (t[i - 1].is_punct(".") || t[i - 1].is_punct(":")))
            {
                m.items.push(Item {
                    kind,
                    name: t[i + 1].text.clone(),
                    line: tok.line,
                });
            }
        }

        // `const NAME: &str = "value";` (also `&'static str`).
        if tok.is_ident("const") {
            if let Some(c) = str_const(t, i) {
                m.str_consts.push(c);
            }
        }

        // `.method(first_arg` call sites.
        if tok.is_punct(".")
            && i + 2 < t.len()
            && t[i + 1].kind == TokenKind::Ident
            && t[i + 2].is_punct("(")
        {
            m.calls.push(MethodCall {
                method: t[i + 1].text.clone(),
                line: t[i + 1].line,
                arg: classify_first_arg(t, i + 3),
            });
        }

        i += 1;
    }
    m
}

fn item_kind(kw: &str) -> Option<ItemKind> {
    Some(match kw {
        "fn" => ItemKind::Fn,
        "struct" => ItemKind::Struct,
        "enum" => ItemKind::Enum,
        "trait" => ItemKind::Trait,
        "mod" => ItemKind::Mod,
        "const" => ItemKind::Const,
        "static" => ItemKind::Static,
        "type" => ItemKind::TypeAlias,
        _ => return None,
    })
}

/// Is `tokens[i..]` the path separator `::`?
fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    i + 1 < tokens.len() && tokens[i].is_punct(":") && tokens[i + 1].is_punct(":")
}

/// Walk a `use` tree starting after the `use` keyword, collecting the
/// external head of every top-level alternative; returns the index
/// after the terminating `;`.
///
/// `use a::b::{c, d};` has one head (`a`); `use {a::x, b::y};` has two.
/// Heads `crate`/`self`/`super` are internal and not recorded. Every
/// identifier in the tree still lands in the model's `idents` sets —
/// the main loop skips past the tree, and a `use asn1::der;` is the
/// reference that keeps `asn1` out of the unused-dep pass.
fn use_decl(t: &[Token], start: usize, m: &mut FileModel) -> usize {
    let toplevel_brace = start < t.len() && t[start].is_punct("{");
    let mut depth = 0i32;
    let mut at_path_start = true;
    let mut i = start;
    while i < t.len() {
        let tok = &t[i];
        if tok.is_punct(";") && depth == 0 {
            return i + 1;
        }
        if tok.is_punct("{") {
            depth += 1;
            at_path_start = true;
        } else if tok.is_punct("}") {
            depth -= 1;
            at_path_start = false;
        } else if tok.is_punct(",") {
            at_path_start = true;
        } else if tok.kind == TokenKind::Ident {
            let in_test = m.in_test_range(tok.line);
            m.idents.insert(tok.text.clone());
            if !in_test {
                m.non_test_idents.insert(tok.text.clone());
            }
            let head_position = depth == 0 || (toplevel_brace && depth == 1);
            if at_path_start
                && head_position
                && !matches!(tok.text.as_str(), "crate" | "self" | "super" | "as")
            {
                m.use_heads.push((tok.text.clone(), tok.line));
            }
            at_path_start = false;
        }
        i += 1;
    }
    i
}

/// Match `const NAME: &str = "…";` (allowing `&'static str`) at `i`
/// (which holds `const`).
fn str_const(t: &[Token], i: usize) -> Option<StrConst> {
    if i + 2 >= t.len() || t[i + 1].kind != TokenKind::Ident || !t[i + 2].is_punct(":") {
        return None;
    }
    // Don't confuse `const fn` or a `::` path position.
    if is_path_sep(t, i + 2) {
        return None;
    }
    let mut j = i + 3;
    // Type tokens: `&`, optional `'static`, `str`.
    if j < t.len() && t[j].is_punct("&") {
        j += 1;
    }
    if j < t.len() && t[j].kind == TokenKind::Lifetime {
        j += 1;
    }
    if !(j < t.len() && t[j].is_ident("str")) {
        return None;
    }
    j += 1;
    if !(j + 2 < t.len()
        && t[j].is_punct("=")
        && t[j + 1].kind == TokenKind::Str
        && t[j + 2].is_punct(";"))
    {
        return None;
    }
    Some(StrConst {
        name: t[i + 1].text.clone(),
        value: decode_str(&t[j + 1].text),
        line: t[i].line,
    })
}

/// Classify the expression starting at `i` (just inside the call's
/// opening parenthesis) up to the first top-level `,` or the closing
/// `)`.
fn classify_first_arg(t: &[Token], i: usize) -> FirstArg {
    let mut j = i;
    // Skip leading borrows.
    while j < t.len() && (t[j].is_punct("&") || t[j].is_ident("mut")) {
        j += 1;
    }
    if j >= t.len() || t[j].is_punct(")") {
        return FirstArg::Other;
    }
    if t[j].kind == TokenKind::Str {
        return FirstArg::Str(decode_str(&t[j].text));
    }
    if t[j].kind != TokenKind::Ident {
        return FirstArg::Other;
    }
    if j + 1 < t.len() && t[j].is_ident("format") && t[j + 1].is_punct("!") {
        return FirstArg::Dynamic;
    }
    // Walk a plain path: ident (:: ident)*.
    let mut last = &t[j].text;
    let mut k = j;
    while is_path_sep(t, k + 1) && k + 3 < t.len() && t[k + 3].kind == TokenKind::Ident {
        k += 3;
        last = &t[k].text;
    }
    // A bare path expression ends the argument at `,` or `)`.
    if k + 1 < t.len() && (t[k + 1].is_punct(",") || t[k + 1].is_punct(")")) && is_screaming(last) {
        return FirstArg::Const(last.clone());
    }
    FirstArg::Other
}

/// SCREAMING_CASE: at least one uppercase letter, no lowercase.
fn is_screaming(s: &str) -> bool {
    s.chars().any(|c| c.is_ascii_uppercase()) && !s.chars().any(|c| c.is_ascii_lowercase())
}

/// Decode a string-literal token (plain, raw, or byte flavor) to its
/// value. Unknown escapes are kept verbatim — the rules compare decoded
/// values only for ASCII metric names, where every escape form below is
/// already overkill.
pub fn decode_str(text: &str) -> String {
    // Strip prefixes: b"…", r"…", br"…", c"…", with any number of hashes.
    let mut s = text;
    let mut raw = false;
    while !s.is_empty() && !s.starts_with('"') && !s.starts_with('#') {
        raw |= s.starts_with('r');
        s = &s[1..];
    }
    if raw {
        let hashes = s.len() - s.trim_start_matches('#').len();
        let body = &s[hashes..];
        let body = body.strip_prefix('"').unwrap_or(body);
        let body = body.strip_suffix(&"#".repeat(hashes)).unwrap_or(body);
        let body = body.strip_suffix('"').unwrap_or(body);
        return body.to_string();
    }
    let inner = s
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .unwrap_or(s);
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('\'') => out.push('\''),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Find `#[cfg(test)]`-gated (and `#[test]`-attributed) item ranges:
/// from the attribute line through the end of the item it gates
/// (matched braces, or the terminating `;` for brace-less items).
fn test_ranges(t: &[Token]) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        if !(t[i].is_punct("#") && i + 1 < t.len() && t[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_line = t[i].line;
        // Find the matching `]` and check whether the attribute is
        // `cfg(… test …)` or `test`.
        let mut j = i + 2;
        let mut depth = 1i32; // the `[` we just consumed
        let mut is_test_attr = false;
        let is_cfg = j < t.len() && t[j].is_ident("cfg");
        let is_bare_test = j + 1 < t.len() && t[j].is_ident("test") && t[j + 1].is_punct("]");
        while j < t.len() && depth > 0 {
            if t[j].is_punct("[") {
                depth += 1;
            } else if t[j].is_punct("]") {
                depth -= 1;
            } else if is_cfg && t[j].is_ident("test") {
                is_test_attr = true;
            }
            j += 1;
        }
        if is_bare_test {
            is_test_attr = true;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes between this one and the item.
        while j + 1 < t.len() && t[j].is_punct("#") && t[j + 1].is_punct("[") {
            let mut d = 0i32;
            while j < t.len() {
                if t[j].is_punct("[") {
                    d += 1;
                } else if t[j].is_punct("]") {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // The gated item: runs to the matching `}` of its first brace,
        // or to a `;` if no brace opens first (e.g. `use`, `const`).
        let mut end_line = attr_line;
        let mut brace = 0i32;
        let mut saw_brace = false;
        while j < t.len() {
            if t[j].is_punct("{") {
                brace += 1;
                saw_brace = true;
            } else if t[j].is_punct("}") {
                brace -= 1;
                if saw_brace && brace == 0 {
                    end_line = t[j].line;
                    j += 1;
                    break;
                }
            } else if t[j].is_punct(";") && !saw_brace {
                end_line = t[j].line;
                j += 1;
                break;
            }
            end_line = t[j].line;
            j += 1;
        }
        out.push((attr_line, end_line));
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model_of(src: &str) -> FileModel {
        let tokens: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::LineComment && t.kind != TokenKind::BlockComment)
            .collect();
        model(&tokens)
    }

    #[test]
    fn use_heads_flatten_trees() {
        let m = model_of(
            "use std::collections::{HashMap, HashSet};\n\
             use telemetry::catalog::NET_REQUEST;\n\
             pub use crate::inner::Thing;\n\
             use {asn1::Tag, pki::Cert as C};\n",
        );
        let heads: Vec<&str> = m.use_heads.iter().map(|(h, _)| h.as_str()).collect();
        assert_eq!(heads, vec!["std", "telemetry", "asn1", "pki"]);
    }

    #[test]
    fn path_heads_skip_mid_path_and_turbofish() {
        let m = model_of(
            "let v = telemetry::Registry::new();\nlet c: Vec<u8> = x.collect::<Vec<u8>>();\n",
        );
        let heads: Vec<&str> = m.path_heads.iter().map(|(h, _)| h.as_str()).collect();
        assert!(heads.contains(&"telemetry"));
        assert!(!heads.contains(&"Registry"), "mid-path segment recorded");
        assert!(!heads.contains(&"collect"), "turbofish recorded");
    }

    #[test]
    fn str_consts_decode() {
        let m = model_of(
            "pub const NET_REQUEST: &str = \"net.request\";\n\
             const WITH_STATIC: &'static str = \"a.b\";\n\
             const NOT_STR: u32 = 4;\n",
        );
        assert_eq!(m.str_consts.len(), 2);
        assert_eq!(m.str_consts[0].name, "NET_REQUEST");
        assert_eq!(m.str_consts[0].value, "net.request");
        assert_eq!(m.str_consts[1].value, "a.b");
    }

    #[test]
    fn call_args_classified() {
        let m = model_of(
            "reg.incr(\"net.request\", \"ok\");\n\
             reg.incr(catalog::NET_REQUEST, label);\n\
             reg.incr(&format!(\"net.{}\", kind), \"x\");\n\
             reg.incr(metric, label);\n",
        );
        let incrs: Vec<&FirstArg> = m
            .calls
            .iter()
            .filter(|c| c.method == "incr")
            .map(|c| &c.arg)
            .collect();
        assert_eq!(
            incrs,
            vec![
                &FirstArg::Str("net.request".into()),
                &FirstArg::Const("NET_REQUEST".into()),
                &FirstArg::Dynamic,
                &FirstArg::Other,
            ]
        );
    }

    #[test]
    fn nested_generics_do_not_derail_calls() {
        let m = model_of(
            "let x = foo::<Vec<HashMap<String, Vec<u8>>>>(arg);\n\
             reg.observe(\"net.latency_ms\", \"all\", v);\n",
        );
        assert!(m
            .calls
            .iter()
            .any(|c| c.method == "observe" && c.arg == FirstArg::Str("net.latency_ms".into())));
    }

    #[test]
    fn raw_string_args_decode() {
        let m = model_of("reg.incr(r#\"net.raw\"#, \"l\");\n");
        assert_eq!(m.calls[0].arg, FirstArg::Str("net.raw".into()));
    }

    #[test]
    fn test_ranges_cover_cfg_test_mods() {
        let src = "\
fn live() { reg.incr(\"a.b\", \"l\"); }\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { reg.incr(\"c.d\", \"l\"); }\n\
}\n\
fn after() {}\n";
        let m = model_of(src);
        assert!(!m.in_test_range(1));
        assert!(m.in_test_range(2));
        assert!(m.in_test_range(5));
        assert!(m.in_test_range(6));
        assert!(!m.in_test_range(7));
        assert!(m.non_test_idents.contains("live"));
        assert!(!m.non_test_idents.contains("t"));
        assert!(m.idents.contains("t"));
    }

    #[test]
    fn cfg_test_on_braceless_item() {
        let m = model_of("#[cfg(test)]\nuse proptest::prelude::*;\nfn f() {}\n");
        assert!(m.in_test_range(2));
        assert!(!m.in_test_range(3));
    }

    #[test]
    fn items_recorded() {
        let m = model_of("pub struct S; enum E { A } fn f() {} mod m {}\n");
        let names: Vec<&str> = m.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["S", "E", "f", "m"]);
    }

    #[test]
    fn decode_handles_escapes() {
        assert_eq!(decode_str("\"a\\\"b\\n\""), "a\"b\n");
        assert_eq!(decode_str("r\"plain\""), "plain");
        assert_eq!(decode_str("r##\"x\"y\"##"), "x\"y");
        assert_eq!(decode_str("b\"bytes\""), "bytes");
    }
}
