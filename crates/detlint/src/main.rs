//! The `detlint` CLI.
//!
//! ```text
//! cargo run -p detlint                      # lint the workspace, write results/lint.json
//! cargo run -p detlint -- --deny            # CI mode: ratchet slack is fatal too
//! cargo run -p detlint -- --update-baseline # rewrite lint-baseline.json from measured counts
//! cargo run -p detlint -- --root DIR        # lint a different tree (fixtures)
//! cargo run -p detlint -- --json PATH       # write the machine-readable report elsewhere
//! cargo run -p detlint -- --no-json         # skip the JSON artifact
//! cargo run -p detlint -- --sarif PATH      # also write a SARIF 2.1.0 report
//! cargo run -p detlint -- --graph-dot PATH  # also export the realized crate DAG as DOT
//! cargo run -p detlint -- --audit-suppressions  # inventory every detlint::allow instead
//! ```
//!
//! Exit codes: `0` clean (warnings allowed unless `--deny`), `2` findings.

#![forbid(unsafe_code)]

use detlint::{baseline_of, dag, lint_root, sarif, Config};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    deny: bool,
    update_baseline: bool,
    json: Option<PathBuf>,
    no_json: bool,
    sarif: Option<PathBuf>,
    graph_dot: Option<PathBuf>,
    audit_suppressions: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        deny: false,
        update_baseline: false,
        json: None,
        no_json: false,
        sarif: None,
        graph_dot: None,
        audit_suppressions: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--update-baseline" => args.update_baseline = true,
            "--no-json" => args.no_json = true,
            "--audit-suppressions" => args.audit_suppressions = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a path")?);
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--sarif" => {
                args.sarif = Some(PathBuf::from(it.next().ok_or("--sarif needs a path")?));
            }
            "--graph-dot" => {
                args.graph_dot = Some(PathBuf::from(it.next().ok_or("--graph-dot needs a path")?));
            }
            "--help" | "-h" => {
                println!(
                    "detlint: workspace determinism & hygiene linter\n\
                     rules: wall-clock, unordered-iter, unseeded-rng, forbid-unsafe, \
                     panic-hygiene,\n       layering, unused-dep, metric-catalog, \
                     float-determinism\n\
                     flags: [--root DIR] [--deny] [--update-baseline] [--json PATH] [--no-json]\n\
                     \x20      [--sarif PATH] [--graph-dot PATH] [--audit-suppressions]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn write_artifact(path: &PathBuf, payload: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, payload).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };
    if !args.root.join("Cargo.toml").exists() {
        eprintln!(
            "detlint: {} does not look like a workspace root (no Cargo.toml)",
            args.root.display()
        );
        return ExitCode::from(2);
    }

    let config = Config::workspace();
    let mut report = match lint_root(&args.root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: io error: {e}");
            return ExitCode::from(2);
        }
    };

    if args.update_baseline {
        let baseline = baseline_of(&report);
        let path = args.root.join(&config.baseline_path);
        if let Err(e) = std::fs::write(&path, baseline.to_json()) {
            eprintln!("detlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "detlint: wrote {} ({} hot-path files)",
            path.display(),
            baseline.panic_markers.len()
        );
        // Re-lint so the report (and exit code) reflect the new baseline.
        report = match lint_root(&args.root, &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("detlint: io error: {e}");
                return ExitCode::from(2);
            }
        };
    }

    if args.audit_suppressions {
        print!("{}", report.render_audit());
    } else {
        print!("{}", report.render_human());
    }

    if !args.no_json {
        let json_path = args
            .json
            .clone()
            .unwrap_or_else(|| args.root.join("results").join("lint.json"));
        if let Err(e) = write_artifact(&json_path, &report.to_json()) {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(sarif_path) = &args.sarif {
        if let Err(e) = write_artifact(sarif_path, &sarif::to_sarif(&report)) {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(dot_path) = &args.graph_dot {
        let ws = match dag::load(&args.root) {
            Ok((ws, _, _)) => ws,
            Err(e) => {
                eprintln!("detlint: io error reading manifests: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = write_artifact(dot_path, &dag::dot(&config, &ws)) {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    }

    let errors = report.errors();
    let slack = report.slack();
    if errors > 0 || (args.deny && slack > 0) {
        if args.deny && slack > 0 {
            eprintln!("detlint: --deny treats ratchet slack as an error");
        }
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
