//! Findings, reports, and the machine-readable output.
//!
//! Everything here is deterministic by construction: findings are sorted
//! on a total key, counts live in `BTreeMap`s, and the JSON renderer
//! walks them in order — two runs over the same tree produce
//! byte-identical `lint.json` files (a property the test suite asserts).

use std::collections::BTreeMap;
use std::fmt;

/// The rule a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `Instant::now` / `SystemTime::now` outside the allowlist.
    WallClock,
    /// Iterating a `HashMap`/`HashSet` in an artifact-producing crate.
    UnorderedIter,
    /// RNG construction that does not trace to a seed derivation.
    UnseededRng,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// Panic-marker count drifted from the checked-in baseline.
    PanicHygiene,
    /// Problems with suppression comments themselves (malformed or
    /// unused `detlint::allow`).
    Suppression,
    /// A crate dependency or `use` that violates the declared DAG.
    Layering,
    /// A declared dependency that no code references (or that belongs in
    /// `[dev-dependencies]`).
    UnusedDep,
    /// A telemetry metric name that does not resolve to a
    /// `telemetry::catalog` constant, or a catalog/baseline/tolerance
    /// closure violation.
    MetricCatalog,
    /// `f64` accumulation over non-canonical iteration outside the
    /// blessed helpers.
    FloatDeterminism,
}

impl Rule {
    /// Stable rule name — what suppression comments and reports use.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::UnorderedIter => "unordered-iter",
            Rule::UnseededRng => "unseeded-rng",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::Suppression => "suppression",
            Rule::Layering => "layering",
            Rule::UnusedDep => "unused-dep",
            Rule::MetricCatalog => "metric-catalog",
            Rule::FloatDeterminism => "float-determinism",
        }
    }

    /// One-line description, used by the SARIF rule metadata.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock read outside the allowlisted measurement crates",
            Rule::UnorderedIter => "HashMap/HashSet iteration order observed in an artifact crate",
            Rule::UnseededRng => "RNG construction that does not trace to the campaign seed",
            Rule::ForbidUnsafe => "crate root missing #![forbid(unsafe_code)]",
            Rule::PanicHygiene => "panic-marker count drifted from the checked-in baseline",
            Rule::Suppression => "malformed or unused detlint::allow comment",
            Rule::Layering => "crate dependency or use outside the declared workspace DAG",
            Rule::UnusedDep => "declared dependency that no code references",
            Rule::MetricCatalog => "telemetry metric name not routed through telemetry::catalog",
            Rule::FloatDeterminism => {
                "f64 accumulation over non-canonical iteration outside blessed helpers"
            }
        }
    }

    /// Every rule, in report order — drives the SARIF rule table.
    pub fn all() -> &'static [Rule] {
        &[
            Rule::WallClock,
            Rule::UnorderedIter,
            Rule::UnseededRng,
            Rule::ForbidUnsafe,
            Rule::PanicHygiene,
            Rule::Suppression,
            Rule::Layering,
            Rule::UnusedDep,
            Rule::MetricCatalog,
            Rule::FloatDeterminism,
        ]
    }

    /// Rules addressable from a `detlint::allow(…)` comment.
    /// `panic-hygiene` is governed by the baseline ratchet (counts, not
    /// lines) and `suppression` findings are about the comments
    /// themselves; neither can be suppressed.
    pub fn suppressible(name: &str) -> Option<Rule> {
        match name {
            "wall-clock" => Some(Rule::WallClock),
            "unordered-iter" => Some(Rule::UnorderedIter),
            "unseeded-rng" => Some(Rule::UnseededRng),
            "forbid-unsafe" => Some(Rule::ForbidUnsafe),
            "layering" => Some(Rule::Layering),
            "unused-dep" => Some(Rule::UnusedDep),
            "metric-catalog" => Some(Rule::MetricCatalog),
            "float-determinism" => Some(Rule::FloatDeterminism),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A violation: nonzero exit in every mode.
    Error,
    /// The panic-hygiene count *dropped below* the baseline. Good news,
    /// but the ratchet only works if the baseline shrinks in the same
    /// change — a warning normally, an error under `--deny`.
    RatchetSlack,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that produced it.
    pub rule: Rule,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line (0 for whole-file findings).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Severity class.
    pub severity: Severity,
}

/// One `detlint::allow` comment, for the suppression audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionRecord {
    /// File carrying the comment (`.rs` or `Cargo.toml`).
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Name of the suppressed rule.
    pub rule: &'static str,
    /// The documented justification.
    pub reason: String,
    /// Whether it silenced a finding this run. `false` means stale —
    /// the matching unused-suppression error is already in `findings`.
    pub used: bool,
}

/// The result of linting one root.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule, message).
    pub findings: Vec<Finding>,
    /// Panic-marker counts per hot-path file (always populated, even
    /// when they match the baseline — the ratchet's source of truth).
    pub panic_counts: BTreeMap<String, u64>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Suppressions that matched a finding.
    pub suppressions_used: usize,
    /// Every suppression comment seen, sorted by (file, line) — the
    /// `--audit-suppressions` inventory.
    pub suppression_records: Vec<SuppressionRecord>,
}

impl Report {
    /// Sort findings on the canonical key. Call once after all rules ran.
    pub fn finalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
        self.suppression_records
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Render the `--audit-suppressions` inventory: every reviewed
    /// exception in the tree, with its rule and justification. Stale
    /// entries are marked; the matching errors are in the findings.
    pub fn render_audit(&self) -> String {
        let mut out = String::new();
        for s in &self.suppression_records {
            let status = if s.used { "active" } else { "STALE" };
            out.push_str(&format!(
                "{status:6} [{}] {}:{}: {}\n",
                s.rule, s.file, s.line, s.reason
            ));
        }
        let stale = self.suppression_records.iter().filter(|s| !s.used).count();
        out.push_str(&format!(
            "detlint: {} suppressions ({} active, {} stale)\n",
            self.suppression_records.len(),
            self.suppression_records.len() - stale,
            stale
        ));
        out
    }

    /// Number of hard errors.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of ratchet-slack warnings.
    pub fn slack(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::RatchetSlack)
            .count()
    }

    /// Render the human-readable diagnostics.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let sev = match f.severity {
                Severity::Error => "error",
                Severity::RatchetSlack => "warning",
            };
            if f.line > 0 {
                out.push_str(&format!(
                    "{sev}[{}] {}:{}: {}\n",
                    f.rule, f.file, f.line, f.message
                ));
            } else {
                out.push_str(&format!("{sev}[{}] {}: {}\n", f.rule, f.file, f.message));
            }
        }
        out.push_str(&format!(
            "detlint: {} files scanned, {} errors, {} ratchet warnings, {} suppressions honored\n",
            self.files_scanned,
            self.errors(),
            self.slack(),
            self.suppressions_used
        ));
        out
    }

    /// Render the machine-readable report (the `results/lint.json`
    /// payload). Byte-stable across runs on the same tree.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!("  \"ratchet_warnings\": {},\n", self.slack()));
        out.push_str(&format!(
            "  \"suppressions_used\": {},\n",
            self.suppressions_used
        ));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule.name())));
            out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!(
                "\"severity\": {}, ",
                json_str(match f.severity {
                    Severity::Error => "error",
                    Severity::RatchetSlack => "ratchet-slack",
                })
            ));
            out.push_str(&format!("\"message\": {}", json_str(&f.message)));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"panic_markers\": {");
        for (i, (file, count)) in self.panic_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_str(file), count));
        }
        if !self.panic_counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Escape a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The checked-in ratchet state: per-file panic-marker ceilings.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// file → allowed marker count.
    pub panic_markers: BTreeMap<String, u64>,
}

impl Baseline {
    /// Render the `lint-baseline.json` payload.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"comment\": {},\n",
            json_str(
                "panic-hygiene ratchet: per-file unwrap()/expect(\"…\")/panic! ceilings for \
                 the scan hot path. Counts may only shrink; regenerate with \
                 `cargo run -p detlint -- --update-baseline`."
            )
        ));
        out.push_str("  \"panic_markers\": {");
        for (i, (file, count)) in self.panic_markers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_str(file), count));
        }
        if !self.panic_markers.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parse a baseline file. This is a purpose-built scanner for the
    /// exact shape `to_json` writes (one flat object of string→integer
    /// under `"panic_markers"`), tolerant of whitespace; not a general
    /// JSON parser. Unknown top-level keys are ignored.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut panic_markers = BTreeMap::new();
        let marker = "\"panic_markers\"";
        let at = text
            .find(marker)
            .ok_or_else(|| "baseline missing \"panic_markers\" key".to_string())?;
        let rest = &text[at + marker.len()..];
        let open = rest
            .find('{')
            .ok_or_else(|| "baseline: expected '{' after panic_markers".to_string())?;
        let body = &rest[open + 1..];
        let close = body
            .find('}')
            .ok_or_else(|| "baseline: unterminated panic_markers object".to_string())?;
        let body = &body[..close];
        for pair in body.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .rsplit_once(':')
                .ok_or_else(|| format!("baseline: malformed entry {pair:?}"))?;
            let key = key.trim();
            if !(key.starts_with('"') && key.ends_with('"') && key.len() >= 2) {
                return Err(format!("baseline: malformed key {key:?}"));
            }
            let key = &key[1..key.len() - 1];
            if key.contains('\\') {
                return Err(format!("baseline: escapes unsupported in key {key:?}"));
            }
            let count: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("baseline: non-integer count {value:?}"))?;
            panic_markers.insert(key.to_string(), count);
        }
        Ok(Baseline { panic_markers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips() {
        let mut b = Baseline::default();
        b.panic_markers
            .insert("crates/ocsp/src/responder.rs".into(), 12);
        b.panic_markers
            .insert("crates/ocsp/src/validate.rs".into(), 7);
        let text = b.to_json();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"panic_markers\": {\"a\": \"x\"}}").is_err());
    }

    #[test]
    fn empty_baseline_round_trips() {
        let b = Baseline::default();
        assert_eq!(Baseline::parse(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_json_is_stable() {
        let mut r = Report {
            findings: vec![Finding {
                rule: Rule::WallClock,
                file: "b.rs".into(),
                line: 3,
                message: "m".into(),
                severity: Severity::Error,
            }],
            ..Report::default()
        };
        r.finalize();
        assert_eq!(r.to_json(), r.to_json());
        assert!(r.to_json().contains("\"wall-clock\""));
    }
}
