//! A hand-rolled Rust lexer.
//!
//! The build environment has no reachable registry, so `syn` is off the
//! table; fortunately the rules in this linter only need a *token-level*
//! view of each source file — identifiers, punctuation, literals, and
//! comments, each tagged with a line number. The tricky parts of Rust
//! lexing that matter for correctness here are exactly the ones that
//! would make a regex-based scanner lie:
//!
//! * string literals (`"…"`, `b"…"`) with escapes — a `HashMap` inside a
//!   string must not trigger the unordered-iter rule;
//! * raw strings (`r"…"`, `r#"…"#`, any number of `#`s) — used heavily in
//!   this workspace's fixtures and docs;
//! * char literals vs. lifetimes (`'a'` vs. `'a`) — a naive scanner
//!   eats from `'a` to the next apostrophe and desynchronizes;
//! * nested block comments (`/* /* */ */`) — legal in Rust;
//! * line comments, which carry this linter's suppression syntax
//!   (`// detlint::allow(rule): reason`).
//!
//! Everything else (numeric literal suffixes, compound operators) can be
//! tokenized loosely without affecting any rule.

/// What a token is. Comments are produced as tokens too — the caller
/// decides whether to keep them in the rule stream (the suppression
/// scanner wants them; the rule matchers filter them out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`for`, `HashMap`, `unwrap`, …).
    Ident,
    /// A lifetime (`'a`) — distinguished from `Char` so rules never
    /// confuse the two.
    Lifetime,
    /// A numeric literal (integer or float, any base, any suffix).
    Number,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`.`, `!`, `#`, `(`, …).
    Punct,
    /// A `// …` comment (text includes the slashes).
    LineComment,
    /// A `/* … */` comment (text includes the delimiters).
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based line number where the token starts.
    pub line: u32,
}

impl Token {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Lex `source` into tokens (comments included, whitespace dropped).
///
/// The lexer is infallible: unexpected bytes become single-character
/// `Punct` tokens, and an unterminated literal runs to end-of-file.
/// Rules prefer resilience over diagnostics — a file that does not lex
/// cleanly will not compile either, and `cargo build` owns that error.
pub fn lex(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let b = bytes[i];
        let start_line = line;

        // Whitespace.
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if b == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                let end = memchr_newline(bytes, i);
                tokens.push(Token {
                    kind: TokenKind::LineComment,
                    text: source[i..end].to_string(),
                    line: start_line,
                });
                i = end;
                continue;
            }
            if bytes[i + 1] == b'*' {
                let (end, newlines) = block_comment_end(bytes, i);
                tokens.push(Token {
                    kind: TokenKind::BlockComment,
                    text: source[i..end].to_string(),
                    line: start_line,
                });
                line += newlines;
                i = end;
                continue;
            }
        }

        // Raw strings and raw identifiers: r"…", r#"…"#, r#ident,
        // br"…", br#"…"#. The `b`/`r` prefixes must be checked before
        // plain identifiers.
        if let Some((end, newlines, kind)) = raw_or_prefixed_literal(bytes, i) {
            tokens.push(Token {
                kind,
                text: source[i..end].to_string(),
                line: start_line,
            });
            line += newlines;
            i = end;
            continue;
        }

        // Identifiers / keywords.
        if b == b'_' || b.is_ascii_alphabetic() {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: source[i..j].to_string(),
                line: start_line,
            });
            i = j;
            continue;
        }

        // Numbers (loose: consume digits, letters, `_`, and `.` followed
        // by a digit — enough to keep `1.0e-3f64` and `0xFF_u8` atomic).
        if b.is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len() {
                let c = bytes[j];
                let continues = c == b'_'
                    || c.is_ascii_alphanumeric()
                    || (c == b'.' && j + 1 < bytes.len() && bytes[j + 1].is_ascii_digit())
                    // Exponent sign: keeps `1.5e-3f64` atomic.
                    || ((c == b'+' || c == b'-')
                        && (bytes[j - 1] | 0x20) == b'e'
                        && j + 1 < bytes.len()
                        && bytes[j + 1].is_ascii_digit());
                if !continues {
                    break;
                }
                j += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: source[i..j].to_string(),
                line: start_line,
            });
            i = j;
            continue;
        }

        // Strings.
        if b == b'"' {
            let (end, newlines) = string_end(bytes, i, b'"');
            tokens.push(Token {
                kind: TokenKind::Str,
                text: source[i..end].to_string(),
                line: start_line,
            });
            line += newlines;
            i = end;
            continue;
        }

        // Char literal vs. lifetime. A `'` starts a char literal if it
        // closes within a short span (`'a'`, `'\n'`, `'\u{1F600}'`);
        // otherwise it is a lifetime (`'a`, `'static`).
        if b == b'\'' {
            if let Some(end) = char_literal_end(bytes, i) {
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: source[i..end].to_string(),
                    line: start_line,
                });
                i = end;
            } else {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: source[i..j].to_string(),
                    line: start_line,
                });
                i = j;
            }
            continue;
        }

        // Everything else: single-character punctuation. Multi-character
        // operators arrive as successive Punct tokens, which is exactly
        // what the rule matchers want (`::` is Punct(":") Punct(":")).
        let ch_len = utf8_len(b);
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: source[i..i + ch_len].to_string(),
            line: start_line,
        });
        i += ch_len;
    }

    tokens
}

/// Length in bytes of the UTF-8 character starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Index of the next `\n` at or after `from` (or end of input).
fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    let mut i = from;
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    i
}

/// End index (exclusive) of the block comment starting at `start`, plus
/// the number of newlines inside it. Handles nesting.
fn block_comment_end(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut depth = 0usize;
    let mut i = start;
    let mut newlines = 0u32;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            newlines += 1;
            i += 1;
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return (i, newlines);
            }
        } else {
            i += 1;
        }
    }
    (bytes.len(), newlines)
}

/// End index (exclusive) of a quoted string starting at `start` (which
/// holds the opening quote), plus newline count. Honors backslash
/// escapes.
fn string_end(bytes: &[u8], start: usize, quote: u8) -> (usize, u32) {
    let mut i = start + 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            c if c == quote => return (i + 1, newlines),
            _ => i += 1,
        }
    }
    (bytes.len(), newlines)
}

/// If a raw string / raw identifier / byte literal starts at `i`, return
/// `(end, newlines, kind)`.
///
/// Recognized shapes: `r"…"`, `r#…#"…"#…#`, `r#ident`, `b"…"`, `br"…"`,
/// `br#"…"#`, `b'…'`, `c"…"` (C strings, for completeness).
fn raw_or_prefixed_literal(bytes: &[u8], i: usize) -> Option<(usize, u32, TokenKind)> {
    let b = bytes[i];
    if b != b'r' && b != b'b' && b != b'c' {
        return None;
    }
    // Reject if this is just an identifier starting with r/b/c: the
    // character after the prefix must begin a literal.
    let mut j = i + 1;
    if b == b'b' && j < bytes.len() && bytes[j] == b'r' {
        j += 1; // br…
    }
    if j >= bytes.len() {
        return None;
    }
    match bytes[j] {
        b'"' if b != b'r' || j == i + 1 => {
            // b"…" or c"…" or (r handled below via hash path with 0 hashes)
            if b == b'r' || (b == b'b' && j > i + 1) {
                // r"…" / br"…": raw string with zero hashes.
                let (end, nl) = raw_string_end(bytes, j, 0)?;
                return Some((end, nl, TokenKind::Str));
            }
            let (end, nl) = string_end(bytes, j, b'"');
            Some((end, nl, TokenKind::Str))
        }
        b'"' => {
            // br"…" with b consumed above: raw, zero hashes.
            let (end, nl) = raw_string_end(bytes, j, 0)?;
            Some((end, nl, TokenKind::Str))
        }
        b'\'' if b == b'b' && j == i + 1 => {
            // b'…' byte char.
            let end = char_literal_end(bytes, j)?;
            Some((end, 0, TokenKind::Char))
        }
        b'#' if b != b'c' => {
            // Count hashes; then either a raw (byte) string or a raw
            // identifier (`r#match`).
            let mut hashes = 0usize;
            let mut k = j;
            while k < bytes.len() && bytes[k] == b'#' {
                hashes += 1;
                k += 1;
            }
            if k < bytes.len() && bytes[k] == b'"' {
                let (end, nl) = raw_string_end(bytes, k, hashes)?;
                return Some((end, nl, TokenKind::Str));
            }
            if b == b'r' && hashes == 1 && k < bytes.len() && is_ident_start(bytes[k]) {
                let mut m = k + 1;
                while m < bytes.len() && (bytes[m] == b'_' || bytes[m].is_ascii_alphanumeric()) {
                    m += 1;
                }
                return Some((m, 0, TokenKind::Ident));
            }
            None
        }
        _ => None,
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

/// End of a raw string whose opening `"` is at `quote_at`, expecting
/// `hashes` closing hashes. Returns `(end, newlines)`.
fn raw_string_end(bytes: &[u8], quote_at: usize, hashes: usize) -> Option<(usize, u32)> {
    let mut i = quote_at + 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            newlines += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut k = i + 1;
            let mut seen = 0usize;
            while k < bytes.len() && seen < hashes && bytes[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some((k, newlines));
            }
        }
        i += 1;
    }
    Some((bytes.len(), newlines))
}

/// If a char literal starts at `i` (which holds `'`), return its end
/// (exclusive); `None` means this apostrophe starts a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        // Escaped char: skip the backslash and the escape head, then run
        // to the closing quote (covers \n, \x7F, \u{…}).
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'\'' {
            return Some(j + 1);
        }
        return None;
    }
    // Unescaped: exactly one character then a quote — `'a'`, `'±'`.
    let ch_len = utf8_len(bytes[j]);
    j += ch_len;
    if j < bytes.len() && bytes[j] == b'\'' {
        // `'a'` is a char only if the content is not itself a quote
        // directly adjacent in a lifetime position; one-char + quote is
        // always a char literal.
        return Some(j + 1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("foo.bar::baz()");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "foo".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Ident, "bar".into()),
                (TokenKind::Punct, ":".into()),
                (TokenKind::Punct, ":".into()),
                (TokenKind::Ident, "baz".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let x = "HashMap.iter()";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "HashMap"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"let x = r#"say "hi" HashMap"# + 1;"##);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("say \"hi\""));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'x'"));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let nl = '\n'; let u = '\u{1F600}'; let q = '\'';");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn nested_block_comments_and_line_numbers() {
        let src = "a\n/* outer /* inner */ still */\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokenKind::BlockComment);
        assert_eq!(toks[2].text, "b");
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn line_comments_carry_text() {
        let toks = lex("x // detlint::allow(wall-clock): timing\ny");
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert!(toks[1].text.contains("detlint::allow"));
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let toks = kinds(r##"let b = b"bytes"; let r = br#"raw"#; let k = r#match;"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn numbers_stay_atomic() {
        let toks = kinds("let a = 0xFF_u8 + 1.5e-3f64 + 7i64;");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(nums, vec!["0xFF_u8", "1.5e-3f64", "7i64"]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = lex("let s = \"one\ntwo\";\nafter");
        let after = toks.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
    }
}
