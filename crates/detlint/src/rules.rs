//! The rule catalog.
//!
//! Each rule is a pure function over one file's token stream (comments
//! already filtered out — suppressions are handled by the engine, not
//! here). Rules return findings with the line of the offending token;
//! whether a finding survives suppression is decided later.

use crate::lexer::{Token, TokenKind};
use crate::report::{Finding, Rule, Severity};

/// Everything a rule needs to know about one file.
pub struct FileContext<'a> {
    /// Workspace-relative `/`-separated path.
    pub rel_path: &'a str,
    /// Owning crate name (see [`crate::Config::crate_of`]).
    pub crate_name: &'a str,
    /// Token stream with comments removed.
    pub tokens: &'a [Token],
}

fn finding(ctx: &FileContext<'_>, rule: Rule, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: ctx.rel_path.to_string(),
        line,
        message,
        severity: Severity::Error,
    }
}

/// Is `tokens[i..]` the path separator `::`?
fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    i + 1 < tokens.len() && tokens[i].is_punct(":") && tokens[i + 1].is_punct(":")
}

/// **wall-clock** — `Instant::now()` / `SystemTime::now()` outside the
/// allowlisted crates. Scan artifacts must be pure functions of
/// `(config, seed)`; a wall-clock read in scan code is either a
/// determinism bug or a telemetry measurement that belongs behind the
/// telemetry span API (and then carries a scoped suppression naming it).
pub fn wall_clock(ctx: &FileContext<'_>) -> Vec<Finding> {
    let t = ctx.tokens;
    let mut out = Vec::new();
    for i in 0..t.len() {
        if !(t[i].is_ident("Instant") || t[i].is_ident("SystemTime")) {
            continue;
        }
        if is_path_sep(t, i + 1) && i + 3 < t.len() && t[i + 3].is_ident("now") {
            out.push(finding(
                ctx,
                Rule::WallClock,
                t[i].line,
                format!(
                    "`{}::now` reads the wall clock; scan code must use simulation \
                     time (crate `{}` is not on the wall-clock allowlist)",
                    t[i].text, ctx.crate_name
                ),
            ));
        }
    }
    out
}

/// Methods whose call on a hash collection observes its nondeterministic
/// internal order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "into_iter",
    "drain",
    "retain",
];

/// Names *declared* as hash collections in this file: `name:
/// HashMap<…>` fields/params/lets and `name = HashMap::new()` style
/// constructions. Shared by the unordered-iter and float-determinism
/// rules.
pub fn hash_collection_names(t: &[Token]) -> Vec<String> {
    let mut declared: Vec<String> = Vec::new();
    let mut declare = |name: &str| {
        if !declared.iter().any(|d| d == name) {
            declared.push(name.to_string());
        }
    };

    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident || !(t[i].text == "HashMap" || t[i].text == "HashSet") {
            continue;
        }
        // `name = [path::]HashMap :: new(…)` — constructions. Walk back
        // over the path prefix to the `=`, then take the identifier
        // before it.
        if is_path_sep(t, i + 1) {
            let mut j = i;
            while j >= 3 && is_path_sep(t, j - 2) && t[j - 3].kind == TokenKind::Ident {
                j -= 3;
            }
            if j >= 2 && t[j - 1].is_punct("=") && t[j - 2].kind == TokenKind::Ident {
                declare(&t[j - 2].text);
                continue;
            }
        }
        // `name : [&]['a][mut][path::] HashMap` — type ascriptions. Walk
        // back over reference/mut/path noise to the `:`; reject `::`.
        let mut j = i;
        loop {
            if j == 0 {
                break;
            }
            let p = &t[j - 1];
            if p.is_punct("&") || p.kind == TokenKind::Lifetime || p.is_ident("mut") {
                j -= 1;
            } else if j >= 3 && is_path_sep(t, j - 2) && t[j - 3].kind == TokenKind::Ident {
                j -= 3;
            } else {
                break;
            }
        }
        if j >= 2
            && t[j - 1].is_punct(":")
            && !(j >= 3 && t[j - 2].is_punct(":"))
            && t[j - 2].kind == TokenKind::Ident
        {
            declare(&t[j - 2].text);
        }
    }
    declared
}

/// **unordered-iter** — iterating a `HashMap`/`HashSet` in an
/// artifact-producing crate.
///
/// Pass 1 collects names *declared* as hash collections in this file
/// (`name: HashMap<…>` fields/params/lets and `name = HashMap::new()`
/// style constructions); pass 2 flags order-observing uses of those
/// names: `name.iter()`, `.keys()`, `.values()`, `.drain()`, `.retain()`
/// and friends, plus `for … in &name` / `for … in name`.
///
/// This is a token-level heuristic, not type inference: a shadowed
/// non-hash binding with the same name would false-positive (suppress it
/// with a reason), and a hash map smuggled through a type alias escapes
/// (the determinism diff gate still catches actual divergence). In
/// practice the workspace's hash collections are declared where they are
/// used, which is exactly the shape the heuristic covers.
pub fn unordered_iter(ctx: &FileContext<'_>) -> Vec<Finding> {
    let t = ctx.tokens;
    let declared = hash_collection_names(t);
    let mut out = Vec::new();
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident || !declared.iter().any(|d| *d == t[i].text) {
            continue;
        }
        // Reject method positions: `something.name(…)` is a call of a
        // method that happens to share the name (e.g. slice::windows) —
        // but `self.name.values()` is a field access and stays eligible.
        if i > 0 && t[i - 1].is_punct(".") && i + 1 < t.len() && t[i + 1].is_punct("(") {
            continue;
        }
        let name = &t[i].text;
        // `name . m (` with an order-observing method.
        if i + 3 < t.len()
            && t[i + 1].is_punct(".")
            && t[i + 2].kind == TokenKind::Ident
            && ITER_METHODS.contains(&t[i + 2].text.as_str())
            && t[i + 3].is_punct("(")
        {
            out.push(finding(
                ctx,
                Rule::UnorderedIter,
                t[i].line,
                format!(
                    "`{name}.{}()` observes HashMap/HashSet internal order, which is \
                     nondeterministic; use a BTreeMap/BTreeSet or sort before iterating",
                    t[i + 2].text
                ),
            ));
            continue;
        }
        // `for … in [&][mut] name` not followed by a method call (a
        // following `.` is either handled above or an ordered adapter
        // misuse rare enough to leave to the dynamic gate).
        if i + 1 < t.len() && t[i + 1].is_punct(".") {
            continue;
        }
        let mut p = i;
        if p > 0 && t[p - 1].is_ident("mut") {
            p -= 1;
        }
        if p > 0 && t[p - 1].is_punct("&") {
            p -= 1;
        }
        if p > 0 && t[p - 1].is_ident("in") {
            out.push(finding(
                ctx,
                Rule::UnorderedIter,
                t[i].line,
                format!(
                    "`for … in {name}` iterates a HashMap/HashSet in nondeterministic \
                     order; use a BTreeMap/BTreeSet or sort before iterating"
                ),
            ));
        }
    }
    out
}

/// Identifiers that construct nondeterministically-seeded RNGs. None of
/// these exist in the vendored `rand` stand-in — the rule keeps it that
/// way if the stand-in ever grows toward the real API.
const BANNED_RNG: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "EntropyRng",
];

/// **unseeded-rng** — every RNG must be constructed from a value that
/// traces to the campaign seed. Entropy-based constructors are banned
/// outright; `seed_from_u64`/`from_seed` calls must have an argument
/// containing either an integer literal (fixed test seeds) or an
/// identifier mentioning `seed`/`shard`/`chunk` (the `seed_for_shard` /
/// `seed_for_chunk` derivation chain).
pub fn unseeded_rng(ctx: &FileContext<'_>) -> Vec<Finding> {
    let t = ctx.tokens;
    let mut out = Vec::new();
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident {
            continue;
        }
        if BANNED_RNG.contains(&t[i].text.as_str()) {
            out.push(finding(
                ctx,
                Rule::UnseededRng,
                t[i].line,
                format!(
                    "`{}` constructs an entropy-seeded RNG; all randomness must derive \
                     from the campaign seed (seed_for_shard / seed_for_chunk)",
                    t[i].text
                ),
            ));
            continue;
        }
        if (t[i].text == "seed_from_u64" || t[i].text == "from_seed")
            && i + 1 < t.len()
            && t[i + 1].is_punct("(")
        {
            let mut depth = 0usize;
            let mut traceable = false;
            for tok in &t[i + 1..] {
                if tok.is_punct("(") {
                    depth += 1;
                } else if tok.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tok.kind == TokenKind::Number {
                    traceable = true;
                } else if tok.kind == TokenKind::Ident {
                    let lower = tok.text.to_ascii_lowercase();
                    if lower.contains("seed") || lower.contains("shard") || lower.contains("chunk")
                    {
                        traceable = true;
                    }
                }
            }
            if !traceable {
                out.push(finding(
                    ctx,
                    Rule::UnseededRng,
                    t[i].line,
                    format!(
                        "`{}` argument does not trace to a literal or a \
                         seed/shard/chunk derivation",
                        t[i].text
                    ),
                ));
            }
        }
    }
    out
}

/// **forbid-unsafe** — crate roots must carry `#![forbid(unsafe_code)]`.
/// Returns a finding if the attribute token sequence is absent.
pub fn forbid_unsafe(ctx: &FileContext<'_>) -> Option<Finding> {
    let t = ctx.tokens;
    for i in 0..t.len().saturating_sub(7) {
        if t[i].is_punct("#")
            && t[i + 1].is_punct("!")
            && t[i + 2].is_punct("[")
            && t[i + 3].is_ident("forbid")
            && t[i + 4].is_punct("(")
            && t[i + 5].is_ident("unsafe_code")
            && t[i + 6].is_punct(")")
            && t[i + 7].is_punct("]")
        {
            return None;
        }
    }
    Some(finding(
        ctx,
        Rule::ForbidUnsafe,
        1,
        "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
    ))
}

/// **panic-hygiene** — count panic markers in one file: `.unwrap(`,
/// `.expect("…")` (string-literal argument only, so ASN.1 reader
/// `.expect(Tag::…)` calls — which return `Result` — do not count),
/// and `panic!`/`unreachable!`/`todo!`/`unimplemented!`. The engine
/// compares these counts against the checked-in baseline.
pub fn count_panic_markers(tokens: &[Token]) -> u64 {
    let t = tokens;
    let mut count = 0u64;
    for i in 0..t.len() {
        if t[i].is_punct(".")
            && i + 2 < t.len()
            && t[i + 1].is_ident("unwrap")
            && t[i + 2].is_punct("(")
        {
            count += 1;
        }
        if t[i].is_punct(".")
            && i + 3 < t.len()
            && t[i + 1].is_ident("expect")
            && t[i + 2].is_punct("(")
            && t[i + 3].kind == TokenKind::Str
        {
            count += 1;
        }
        if t[i].kind == TokenKind::Ident
            && matches!(
                t[i].text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && i + 1 < t.len()
            && t[i + 1].is_punct("!")
        {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_tokens(src: &str) -> Vec<Token> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::LineComment && t.kind != TokenKind::BlockComment)
            .collect()
    }

    fn run<F: Fn(&FileContext<'_>) -> Vec<Finding>>(src: &str, f: F) -> Vec<Finding> {
        let tokens = ctx_tokens(src);
        let ctx = FileContext {
            rel_path: "crates/scanner/src/x.rs",
            crate_name: "scanner",
            tokens: &tokens,
        };
        f(&ctx)
    }

    #[test]
    fn wall_clock_hits_both_clocks() {
        let found = run(
            "let a = Instant::now(); let b = std::time::SystemTime::now();",
            wall_clock,
        );
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn wall_clock_ignores_strings_and_other_nows() {
        let found = run(r#"let s = "Instant::now"; let t = sim.now();"#, wall_clock);
        assert!(found.is_empty());
    }

    #[test]
    fn unordered_iter_flags_declared_maps() {
        let src = r"
            let mut m: HashMap<String, u32> = HashMap::new();
            for (k, v) in &m { }
            let ks: Vec<_> = m.keys().collect();
            m.retain(|_, v| *v > 0);
        ";
        let found = run(src, unordered_iter);
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn unordered_iter_flags_constructions_and_fields() {
        let src = r"
            struct S { cache: std::collections::HashMap<u32, u32> }
            impl S {
                fn f(&mut self) {
                    self.cache.insert(1, 2);
                    for v in self.cache.values() { }
                }
            }
            let set = HashSet::new();
            for x in set { }
        ";
        let found = run(src, unordered_iter);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn unordered_iter_keyed_access_is_fine() {
        let src = r"
            let mut m: HashMap<String, u32> = HashMap::new();
            m.insert(k, 1);
            let v = m.get(&k);
            let n = m.len();
            let e = m.entry(k).or_insert(0);
        ";
        assert!(run(src, unordered_iter).is_empty());
    }

    #[test]
    fn unordered_iter_ignores_same_name_methods() {
        // `windows` is a HashMap field elsewhere, but `produced.windows(2)`
        // is the slice method.
        let src = r"
            struct S { windows: HashMap<u64, u64> }
            let pairs = produced.windows(2);
        ";
        assert!(run(src, unordered_iter).is_empty());
    }

    #[test]
    fn unordered_iter_btree_is_fine() {
        let src = r"
            let mut m: BTreeMap<String, u32> = BTreeMap::new();
            for (k, v) in &m { }
        ";
        assert!(run(src, unordered_iter).is_empty());
    }

    #[test]
    fn unseeded_rng_bans_entropy() {
        let found = run("let mut rng = rand::thread_rng();", unseeded_rng);
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn unseeded_rng_accepts_traceable_seeds() {
        let ok = r"
            let a = StdRng::seed_from_u64(42);
            let b = StdRng::seed_from_u64(eco.config.seed ^ 0xCD11);
            let c = StdRng::seed_from_u64(seed_for_shard(base_seed, shard_id));
            let d = StdRng::seed_from_u64(seed_for_chunk(base, shard, chunk));
        ";
        assert!(run(ok, unseeded_rng).is_empty());
        let bad = "let r = StdRng::seed_from_u64(entropy_source());";
        assert_eq!(run(bad, unseeded_rng).len(), 1);
    }

    #[test]
    fn forbid_unsafe_detects_presence() {
        let tokens = ctx_tokens("#![forbid(unsafe_code)]\npub fn f() {}");
        let ctx = FileContext {
            rel_path: "crates/x/src/lib.rs",
            crate_name: "x",
            tokens: &tokens,
        };
        assert!(forbid_unsafe(&ctx).is_none());
        let tokens = ctx_tokens("pub fn f() {}");
        let ctx = FileContext {
            rel_path: "crates/x/src/lib.rs",
            crate_name: "x",
            tokens: &tokens,
        };
        assert!(forbid_unsafe(&ctx).is_some());
    }

    #[test]
    fn panic_markers_counted_precisely() {
        let src = r#"
            let a = x.unwrap();
            let b = y.expect("must hold");
            let c = reader.expect(Tag::context_primitive(0))?; // NOT counted
            panic!("boom");
            unreachable!();
            let s = "contains .unwrap() in a string"; // NOT counted
        "#;
        assert_eq!(count_panic_markers(&ctx_tokens(src)), 4);
    }
}
