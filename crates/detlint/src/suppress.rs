//! Scoped suppressions: `// detlint::allow(rule): reason`.
//!
//! A suppression comment silences findings of one named rule on the line
//! it annotates: the same line for a trailing comment, otherwise the
//! next line that carries code. The reason is mandatory — a suppression
//! is a reviewed, documented exception, not an escape hatch. A
//! suppression that silences nothing is itself an error, so stale
//! exceptions cannot accumulate.

use crate::lexer::{Token, TokenKind};
use crate::report::{Finding, Rule, Severity};

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule it silences.
    pub rule: Rule,
    /// Line of the comment itself.
    pub line: u32,
    /// Line whose findings it covers (0 if it annotates nothing).
    pub covers: u32,
    /// The justification text.
    pub reason: String,
}

/// Extract suppressions from a file's full token stream (comments
/// included). Malformed suppressions — unknown rule, missing reason,
/// bad syntax — come back as error findings.
pub fn parse(rel_path: &str, tokens: &[Token]) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut errors = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        // A suppression is a plain `//` comment whose text *begins* with
        // the marker. Doc comments (`///`, `//!`) and prose that merely
        // mentions `detlint::allow` are not suppressions.
        let Some(body) = tok.text.strip_prefix("//") else {
            continue;
        };
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        if !body.trim_start().starts_with("detlint::allow") {
            continue;
        }
        let mut err = |message: String| {
            errors.push(Finding {
                rule: Rule::Suppression,
                file: rel_path.to_string(),
                line: tok.line,
                message,
                severity: Severity::Error,
            });
        };
        let Some(at) = tok.text.find("detlint::allow(") else {
            err("malformed suppression: expected `detlint::allow(rule): reason`".to_string());
            continue;
        };
        let rest = &tok.text[at + "detlint::allow(".len()..];
        let Some(close) = rest.find(')') else {
            err("malformed suppression: unterminated rule name".to_string());
            continue;
        };
        let rule_name = rest[..close].trim();
        let Some(rule) = Rule::suppressible(rule_name) else {
            err(format!(
                "suppression names unknown or unsuppressible rule `{rule_name}` \
                 (suppressible: wall-clock, unordered-iter, unseeded-rng, forbid-unsafe, \
                 layering, unused-dep, metric-catalog, float-determinism; \
                 panic-hygiene is governed by the baseline ratchet)"
            ));
            continue;
        };
        let after = &rest[close + 1..];
        let reason = match after.strip_prefix(':') {
            Some(r) => r.trim(),
            None => {
                err("malformed suppression: expected `: reason` after the rule name".to_string());
                continue;
            }
        };
        if reason.is_empty() {
            err("suppression has an empty reason; justify the exception".to_string());
            continue;
        }

        // What line does it cover? Trailing comment → same line;
        // otherwise the next line bearing a code token.
        let trailing = tokens[..i].iter().any(|t| {
            t.line == tok.line
                && t.kind != TokenKind::LineComment
                && t.kind != TokenKind::BlockComment
        });
        let covers = if trailing {
            tok.line
        } else {
            tokens[i + 1..]
                .iter()
                .find(|t| t.kind != TokenKind::LineComment && t.kind != TokenKind::BlockComment)
                .map(|t| t.line)
                .unwrap_or(0)
        };
        sups.push(Suppression {
            rule,
            line: tok.line,
            covers,
            reason: reason.to_string(),
        });
    }
    (sups, errors)
}

/// Apply `sups` to `findings` (all from the same file): matched findings
/// are removed, and each unused suppression becomes an error finding.
/// Returns the per-suppression used flags (parallel to `sups`) — the
/// suppression-audit inventory is built from them.
pub fn apply(
    rel_path: &str,
    sups: &mut [Suppression],
    findings: &mut Vec<Finding>,
    out_errors: &mut Vec<Finding>,
) -> Vec<bool> {
    let mut used = vec![false; sups.len()];
    findings.retain(|f| {
        for (i, s) in sups.iter().enumerate() {
            if s.rule == f.rule && s.covers == f.line && f.line != 0 {
                used[i] = true;
                return false;
            }
        }
        true
    });
    for (i, s) in sups.iter().enumerate() {
        if !used[i] {
            out_errors.push(Finding {
                rule: Rule::Suppression,
                file: rel_path.to_string(),
                line: s.line,
                message: format!(
                    "unused suppression for `{}` (reason: {}); the finding it covered \
                     is gone — delete the comment",
                    s.rule, s.reason
                ),
                severity: Severity::Error,
            });
        }
    }
    used
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_leading_and_trailing_forms() {
        let src = "\
// detlint::allow(wall-clock): merge span timing\n\
let t = Instant::now();\n\
let u = Instant::now(); // detlint::allow(wall-clock): second reason\n";
        let (sups, errs) = parse("f.rs", &lex(src));
        assert!(errs.is_empty());
        assert_eq!(sups.len(), 2);
        assert_eq!(sups[0].covers, 2);
        assert_eq!(sups[1].covers, 3);
        assert_eq!(sups[0].reason, "merge span timing");
    }

    #[test]
    fn leading_comment_skips_interleaved_comments() {
        let src = "\
// detlint::allow(unordered-iter): count is order-insensitive\n\
// more prose about why\n\
let n = m.values().count();\n";
        let (sups, errs) = parse("f.rs", &lex(src));
        assert!(errs.is_empty());
        assert_eq!(sups[0].covers, 3);
    }

    #[test]
    fn malformed_and_unknown_are_errors() {
        let cases = [
            "// detlint::allow(wall-clock) no colon\nx();\n",
            "// detlint::allow(no-such-rule): reason\nx();\n",
            "// detlint::allow(panic-hygiene): ratchet rules\nx();\n",
            "// detlint::allow(wall-clock):   \nx();\n",
        ];
        for src in cases {
            let (sups, errs) = parse("f.rs", &lex(src));
            assert!(sups.is_empty(), "{src}");
            assert_eq!(errs.len(), 1, "{src}");
        }
    }

    #[test]
    fn apply_matches_and_reports_unused() {
        let src = "\
// detlint::allow(wall-clock): timing only\n\
let t = Instant::now();\n\
// detlint::allow(wall-clock): stale\n\
let x = 1;\n";
        let (mut sups, errs) = parse("f.rs", &lex(src));
        assert!(errs.is_empty());
        let mut findings = vec![Finding {
            rule: Rule::WallClock,
            file: "f.rs".into(),
            line: 2,
            message: "m".into(),
            severity: Severity::Error,
        }];
        let mut unused = Vec::new();
        let used = apply("f.rs", &mut sups, &mut findings, &mut unused);
        assert_eq!(used, vec![true, false]);
        assert!(findings.is_empty());
        assert_eq!(unused.len(), 1);
        assert!(unused[0].message.contains("stale"));
    }
}
