//! SARIF 2.1.0 output, and a strict reader to prove it.
//!
//! The emitter writes the minimal conforming subset code-scanning UIs
//! consume: one run, a `tool.driver` with the full rule table
//! ([`Rule::all`] with [`Rule::describe`] one-liners), and one result
//! per finding with `ruleId`, `level`, `message.text`, and a physical
//! location. Line 0 (whole-file findings) maps to `startLine: 1` —
//! SARIF regions are 1-based.
//!
//! Output is byte-stable for the same report: rules and results are
//! emitted in report order, and the report is already sorted on the
//! canonical key.
//!
//! [`parse`] is a strict recursive-descent JSON reader (objects,
//! arrays, strings with the escapes we emit, integers, booleans,
//! null). It exists so the test suite can round-trip the emitter's
//! output back into findings without trusting the emitter's own
//! string handling — and it rejects anything malformed rather than
//! guessing.

use crate::report::{json_str, Finding, Report, Rule, Severity};
use std::collections::BTreeMap;

/// Render a report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n",
    );
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"detlint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/detlint\",\n");
    out.push_str("          \"rules\": [");
    for (i, rule) in Rule::all().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n            {");
        out.push_str(&format!("\"id\": {}, ", json_str(rule.name())));
        out.push_str(&format!(
            "\"shortDescription\": {{\"text\": {}}}",
            json_str(rule.describe())
        ));
        out.push('}');
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match f.severity {
            Severity::Error => "error",
            Severity::RatchetSlack => "warning",
        };
        out.push_str("\n        {\n");
        out.push_str(&format!(
            "          \"ruleId\": {},\n",
            json_str(f.rule.name())
        ));
        out.push_str(&format!("          \"level\": {},\n", json_str(level)));
        out.push_str(&format!(
            "          \"message\": {{\"text\": {}}},\n",
            json_str(&f.message)
        ));
        out.push_str(&format!(
            "          \"locations\": [{{\"physicalLocation\": {{\
             \"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}}}}}}}]\n",
            json_str(&f.file),
            f.line.max(1)
        ));
        out.push_str("        }");
    }
    if !report.findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// A parsed JSON value, just enough for SARIF round-trips.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integers only — SARIF line numbers; no floats are emitted.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order is irrelevant to the round-trip).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|_| Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_int(b, pos),
        _ => Err(format!("unexpected byte at {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_int(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if matches!(b.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
        return Err(format!("floats unsupported at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Int)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(
                            char::from_u32(code).ok_or("\\u escape outside BMP scalar range")?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf8".to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

/// Extract `(ruleId, level, message, uri, startLine)` tuples from a
/// parsed SARIF document — the round-trip test's comparison side.
pub fn results_of(doc: &Json) -> Result<Vec<(String, String, String, String, i64)>, String> {
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("missing runs array")?;
    let run = runs.first().ok_or("empty runs array")?;
    let results = run
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing results array")?;
    let mut out = Vec::new();
    for r in results {
        let rule_id = r
            .get("ruleId")
            .and_then(Json::as_str)
            .ok_or("result missing ruleId")?;
        let level = r
            .get("level")
            .and_then(Json::as_str)
            .ok_or("result missing level")?;
        let message = r
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .ok_or("result missing message.text")?;
        let loc = r
            .get("locations")
            .and_then(Json::as_arr)
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .ok_or("result missing physicalLocation")?;
        let uri = loc
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Json::as_str)
            .ok_or("location missing uri")?;
        let line = loc
            .get("region")
            .and_then(|r| r.get("startLine"))
            .and_then(Json::as_int)
            .ok_or("location missing startLine")?;
        out.push((
            rule_id.to_string(),
            level.to_string(),
            message.to_string(),
            uri.to_string(),
            line,
        ));
    }
    Ok(out)
}

/// The expected tuple view of a report's findings, for comparison
/// against [`results_of`].
pub fn expected_results(report: &Report) -> Vec<(String, String, String, String, i64)> {
    report
        .findings
        .iter()
        .map(|f: &Finding| {
            (
                f.rule.name().to_string(),
                match f.severity {
                    Severity::Error => "error",
                    Severity::RatchetSlack => "warning",
                }
                .to_string(),
                f.message.clone(),
                f.file.clone(),
                i64::from(f.line.max(1)),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Finding;

    fn sample_report() -> Report {
        let mut r = Report {
            findings: vec![
                Finding {
                    rule: Rule::Layering,
                    file: "crates/netsim/Cargo.toml".into(),
                    line: 14,
                    message: "edge \"netsim\" → \"scanner\" is not in the declared DAG".into(),
                    severity: Severity::Error,
                },
                Finding {
                    rule: Rule::PanicHygiene,
                    file: "crates/ocsp/src/responder.rs".into(),
                    line: 0,
                    message: "3 panic markers, below the baseline of 5 — tighten".into(),
                    severity: Severity::RatchetSlack,
                },
                Finding {
                    rule: Rule::MetricCatalog,
                    file: "crates/netsim/src/world.rs".into(),
                    line: 99,
                    message: "hardcoded metric name \"net.request\"; use \\ escapes \n tab\t"
                        .into(),
                    severity: Severity::Error,
                },
            ],
            ..Report::default()
        };
        r.finalize();
        r
    }

    #[test]
    fn round_trips_through_strict_parser() {
        let r = sample_report();
        let doc = parse(&to_sarif(&r)).expect("emitted SARIF must parse");
        assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
        assert_eq!(results_of(&doc).unwrap(), expected_results(&r));
    }

    #[test]
    fn rule_table_is_complete() {
        let doc = parse(&to_sarif(&Report::default())).unwrap();
        let rules = doc
            .get("runs")
            .and_then(Json::as_arr)
            .and_then(|r| r.first())
            .and_then(|r| r.get("tool"))
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(rules.len(), Rule::all().len());
        let ids: Vec<&str> = rules
            .iter()
            .map(|r| r.get("id").and_then(Json::as_str).unwrap())
            .collect();
        assert!(ids.contains(&"float-determinism"));
        assert!(ids.contains(&"wall-clock"));
    }

    #[test]
    fn line_zero_maps_to_one() {
        let r = sample_report();
        let doc = parse(&to_sarif(&r)).unwrap();
        let lines: Vec<i64> = results_of(&doc).unwrap().iter().map(|t| t.4).collect();
        assert!(lines.iter().all(|&l| l >= 1));
    }

    #[test]
    fn emission_is_stable() {
        let r = sample_report();
        assert_eq!(to_sarif(&r), to_sarif(&r));
    }

    #[test]
    fn parser_is_strict() {
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("{\"a\": 1.5}").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let doc = parse("{\"k\": \"a\\n\\t\\\"\\\\ \\u0041 é\"}").unwrap();
        assert_eq!(doc.get("k").and_then(Json::as_str), Some("a\n\t\"\\ A é"));
    }
}
