//! The linter run against the workspace it ships in: the tree must be
//! lint-clean (this is the same gate CI's `detlint --deny` enforces),
//! and the machine-readable report must be byte-stable.

use detlint::{lint_root, Config};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/detlint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint_root(&workspace_root(), &Config::workspace())
        .expect("workspace tree must be readable");
    assert!(report.files_scanned > 50, "walk found too few files");
    assert_eq!(report.errors(), 0, "\n{}", report.render_human());
    assert_eq!(
        report.slack(),
        0,
        "baseline has slack; run `cargo run -p detlint -- --update-baseline`\n{}",
        report.render_human()
    );
}

#[test]
fn lint_json_is_byte_stable() {
    let root = workspace_root();
    let config = Config::workspace();
    let a = lint_root(&root, &config).expect("first pass").to_json();
    let b = lint_root(&root, &config).expect("second pass").to_json();
    assert_eq!(a, b);
    assert!(a.ends_with('\n'));
}
