//! Fixture: telemetry call-site discipline in a metric crate.

use tel::catalog;

pub fn emit(reg: &mut Registry, shard: u32) {
    reg.incr("hard.coded", "label");
    reg.observe(&format!("dyn.shard{shard}"), "label", 1);
    reg.add(catalog::UNKNOWN, "label", 2);
    reg.incr(catalog::GOOD, "label");
    // detlint::allow(metric-catalog): literal kept until the migration lands
    reg.set_gauge("still.hard.coded", 3);
}
