//! Fixture metric catalog.

/// A live, properly routed counter.
pub const GOOD: &str = "good.metric";
/// Never referenced by any call site: the liveness check flags it.
pub const ORPHAN: &str = "orphan.metric";
