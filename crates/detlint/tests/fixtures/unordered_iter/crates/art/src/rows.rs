//! Fixture: HashMap iteration in an artifact-producing crate.

use std::collections::HashMap;

pub fn rows(m2: HashMap<u32, u32>) -> Vec<String> {
    let mut m: HashMap<String, u32> = HashMap::new();
    m.insert("a".to_string(), 1);
    let mut out: Vec<String> = m.keys().cloned().collect();
    for (k, _v) in &m2 {
        out.push(k.to_string());
    }
    // detlint::allow(unordered-iter): a count over all values is order-insensitive
    let _n = m.values().count();
    out.sort();
    out
}
