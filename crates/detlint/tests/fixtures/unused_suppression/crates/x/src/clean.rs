//! Fixture: a suppression that silences nothing.

// detlint::allow(wall-clock): stale — nothing here reads the clock
pub fn f() -> u32 {
    1
}
