//! Fixture: wall-clock reads in a crate that is not on the allowlist.

pub fn bad() -> (std::time::Instant, std::time::SystemTime) {
    let a = Instant::now();
    let b = SystemTime::now();
    (a, b)
}

pub fn excused() -> u128 {
    // detlint::allow(wall-clock): fixture models a telemetry span boundary
    let started = Instant::now();
    let t = Instant::now(); // detlint::allow(wall-clock): second span boundary
    (t - started).as_nanos()
}
