//! Fixture: a simulated-time event loop must never read the wall
//! clock — completion order would depend on host timing and break the
//! byte-for-byte engine equivalence (DESIGN.md §12).

pub fn drain() -> u128 {
    let deadline = Instant::now();
    while pending() {
        if SystemTime::now().elapsed().is_ok() {
            park();
        }
    }
    deadline.elapsed().as_nanos()
}
