//! Fixture: the same reads are fine in an allowlisted crate.

pub fn span() -> Instant {
    Instant::now()
}
