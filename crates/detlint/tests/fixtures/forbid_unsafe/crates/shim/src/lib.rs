pub fn shim() {} // detlint::allow(forbid-unsafe): fixture shim with no unsafe surface to forbid
