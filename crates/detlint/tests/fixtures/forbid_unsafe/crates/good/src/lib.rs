#![forbid(unsafe_code)]

pub fn f() -> u32 {
    1
}
