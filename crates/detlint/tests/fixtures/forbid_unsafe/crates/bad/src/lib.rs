pub fn f() -> u32 {
    1
}
