//! Fixture: exactly three panic markers.

pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("y must be present");
    if a + b == 0 {
        panic!("zero sum");
    }
    a + b
}
