//! Fixture: RNG constructions, traceable and not.

pub fn rngs(base_seed: u64) {
    let _a = rand::thread_rng();
    let _b = StdRng::seed_from_u64(entropy_source());
    // detlint::allow(unseeded-rng): fixture exercises the suppression path
    let _c = StdRng::seed_from_u64(opaque_value());
    let _d = StdRng::seed_from_u64(seed_for_shard(base_seed, 3));
    let _e = StdRng::seed_from_u64(0xD15C0);
}
