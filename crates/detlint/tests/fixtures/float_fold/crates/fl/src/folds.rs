//! Fixture: f64 accumulation over hash iteration order.

use std::collections::HashMap;

pub fn unordered_total(weights: &HashMap<String, f64>) -> f64 {
    let total: f64 = weights.values().sum();
    total
}

pub fn looped_total(weights: &HashMap<String, f64>) -> f64 {
    let mut acc = 0.0;
    for w in weights.values() {
        acc += w;
    }
    acc
}

pub fn sorted_total(weights: &HashMap<String, f64>) -> f64 {
    let mut vals: Vec<f64> = weights.values().copied().collect();
    vals.sort_by(f64::total_cmp);
    vals.iter().sum()
}

pub fn blessed_mean(weights: &HashMap<String, f64>) -> f64 {
    let mut acc = Welford::new();
    for w in weights.values() {
        acc.add(*w);
    }
    acc.mean()
}

pub fn suppressed_total(weights: &HashMap<String, f64>) -> f64 {
    // detlint::allow(float-determinism): inputs are bit-identical across runs in this fixture
    let total: f64 = weights.values().sum();
    total
}
