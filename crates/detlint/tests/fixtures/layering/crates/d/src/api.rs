//! Fixture crate `d`: a leaf nothing references.

pub fn value() -> u32 {
    4
}
