//! Fixture crate `c`: reaches into `a` without declaring the dependency.

pub fn sneaky() -> u32 {
    a::base()
}
