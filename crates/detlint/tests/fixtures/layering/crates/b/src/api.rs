//! Fixture crate `b`: uses `a`, never touches `c` or `d`.

pub fn chain() -> u32 {
    a::base()
}
