//! Fixture crate `a`: depends on `b`, completing the a ⇄ b cycle.

pub fn call() -> u32 {
    b::value()
}
