//! End-to-end checks through the built `detlint` binary: exit codes,
//! the SARIF/DOT artifacts, and the suppression-audit mode.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_detlint"))
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/detlint sits two levels below the workspace root")
        .to_path_buf()
}

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn workspace_is_clean_under_deny() {
    let out = bin()
        .arg("--root")
        .arg(workspace_root())
        .args(["--deny", "--no-json"])
        .output()
        .expect("binary must run");
    assert!(
        out.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn fixture_roots_exit_two() {
    for name in [
        "layering",
        "metric_catalog",
        "float_fold",
        "wall_clock",
        "unordered_iter",
        "unseeded_rng",
        "forbid_unsafe",
        "unused_suppression",
        "panic",
    ] {
        let out = bin()
            .arg("--root")
            .arg(fixture_root(name))
            .arg("--no-json")
            .output()
            .expect("binary must run");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{name} should exit 2 under the workspace policy\nstdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn sarif_and_dot_artifacts_are_written() {
    let dir = std::env::temp_dir().join(format!("detlint-cli-{}", std::process::id()));
    let sarif_path = dir.join("lint.sarif");
    let dot_path = dir.join("deps.dot");
    let out = bin()
        .arg("--root")
        .arg(workspace_root())
        .arg("--no-json")
        .arg("--sarif")
        .arg(&sarif_path)
        .arg("--graph-dot")
        .arg(&dot_path)
        .output()
        .expect("binary must run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let sarif_text = std::fs::read_to_string(&sarif_path).expect("SARIF artifact must exist");
    let doc = detlint::sarif::parse(&sarif_text).expect("SARIF must round-trip strictly");
    assert_eq!(
        doc.get("version").and_then(|v| v.as_str()),
        Some("2.1.0"),
        "SARIF version pinned"
    );

    let dot_text = std::fs::read_to_string(&dot_path).expect("DOT artifact must exist");
    assert!(dot_text.starts_with("digraph"));
    assert!(
        dot_text.contains("\"scanner\" -> \"netsim\""),
        "realized workspace edge missing from the DOT export"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn audit_mode_inventories_suppressions() {
    let out = bin()
        .arg("--root")
        .arg(workspace_root())
        .args(["--no-json", "--audit-suppressions"])
        .output()
        .expect("binary must run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("suppressions (") && text.contains("active"),
        "audit summary missing:\n{text}"
    );
    assert!(
        !text.contains("STALE"),
        "the workspace must carry no stale suppressions:\n{text}"
    );
}
