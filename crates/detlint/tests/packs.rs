//! Fixture trees for the workspace-level rule packs: layering,
//! metric-catalog, and float-determinism, each through the full
//! `lint_root` engine (positive, suppressed, and clean cases).

use detlint::config::{CatalogPolicy, CrateSpec};
use detlint::{lint_root, Config, Report, Rule, Severity};
use std::path::PathBuf;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str, config: &Config) -> Report {
    lint_root(&fixture_root(name), config).expect("fixture tree must be readable")
}

fn errors_of(report: &Report, rule: Rule) -> Vec<(String, u32)> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.severity == Severity::Error)
        .map(|f| (f.file.clone(), f.line))
        .collect()
}

fn spec(id: &str, layer: Option<u32>, deps: &[&str]) -> CrateSpec {
    CrateSpec {
        id: id.into(),
        lib: id.into(),
        layer,
        deps: deps.iter().map(|d| d.to_string()).collect(),
    }
}

/// The fixture DAG: a ⇄ b (cycle), b → {c, d} with neither referenced.
fn layering_config(layers: [Option<u32>; 4]) -> Config {
    let mut config = Config::bare();
    config.layering = vec![
        spec("a", layers[0], &["b"]),
        spec("b", layers[1], &["a", "c", "d"]),
        spec("c", layers[2], &[]),
        spec("d", layers[3], &[]),
    ];
    config
}

#[test]
fn layering_detects_cycles_undeclared_refs_and_unused_deps() {
    let report = lint("layering", &layering_config([None; 4]));
    assert_eq!(
        errors_of(&report, Rule::Layering),
        vec![
            // The realized a → b → a cycle, anchored at the smallest id.
            ("crates/a/Cargo.toml".to_string(), 0),
            // `c` uses `a` without declaring the dependency.
            ("crates/c/src/api.rs".to_string(), 4),
        ],
        "{}",
        report.render_human()
    );
    assert_eq!(
        errors_of(&report, Rule::UnusedDep),
        vec![
            // `d` is declared but nothing in `b` references it.
            ("crates/b/Cargo.toml".to_string(), 8),
        ],
        "{}",
        report.render_human()
    );
    // `c` is equally unused, but carries a reviewed manifest
    // suppression, which must both silence the finding and count.
    assert_eq!(report.suppressions_used, 1);
    assert_eq!(errors_of(&report, Rule::Suppression), vec![]);
}

#[test]
fn layering_detects_inversions_when_layers_are_declared() {
    // a sits *below* b, so its normal dependency on b inverts the
    // declared ordering.
    let report = lint(
        "layering",
        &layering_config([Some(0), Some(1), Some(0), Some(0)]),
    );
    let layering = errors_of(&report, Rule::Layering);
    assert!(
        layering.contains(&("crates/a/Cargo.toml".to_string(), 5)),
        "expected an inversion finding on a's dependency line\n{}",
        report.render_human()
    );
}

fn catalog_config() -> Config {
    let mut config = Config::bare();
    config.metric_crates = vec!["m".into()];
    config.catalog = Some(CatalogPolicy {
        module: "crates/tel/src/catalog.rs".into(),
        prom_baseline: "telemetry.prom".into(),
        teldiff: "teldiff.toml".into(),
    });
    config
}

#[test]
fn metric_catalog_proves_the_three_way_closure() {
    let report = lint("metric_catalog", &catalog_config());
    assert_eq!(
        errors_of(&report, Rule::MetricCatalog),
        vec![
            // Hardcoded literal, format!-built name, undeclared constant.
            ("crates/m/src/emit.rs".to_string(), 6),
            ("crates/m/src/emit.rs".to_string(), 7),
            ("crates/m/src/emit.rs".to_string(), 8),
            // ORPHAN is declared but no call site references it.
            ("crates/tel/src/catalog.rs".to_string(), 6),
            // A tolerance section and a baseline family that outlived
            // their metric.
            ("teldiff.toml".to_string(), 4),
            ("telemetry.prom".to_string(), 4),
        ],
        "{}",
        report.render_human()
    );
    // The annotated set_gauge literal is silenced.
    assert_eq!(report.suppressions_used, 1);
    assert_eq!(errors_of(&report, Rule::Suppression), vec![]);
}

#[test]
fn float_determinism_flags_hash_order_accumulation() {
    let mut config = Config::bare();
    config.float_crates = vec!["fl".into()];
    let report = lint("float_fold", &config);
    assert_eq!(
        errors_of(&report, Rule::FloatDeterminism),
        vec![
            // `.sum()` straight off hash iteration, and `acc +=` inside
            // a hash-order loop. The sorted fold and the Welford loop
            // in the same file stay clean.
            ("crates/fl/src/folds.rs".to_string(), 6),
            ("crates/fl/src/folds.rs".to_string(), 13),
        ],
        "{}",
        report.render_human()
    );
    assert_eq!(report.suppressions_used, 1);
    assert_eq!(errors_of(&report, Rule::Suppression), vec![]);
}
