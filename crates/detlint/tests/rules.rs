//! Per-rule fixture trees: each exercises the positive case, the
//! suppressed case, and (where the fixture has one) the
//! unused-suppression case, through the full `lint_root` engine.

use detlint::{lint_root, Config, Report, Rule, Severity};
use std::path::PathBuf;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str, config: &Config) -> Report {
    lint_root(&fixture_root(name), config).expect("fixture tree must be readable")
}

fn errors_of(report: &Report, rule: Rule) -> Vec<(String, u32)> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.severity == Severity::Error)
        .map(|f| (f.file.clone(), f.line))
        .collect()
}

#[test]
fn wall_clock_flags_disallowed_crates_only() {
    let mut config = Config::bare();
    config.wall_clock_allowed_crates = vec!["tel".into()];
    let report = lint("wall_clock", &config);
    assert_eq!(
        errors_of(&report, Rule::WallClock),
        vec![
            // The reactor event loop: simulated time only — any wall
            // read there is a determinism bug, never a span boundary.
            ("crates/reactor/src/event_loop.rs".to_string(), 6),
            ("crates/reactor/src/event_loop.rs".to_string(), 8),
            ("crates/scan/src/timing.rs".to_string(), 4),
            ("crates/scan/src/timing.rs".to_string(), 5),
        ],
        "{}",
        report.render_human()
    );
    // The two annotated reads are silenced, and both comments matched.
    assert_eq!(report.suppressions_used, 2);
    assert_eq!(errors_of(&report, Rule::Suppression), vec![]);
}

#[test]
fn unordered_iter_flags_artifact_crates_only() {
    let mut config = Config::bare();
    config.artifact_crates = vec!["art".into()];
    let report = lint("unordered_iter", &config);
    assert_eq!(
        errors_of(&report, Rule::UnorderedIter),
        vec![
            ("crates/art/src/rows.rs".to_string(), 8),
            ("crates/art/src/rows.rs".to_string(), 9),
        ],
        "{}",
        report.render_human()
    );
    assert_eq!(report.suppressions_used, 1);

    // Outside the artifact set the same tree is clean — but the
    // suppression then silences nothing, which is itself an error.
    let report = lint("unordered_iter", &Config::bare());
    assert_eq!(errors_of(&report, Rule::UnorderedIter), vec![]);
    assert_eq!(
        errors_of(&report, Rule::Suppression),
        vec![("crates/art/src/rows.rs".to_string(), 12)]
    );
}

#[test]
fn unseeded_rng_flags_untraceable_constructions() {
    let report = lint("unseeded_rng", &Config::bare());
    assert_eq!(
        errors_of(&report, Rule::UnseededRng),
        vec![
            ("crates/x/src/rng.rs".to_string(), 4),
            ("crates/x/src/rng.rs".to_string(), 5),
        ],
        "{}",
        report.render_human()
    );
    // The opaque-but-annotated construction is silenced; the
    // seed_for_shard and literal-seed ones never fire.
    assert_eq!(report.suppressions_used, 1);
    assert_eq!(errors_of(&report, Rule::Suppression), vec![]);
}

#[test]
fn forbid_unsafe_checks_crate_roots() {
    let report = lint("forbid_unsafe", &Config::bare());
    assert_eq!(
        errors_of(&report, Rule::ForbidUnsafe),
        vec![("crates/bad/src/lib.rs".to_string(), 1)],
        "{}",
        report.render_human()
    );
    // `good` carries the attribute; `shim` suppresses the finding with a
    // trailing comment on the (single) line the finding anchors to.
    assert_eq!(report.suppressions_used, 1);
}

#[test]
fn unused_suppressions_are_errors() {
    let report = lint("unused_suppression", &Config::bare());
    assert_eq!(
        errors_of(&report, Rule::Suppression),
        vec![("crates/x/src/clean.rs".to_string(), 3)],
        "{}",
        report.render_human()
    );
    assert_eq!(report.suppressions_used, 0);
}

fn panic_config(baseline: &str) -> Config {
    let mut config = Config::bare();
    config.hot_path_files = vec!["crates/hot/src/path.rs".into()];
    config.baseline_path = baseline.to_string();
    config
}

#[test]
fn panic_ratchet_accepts_exact_baseline() {
    let report = lint("panic", &panic_config("baseline-exact.json"));
    assert_eq!(report.errors(), 0, "{}", report.render_human());
    assert_eq!(report.slack(), 0);
    assert_eq!(report.panic_counts["crates/hot/src/path.rs"], 3);
}

#[test]
fn panic_ratchet_rejects_counts_above_baseline() {
    let report = lint("panic", &panic_config("baseline-tight.json"));
    assert_eq!(
        errors_of(&report, Rule::PanicHygiene),
        vec![("crates/hot/src/path.rs".to_string(), 0)]
    );
}

#[test]
fn panic_ratchet_warns_on_slack() {
    let report = lint("panic", &panic_config("baseline-slack.json"));
    assert_eq!(report.errors(), 0, "{}", report.render_human());
    assert_eq!(report.slack(), 1);
}

#[test]
fn panic_ratchet_rejects_missing_and_stale_baselines() {
    let report = lint("panic", &panic_config("no-such-baseline.json"));
    assert_eq!(
        errors_of(&report, Rule::PanicHygiene),
        vec![("no-such-baseline.json".to_string(), 0)]
    );

    let report = lint("panic", &panic_config("baseline-stale.json"));
    assert_eq!(
        errors_of(&report, Rule::PanicHygiene),
        vec![("crates/gone/src/old.rs".to_string(), 0)]
    );
}
