//! Wire-format benchmarks: certificate / OCSP / TLS encode-decode.

use asn1::Time;
use criterion::{criterion_group, criterion_main, Criterion};
use ocsp::{CertId, OcspRequest, OcspResponse, Responder, ResponderProfile};
use pki::{Certificate, CertificateAuthority, IssueParams};
use rand::{rngs::StdRng, SeedableRng};
use tls::wire::{CertificateMsg, ClientHello};

fn now() -> Time {
    Time::from_civil(2018, 5, 1, 0, 0, 0)
}

fn bench_certificates(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut ca = CertificateAuthority::new_root(&mut rng, "Bench", "Bench Root", "b.test", now());
    let leaf = ca.issue(
        &mut rng,
        &IssueParams::new("bench.example", now()).must_staple(true),
    );
    let der = leaf.to_der();

    let mut group = c.benchmark_group("certificate");
    group.bench_function("encode", |b| {
        b.iter(|| std::hint::black_box(&leaf).to_der())
    });
    group.bench_function("decode", |b| {
        b.iter(|| Certificate::from_der(std::hint::black_box(&der)).unwrap())
    });
    group.bench_function("verify-chain-signature", |b| {
        b.iter(|| assert!(leaf.verify_signature(ca.certificate().public_key())))
    });
    group.bench_function("issue-leaf", |b| {
        b.iter(|| ca.issue(&mut rng, &IssueParams::new("issue.example", now())))
    });
    group.finish();
}

fn bench_ocsp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut ca = CertificateAuthority::new_root(&mut rng, "Bench", "Bench Root", "b.test", now());
    let leaf = ca.issue(&mut rng, &IssueParams::new("bench.example", now()));
    let id = CertId::for_certificate(&leaf, ca.certificate());
    let request = OcspRequest::single(id.clone());
    let request_der = request.to_der();
    let mut on_demand = Responder::new("u", ResponderProfile::healthy());
    let mut pre_generated =
        Responder::new("u", ResponderProfile::healthy().pre_generated(12 * 3_600));
    let body = on_demand.handle(&ca, &request, now());

    let mut group = c.benchmark_group("ocsp");
    group.bench_function("request-encode", |b| b.iter(|| request.to_der()));
    group.bench_function("request-decode", |b| {
        b.iter(|| OcspRequest::from_der(std::hint::black_box(&request_der)).unwrap())
    });
    group.bench_function("respond-on-demand", |b| {
        b.iter(|| on_demand.handle(&ca, &request, now()))
    });
    group.bench_function("respond-pre-generated-cached", |b| {
        b.iter(|| pre_generated.handle(&ca, &request, now()))
    });
    group.bench_function("response-decode", |b| {
        b.iter(|| OcspResponse::from_der(std::hint::black_box(&body)).unwrap())
    });
    group.bench_function("validate-full", |b| {
        b.iter(|| {
            ocsp::validate_response(&body, &id, ca.certificate(), now(), Default::default())
                .unwrap()
        })
    });
    group.finish();
}

fn bench_tls(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut ca = CertificateAuthority::new_root(&mut rng, "Bench", "Bench Root", "b.test", now());
    let leaf = ca.issue(&mut rng, &IssueParams::new("bench.example", now()));
    let hello = ClientHello::new("bench.example", true);
    let hello_bytes = hello.encode();
    let cert_msg = CertificateMsg {
        chain: vec![leaf, ca.certificate().clone()],
    };
    let cert_bytes = cert_msg.encode();

    let mut group = c.benchmark_group("tls");
    group.bench_function("client-hello-encode", |b| b.iter(|| hello.encode()));
    group.bench_function("client-hello-decode", |b| {
        b.iter(|| ClientHello::decode(std::hint::black_box(&hello_bytes)).unwrap())
    });
    group.bench_function("certificate-msg-encode", |b| b.iter(|| cert_msg.encode()));
    group.bench_function("certificate-msg-decode", |b| {
        b.iter(|| CertificateMsg::decode(std::hint::black_box(&cert_bytes)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_certificates, bench_ocsp, bench_tls
}
criterion_main!(benches);
