//! Campaign-scale benchmarks: what does one probe / one round / one study
//! cost? These bound how far the ecosystem scale can be pushed.

use criterion::{criterion_group, criterion_main, Criterion};
use ecosystem::{EcosystemConfig, LiveEcosystem};
use mustaple::Study;
use netsim::Region;
use ocsp::OcspRequest;
use scanner::consistency::ConsistencyStudy;
use scanner::executor::Executor;
use scanner::hourly::HourlyCampaign;
use std::num::NonZeroUsize;

fn bench_probe(c: &mut Criterion) {
    let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
    let mut world = eco.build_world();
    let target = &eco.scan_targets[0];
    let req = OcspRequest::single(target.cert_id.clone()).to_der();
    let t = eco.config.campaign_start + 3_600;
    c.bench_function("single-probe", |b| {
        b.iter(|| world.http_post(Region::Virginia, &target.url, &req, t))
    });
}

fn bench_campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("hourly-tiny", |b| {
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        b.iter(|| HourlyCampaign::new(&eco).run())
    });
    group.bench_function("consistency-tiny", |b| {
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        let at = eco.config.campaign_start + 6 * 86_400;
        b.iter(|| ConsistencyStudy::run(&eco, at, Region::Virginia))
    });
    group.bench_function("ecosystem-generate-tiny", |b| {
        b.iter(|| LiveEcosystem::generate(EcosystemConfig::tiny()))
    });
    group.bench_function("full-study-tiny", |b| {
        b.iter(|| Study::new(EcosystemConfig::tiny()).run())
    });
    group.finish();
}

/// Serial vs sharded executor on the identical campaign: the tentpole
/// comparison. Output equality is enforced by tests; this measures the
/// wall-clock side of the trade.
fn bench_executor(c: &mut Criterion) {
    let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
    let mut group = c.benchmark_group("executor");
    group.sample_size(10);
    group.bench_function("hourly-serial", |b| {
        b.iter(|| HourlyCampaign::new(&eco).run_with(&Executor::serial()))
    });
    for workers in [2usize, 4] {
        let executor = Executor::new(NonZeroUsize::new(workers));
        group.bench_function(format!("hourly-sharded-{workers}"), |b| {
            b.iter(|| HourlyCampaign::new(&eco).run_with(&executor))
        });
    }
    let at = eco.config.campaign_start + 6 * 86_400;
    group.bench_function("consistency-serial", |b| {
        b.iter(|| ConsistencyStudy::run_with(&eco, at, Region::Virginia, &Executor::serial()))
    });
    let four = Executor::new(NonZeroUsize::new(4));
    group.bench_function("consistency-sharded-4", |b| {
        b.iter(|| ConsistencyStudy::run_with(&eco, at, Region::Virginia, &four))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_probe, bench_campaigns, bench_executor
}
criterion_main!(benches);
