//! Campaign-scale benchmarks: what does one probe / one round / one study
//! cost? These bound how far the ecosystem scale can be pushed.

use criterion::{criterion_group, criterion_main, Criterion};
use ecosystem::{EcosystemConfig, LiveEcosystem};
use mustaple::Study;
use netsim::Region;
use ocsp::OcspRequest;
use scanner::hourly::HourlyCampaign;
use scanner::consistency::ConsistencyStudy;

fn bench_probe(c: &mut Criterion) {
    let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
    let mut world = eco.build_world();
    let target = &eco.scan_targets[0];
    let req = OcspRequest::single(target.cert_id.clone()).to_der();
    let t = eco.config.campaign_start + 3_600;
    c.bench_function("single-probe", |b| {
        b.iter(|| world.http_post(Region::Virginia, &target.url, &req, t))
    });
}

fn bench_campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("hourly-tiny", |b| {
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        b.iter(|| HourlyCampaign::new(&eco).run())
    });
    group.bench_function("consistency-tiny", |b| {
        let eco = LiveEcosystem::generate(EcosystemConfig::tiny());
        let at = eco.config.campaign_start + 6 * 86_400;
        b.iter(|| ConsistencyStudy::run(&eco, at, Region::Virginia))
    });
    group.bench_function("ecosystem-generate-tiny", |b| {
        b.iter(|| LiveEcosystem::generate(EcosystemConfig::tiny()))
    });
    group.bench_function("full-study-tiny", |b| {
        b.iter(|| Study::new(EcosystemConfig::tiny()).run())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_probe, bench_campaigns
}
criterion_main!(benches);
