//! Benchmarks of the paper's two controlled test suites (the release
//! artifacts a CA or vendor would run in CI).

use asn1::Time;
use browser::testsuite::run_browser_suite;
use criterion::{criterion_group, criterion_main, Criterion};
use pki::RootStore;
use webserver::experiment::{run_table3_experiments, TestBench};
use webserver::{Apache, Ideal, Nginx};

fn bench_suites(c: &mut Criterion) {
    let t0 = Time::from_civil(2018, 6, 1, 0, 0, 0);
    let bench = TestBench::new(42, t0);
    let mut roots = RootStore::new("bench");
    roots.add(bench.site.chain.last().unwrap().clone());

    let mut group = c.benchmark_group("suites");
    group.sample_size(20);
    group.bench_function("browser-suite-16", |b| {
        b.iter(|| run_browser_suite(&bench, &roots, t0))
    });
    group.bench_function("table3-apache", |b| {
        b.iter(|| run_table3_experiments(&bench, Apache::new))
    });
    group.bench_function("table3-nginx", |b| {
        b.iter(|| run_table3_experiments(&bench, Nginx::new))
    });
    group.bench_function("table3-ideal", |b| {
        b.iter(|| run_table3_experiments(&bench, Ideal::new))
    });
    group.finish();
}

criterion_group!(benches, bench_suites);
criterion_main!(benches);
