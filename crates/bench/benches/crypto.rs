//! Microbenchmarks of the cryptographic substrate, including the
//! CRT-vs-plain signing ablation that justified the KeyPair layout, the
//! schoolbook-vs-Montgomery modexp comparison behind the scan hot path,
//! and the responder's signed-response cache (cold sign vs cached hit).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ocsp::{CertId, OcspRequest, Responder, ResponderProfile};
use pki::{CertificateAuthority, IssueParams};
use rand::{rngs::StdRng, Rng, SeedableRng};
use simcrypto::{sha256, BigUint, KeyPair};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa");
    for bits in [384usize, 512, 768] {
        let kp = KeyPair::generate(&mut StdRng::seed_from_u64(1), bits);
        let msg = b"a typical ocsp response data blob";
        let sig = kp.sign(msg);
        group.bench_function(format!("sign-crt-{bits}"), |b| {
            b.iter(|| kp.sign(std::hint::black_box(msg)))
        });
        group.bench_function(format!("sign-plain-{bits}"), |b| {
            b.iter(|| kp.sign_without_crt(std::hint::black_box(msg)))
        });
        group.bench_function(format!("verify-{bits}"), |b| {
            b.iter(|| kp.public().verify(std::hint::black_box(msg), &sig).unwrap())
        });
    }
    group.bench_function("keygen-384", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                StdRng::seed_from_u64(seed)
            },
            |mut rng| KeyPair::generate(&mut rng, 384),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The modexp ablation behind the scan hot path: LSB-first schoolbook
/// square-and-multiply vs 4-bit windowed Montgomery (CIOS). Every RSA
/// sign/verify in the study funnels through `modpow`.
fn bench_modexp(c: &mut Criterion) {
    let mut group = c.benchmark_group("modexp");
    for bits in [384usize, 512, 768] {
        let mut rng = StdRng::seed_from_u64(0xE0D * bits as u64);
        let bytes = bits / 8;
        let rand_int = |rng: &mut StdRng, len: usize| {
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf[..]);
            BigUint::from_be_bytes(&buf)
        };
        let base = rand_int(&mut rng, bytes);
        let exp = rand_int(&mut rng, bytes);
        let mut m_bytes = vec![0u8; bytes];
        rng.fill(&mut m_bytes[..]);
        m_bytes[0] |= 0x80; // full width
        m_bytes[bytes - 1] |= 0x01; // odd: the Montgomery-eligible case
        let m = BigUint::from_be_bytes(&m_bytes);
        group.bench_function(format!("schoolbook-{bits}"), |b| {
            b.iter(|| std::hint::black_box(&base).modpow_schoolbook(std::hint::black_box(&exp), &m))
        });
        group.bench_function(format!("montgomery-{bits}"), |b| {
            b.iter(|| std::hint::black_box(&base).modpow(std::hint::black_box(&exp), &m))
        });
    }
    group.finish();
}

/// The responder's signed-response cache: a cold `handle_with` pays a
/// full RSA sign; a warm one serves cached DER. The gap is the per-probe
/// saving the hourly campaign collects on every repeat probe of a
/// (serial, window).
fn bench_responder_cache(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x0C5);
    let now = asn1::Time::from_civil(2018, 5, 1, 10, 30, 0);
    let mut ca = CertificateAuthority::new_root(&mut rng, "CA", "Root", "ca.test", now);
    let leaf = ca.issue(&mut rng, &IssueParams::new("site.example", now));
    let id = CertId::for_certificate(&leaf, ca.certificate());
    let req = OcspRequest::single(id);
    let profile = ResponderProfile::healthy()
        .pre_generated(7_200)
        .validity(7_200);
    let mut reg = telemetry::Registry::new();

    let mut group = c.benchmark_group("responder");
    group.bench_function("handle-cold", |b| {
        b.iter_batched(
            || Responder::new("http://ocsp.ca.test/", profile.clone()),
            |mut responder| responder.handle_with(&ca, &req, now, &mut reg),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("handle-cache-hit", |b| {
        let mut responder = Responder::new("http://ocsp.ca.test/", profile.clone());
        responder.handle_with(&ca, &req, now, &mut reg); // prime the window
        b.iter(|| responder.handle_with(&ca, &req, now, &mut reg))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha256, bench_rsa, bench_modexp, bench_responder_cache
}
criterion_main!(benches);
