//! Microbenchmarks of the cryptographic substrate, including the
//! CRT-vs-plain signing ablation that justified the KeyPair layout.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use simcrypto::{sha256, KeyPair};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa");
    for bits in [384usize, 512, 768] {
        let kp = KeyPair::generate(&mut StdRng::seed_from_u64(1), bits);
        let msg = b"a typical ocsp response data blob";
        let sig = kp.sign(msg);
        group.bench_function(format!("sign-crt-{bits}"), |b| {
            b.iter(|| kp.sign(std::hint::black_box(msg)))
        });
        group.bench_function(format!("sign-plain-{bits}"), |b| {
            b.iter(|| kp.sign_without_crt(std::hint::black_box(msg)))
        });
        group.bench_function(format!("verify-{bits}"), |b| {
            b.iter(|| kp.public().verify(std::hint::black_box(msg), &sig).unwrap())
        });
    }
    group.bench_function("keygen-384", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                StdRng::seed_from_u64(seed)
            },
            |mut rng| KeyPair::generate(&mut rng, 384),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha256, bench_rsa
}
criterion_main!(benches);
