//! Ablations of the design choices DESIGN.md calls out.
//!
//! Each function quantifies one design axis the paper discusses
//! qualitatively, using the same machinery as the main experiments:
//!
//! 1. [`refresh_validity_sweep`] — §5.4's non-overlapping-window hazard
//!    as a function of the refresh/validity ratio;
//! 2. [`server_policy_under_outage`] — the client-visible consequences
//!    of Apache vs Nginx vs recommended stapling policies when the
//!    responder goes down (the quantitative Table 3);
//! 3. [`margin_vs_clock_skew`] — Figure 9's "slightly slow clocks"
//!    concern: rejection rates for zero-margin responses;
//! 4. [`blank_next_update_load`] — the §5.4 claim that blank
//!    `nextUpdate` inflates responder load because clients cannot cache;
//! 5. [`hard_vs_soft_fail`] — §2.3's threat model: an attacker stripping
//!    staples succeeds against soft-fail clients and fails against
//!    Must-Staple-respecting ones.

use crate::Artifact;
use analysis::Table;
use asn1::Time;
use browser::{BrowserClient, NoTransport, BROWSER_MATRIX};
use ocsp::{validate_response, OcspRequest, Responder, ResponderProfile, ValidationConfig};
use pki::RootStore;
use tls::ServerFlight;
use webserver::experiment::TestBench;
use webserver::fetcher::{FetchOutcome, FnFetcher};
use webserver::server::{ServerKind, SiteConfig, StaplingServer};
use webserver::{Apache, Ideal, Nginx, OcspFetcher};

fn t0() -> Time {
    Time::from_civil(2018, 6, 1, 0, 0, 0)
}

/// Ablation 1: sweep the refresh-interval/validity ratio of a
/// pre-generated responder and measure how often a client that refetches
/// right after expiry receives an *already expired* response.
pub fn refresh_validity_sweep(seed: u64) -> Artifact {
    let bench = TestBench::new(seed, t0());
    let validity = 7_200i64;
    let mut table = Table::new(&["refresh/validity", "expired_refetch_pct"]);
    for ratio_pct in [50i64, 75, 100, 125, 150] {
        let refresh = validity * ratio_pct / 100;
        let profile = ResponderProfile::healthy()
            .margin(0)
            .validity(validity)
            .pre_generated(refresh);
        let mut responder = Responder::new("u", profile);
        let ca_view = bench_ca(&bench);
        let mut expired = 0u32;
        let mut total = 0u32;
        // Client loop: fetch, cache until nextUpdate, refetch just after.
        let mut now = t0() + 1;
        for _ in 0..50 {
            let body = responder.handle(ca_view.0, &OcspRequest::single(ca_view.1.clone()), now);
            let parsed = validate_response(
                &body,
                &ca_view.1,
                ca_view.0.certificate(),
                now,
                ValidationConfig::default(),
            );
            total += 1;
            match parsed {
                Ok(v) => {
                    let next = v.next_update.expect("finite validity");
                    now = next + 60; // refetch just after expiry
                }
                Err(_) => {
                    expired += 1;
                    now += validity; // move on
                }
            }
        }
        table.row(&[
            format!("{:.2}", ratio_pct as f64 / 100.0),
            format!("{:.0}", 100.0 * expired as f64 / total as f64),
        ]);
    }
    Artifact {
        name: "ablation-refresh",
        summary: "Ablation 1 — once the refresh interval reaches the validity period \
                  (ratio ≥ 1.0), post-expiry refetches start hitting not-yet-refreshed \
                  windows: the §5.4 non-overlap hazard (hinet.net, cnnic) in numbers."
            .to_string(),
        table,
    }
}

// The test bench keeps its CA private; expose what the ablations need.
fn bench_ca(bench: &TestBench) -> (&pki::CertificateAuthority, ocsp::CertId) {
    (bench.ca(), bench.cert_id().clone())
}

/// Ablation 2: client-visible staple quality under a flaky responder,
/// per server policy. Clients connect every 10 minutes for 48 hours; the
/// responder is down for two 6-hour windows.
pub fn server_policy_under_outage(seed: u64) -> Artifact {
    let bench = TestBench::new(seed, t0());
    let mut table = Table::new(&[
        "server",
        "valid_staple_pct",
        "no_staple_pct",
        "expired_staple_pct",
        "stalled_pct",
    ]);
    for kind in [ServerKind::Apache, ServerKind::Nginx, ServerKind::Ideal] {
        let mut server: Box<dyn StaplingServer> = match kind {
            ServerKind::Apache => Box::new(Apache::new(bench.site.clone())),
            ServerKind::Nginx => Box::new(Nginx::new(bench.site.clone())),
            ServerKind::Ideal => Box::new(Ideal::new(bench.site.clone())),
        };
        let mut fetcher = flaky_fetcher(&bench);
        let issuer = bench.ca().certificate().clone();
        let cert_id = bench.cert_id().clone();
        let (mut valid, mut none, mut expired, mut stalled) = (0u32, 0u32, 0u32, 0u32);
        let mut connections = 0u32;
        for minute in (0..48 * 60).step_by(10) {
            let now = t0() + minute * 60;
            server.tick(now, &mut fetcher);
            let flight: ServerFlight = server.serve(now, &mut fetcher);
            connections += 1;
            if flight.stall_ms > 0.0 {
                stalled += 1;
            }
            match flight.stapled_ocsp {
                None => none += 1,
                Some(body) => {
                    match validate_response(
                        &body,
                        &cert_id,
                        &issuer,
                        now,
                        ValidationConfig::default(),
                    ) {
                        Ok(_) => valid += 1,
                        Err(_) => expired += 1,
                    }
                }
            }
        }
        let pct = |n: u32| format!("{:.1}", 100.0 * n as f64 / connections as f64);
        table.row(&[
            kind.name().into(),
            pct(valid),
            pct(none),
            pct(expired),
            pct(stalled),
        ]);
    }
    Artifact {
        name: "ablation-server-policy",
        summary: "Ablation 2 — the quantitative Table 3: under responder outages the \
                  recommended (prefetching, retaining) policy keeps nearly every client \
                  stapled; Apache drops staples and serves errors; Nginx leaves first \
                  clients unstapled."
            .to_string(),
        table,
    }
}

/// A fetcher against the bench responder that is unreachable during two
/// 6-hour windows (hours 12–18 and 30–36), with a 2-hour validity so
/// refreshes matter.
fn flaky_fetcher(bench: &TestBench) -> FnFetcher {
    let mut live = bench.live_fetcher(7_200);
    FnFetcher::new(move |now: Time| {
        let hour = (now - t0()) / 3_600;
        if (12..18).contains(&hour) || (30..36).contains(&hour) {
            FetchOutcome::Unreachable {
                latency_ms: 2_000.0,
            }
        } else {
            live.fetch(now)
        }
    })
}

/// Ablation 3: rejection rate of zero-margin and future-dated responses
/// as a function of client clock skew.
pub fn margin_vs_clock_skew(seed: u64) -> Artifact {
    let bench = TestBench::new(seed, t0());
    let mut table = Table::new(&[
        "margin_secs",
        "skew_-300s",
        "skew_-60s",
        "skew_0s",
        "skew_+60s",
    ]);
    for margin in [-120i64, 0, 60, 3_600] {
        let profile = ResponderProfile::healthy().margin(margin);
        let mut responder = Responder::new("u", profile);
        let (ca, id) = bench_ca(&bench);
        let body = responder.handle(ca, &OcspRequest::single(id.clone()), t0());
        let mut row = vec![margin.to_string()];
        for skew in [-300i64, -60, 0, 60] {
            let rejected = validate_response(
                &body,
                &id,
                ca.certificate(),
                t0(),
                ValidationConfig {
                    clock_skew: skew,
                    require_next_update: false,
                },
            )
            .is_err();
            row.push(if rejected {
                "reject".into()
            } else {
                "accept".to_string()
            });
        }
        table.row(&row);
    }
    Artifact {
        name: "ablation-margin",
        summary: "Ablation 3 — Figure 9's concern made concrete: zero-margin responses are \
                  rejected by clients with slightly slow clocks; future-dated thisUpdate is \
                  rejected even by accurate clocks; a one-hour margin absorbs realistic skew."
            .to_string(),
        table,
    }
}

/// Ablation 4: responder request load per caching client over one week,
/// blank `nextUpdate` vs one-week validity.
pub fn blank_next_update_load(seed: u64) -> Artifact {
    let bench = TestBench::new(seed, t0());
    let mut table = Table::new(&["next_update", "requests_per_client_week"]);
    for (label, profile) in [
        ("blank", ResponderProfile::healthy().blank_next_update()),
        ("7 days", ResponderProfile::healthy().validity(7 * 86_400)),
        ("1 day", ResponderProfile::healthy().validity(86_400)),
    ] {
        let mut responder = Responder::new("u", profile);
        let (ca, id) = bench_ca(&bench);
        let mut requests = 0u32;
        let mut cached_until: Option<Time> = None;
        // A client consults revocation hourly for a week; it caches a
        // response until nextUpdate, and cannot cache blank responses.
        for hour in 0..(7 * 24) {
            let now = t0() + hour * 3_600;
            if cached_until.is_some_and(|until| now < until) {
                continue;
            }
            let body = responder.handle(ca, &OcspRequest::single(id.clone()), now);
            requests += 1;
            if let Ok(v) = validate_response(&body, &id, ca.certificate(), now, Default::default())
            {
                cached_until = v.next_update;
            }
        }
        table.row(&[label.into(), requests.to_string()]);
    }
    Artifact {
        name: "ablation-blank",
        summary: "Ablation 4 — blank nextUpdate defeats client caching entirely: one probe \
                  per consultation instead of one per validity window, the §5.4 workload \
                  concern."
            .to_string(),
        table,
    }
}

/// Ablation 5: an active attacker strips the staple from a revoked
/// Must-Staple certificate. What fraction of the browser matrix still
/// connects?
pub fn hard_vs_soft_fail(seed: u64) -> Artifact {
    let bench = TestBench::new(seed, t0());
    let mut roots = RootStore::new("ablation");
    roots.add(bench.site.chain.last().unwrap().clone());

    // The attacker's server: presents the (revoked, Must-Staple)
    // certificate with the staple stripped.
    struct StrippingAttacker {
        site: SiteConfig,
    }
    impl StaplingServer for StrippingAttacker {
        fn kind(&self) -> ServerKind {
            ServerKind::Apache
        }
        fn serve(&mut self, _now: Time, _f: &mut dyn OcspFetcher) -> ServerFlight {
            self.site.flight(None, 0.0)
        }
        fn tick(&mut self, _now: Time, _f: &mut dyn OcspFetcher) {}
    }

    let mut table = Table::new(&["browser", "connection"]);
    let mut accepted = 0;
    for profile in BROWSER_MATRIX {
        let mut server = StrippingAttacker {
            site: bench.site.clone(),
        };
        let mut fetcher = webserver::ScriptedFetcher::down();
        let outcome = BrowserClient::new(profile).connect(
            &mut server,
            &mut fetcher,
            &mut NoTransport::new(),
            "bench.example",
            &roots,
            t0(),
        );
        let ok = outcome.verdict.is_accepted();
        if ok {
            accepted += 1;
        }
        table.row(&[
            profile.label(),
            if ok {
                "ACCEPTED (attack succeeds)".into()
            } else {
                "rejected".to_string()
            },
        ]);
    }
    Artifact {
        name: "ablation-attack",
        summary: format!(
            "Ablation 5 — §2.3's staple-stripping attacker: {accepted}/16 browsers accept \
             the revoked Must-Staple certificate once the staple is stripped; only the \
             Must-Staple-respecting Firefoxes refuse."
        ),
        table,
    }
}

/// Ablation 6: exposure window after a key compromise, comparing
/// revocation regimes — including the short-lived-certificate
/// alternative of Topalovic et al. (paper §3). The attacker holds the
/// compromised key, replays the last Good staple, and strips/blocks
/// everything else; we measure how long a client keeps accepting.
pub fn compromise_exposure(seed: u64) -> Artifact {
    use pki::{CertificateAuthority, IssueParams, RevocationReason, RootStore};
    use rand::{rngs::StdRng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5107);
    let t_issue = t0();
    let t_compromise = t_issue + 86_400; // compromised one day in
    let mut ca =
        CertificateAuthority::new_root(&mut rng, "Exp CA", "Exp Root", "exp.test", t_issue);
    let mut roots = RootStore::new("exp");
    roots.add(ca.certificate().clone());

    // Regime certificates: 90-day plain, 90-day Must-Staple, 3-day
    // short-lived (the Topalovic et al. proposal: expiry replaces
    // revocation entirely).
    let plain = ca.issue(
        &mut rng,
        &IssueParams::new("exp.example", t_issue).valid_for(90),
    );
    let ms = ca.issue(
        &mut rng,
        &IssueParams::new("exp.example", t_issue)
            .valid_for(90)
            .must_staple(true),
    );
    let short = ca.issue(
        &mut rng,
        &IssueParams::new("exp.example", t_issue).valid_for(3),
    );

    // The attacker captures the last Good staple just before revocation.
    let ms_id = ocsp::CertId::for_certificate(&ms, ca.certificate());
    let mut responder = Responder::new("u", ResponderProfile::healthy().margin(0));
    let captured_staple =
        responder.handle(&ca, &OcspRequest::single(ms_id.clone()), t_compromise - 60);
    ca.revoke(
        plain.serial(),
        t_compromise,
        Some(RevocationReason::KeyCompromise),
    );
    ca.revoke(
        ms.serial(),
        t_compromise,
        Some(RevocationReason::KeyCompromise),
    );
    ca.revoke(
        short.serial(),
        t_compromise,
        Some(RevocationReason::KeyCompromise),
    );

    // Probe acceptance daily: does a client still accept the attacker's
    // handshake at day d after compromise?
    let accepts =
        |cert: &pki::Certificate, staple: Option<&[u8]>, hard_fail: bool, at: asn1::Time| {
            if !cert.validity().contains(at) {
                return false;
            }
            if pki::validate_chain(std::slice::from_ref(cert), &roots, at, Some("exp.example"))
                .is_err()
            {
                return false;
            }
            match staple {
                Some(body) => {
                    let id = ocsp::CertId::for_certificate(cert, ca.certificate());
                    match validate_response(body, &id, ca.certificate(), at, Default::default()) {
                        Ok(v) => !matches!(v.status, ocsp::CertStatus::Revoked { .. }),
                        Err(_) => !(cert.has_must_staple() && hard_fail),
                    }
                }
                None => !(cert.has_must_staple() && hard_fail),
            }
        };
    let horizon = |cert: &pki::Certificate, staple: Option<&[u8]>, hard_fail: bool| -> i64 {
        let mut last = -1i64;
        for day in 0..120 {
            let at = t_compromise + day * 86_400;
            if accepts(cert, staple, hard_fail, at) {
                last = day;
            }
        }
        last + 1
    };

    let mut table = Table::new(&["regime", "exposure_after_compromise_days"]);
    table.row(&[
        "soft-fail client, attacker strips revocation".into(),
        horizon(&plain, None, false).to_string(),
    ]);
    table.row(&[
        "Must-Staple + hard-fail, attacker replays last staple".into(),
        horizon(&ms, Some(&captured_staple), true).to_string(),
    ]);
    table.row(&[
        "Must-Staple + hard-fail, staple blocked entirely".into(),
        horizon(&ms, None, true).to_string(),
    ]);
    table.row(&[
        "short-lived certificate (3-day), no revocation at all".into(),
        horizon(&short, None, false).to_string(),
    ]);
    Artifact {
        name: "ablation-shortlived",
        summary: "Ablation 6 — exposure after key compromise. Soft-fail clients stay exposed                   until the certificate expires (~89 days); Must-Staple bounds exposure by                   the staple's validity (~7 days replayed, 0 once blocked); short-lived                   certificates bound it by the remaining lifetime (~2 days) with no                   revocation machinery at all — the Topalovic et al. trade-off."
            .to_string(),
        table,
    }
}

/// All ablations.
pub fn all(seed: u64) -> Vec<Artifact> {
    vec![
        refresh_validity_sweep(seed),
        server_policy_under_outage(seed),
        margin_vs_clock_skew(seed),
        blank_next_update_load(seed),
        hard_vs_soft_fail(seed),
        compromise_exposure(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ablations_produce_tables() {
        for artifact in all(1234) {
            assert!(!artifact.summary.is_empty());
            assert!(artifact.table.len() >= 3, "{} rows", artifact.name);
        }
    }

    #[test]
    fn exposure_ordering_matches_the_argument() {
        let artifact = compromise_exposure(55);
        let csv = artifact.table.to_csv();
        let days: Vec<i64> = csv
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap().parse().unwrap())
            .collect();
        let (soft, ms_replay, ms_blocked, short) = (days[0], days[1], days[2], days[3]);
        assert!(
            soft >= 85,
            "soft-fail exposed for the cert lifetime: {soft}"
        );
        assert!(
            (1..=8).contains(&ms_replay),
            "staple replay bounded by validity: {ms_replay}"
        );
        assert_eq!(ms_blocked, 0, "hard-fail with no staple = no exposure");
        assert!(
            (1..=3).contains(&short),
            "short-lived bounded by lifetime: {short}"
        );
        assert!(soft > ms_replay && ms_replay > ms_blocked);
    }

    #[test]
    fn attack_succeeds_against_exactly_the_soft_failers() {
        let artifact = hard_vs_soft_fail(7);
        let rendered = artifact.table.render();
        let accepted = rendered.matches("ACCEPTED").count();
        assert_eq!(accepted, 12, "12 of 16 browsers soft-fail\n{rendered}");
    }

    #[test]
    fn blank_next_update_costs_more_requests() {
        let artifact = blank_next_update_load(9);
        let csv = artifact.table.to_csv();
        let mut lines = csv.lines().skip(1);
        let blank: u32 = lines
            .next()
            .unwrap()
            .split(',')
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let week: u32 = lines
            .next()
            .unwrap()
            .split(',')
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(blank > 50 * week, "blank={blank} week={week}");
    }
}
