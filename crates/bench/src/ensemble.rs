//! Multi-seed ensemble runner.
//!
//! A single study run is one draw from one RNG seed; every number in a
//! regenerated figure is a point estimate with no error bar. This
//! module reruns the full campaign under N independently-derived seeds
//! and folds the N copies of each artifact into statistics with real
//! uncertainty: mean, sample standard deviation, Student-t 95 %
//! confidence intervals, and min/max envelopes (see
//! [`analysis::stats`]).
//!
//! Determinism contract, inherited from the executor:
//!
//! * Replica seeds are a pure function of `(base seed, replica index)`
//!   via [`seed_for_replica`] — the same SplitMix64 derivation
//!   [`scanner::executor::seed_for_shard`] uses, salted with
//!   [`ENSEMBLE_STREAM`] so ensemble streams never collide with the
//!   campaign's own shard streams. Replica 0 *is* the base seed, so the
//!   primary artifacts of an ensemble run are byte-identical to a
//!   plain single-seed run.
//! * Replicas are scheduled as top-level work units on
//!   [`Executor::run_chunked`] (one single-chunk shard per replica) and
//!   collected in replica order, so `--serial` and `--workers N`
//!   produce byte-identical companions, manifests, and expositions.
//! * Folding happens in canonical seed order (replica order), making
//!   every ensemble output a pure function of `(config, seeds)`.

use analysis::stats::fold_tables;
use analysis::Table;
use ecosystem::EcosystemConfig;
use mustaple::{Study, StudyResults};
use scanner::executor::{seed_for_shard, Executor};
use std::num::NonZeroUsize;
use telemetry::prom::Exposition;

/// Stream salt separating replica-seed derivation from the campaign's
/// own shard-seed derivation (the bytes spell `ENSEMBLE`). Without it,
/// replica `i` of base seed `b` would draw the same stream as shard `i`
/// of campaign seed `b`.
pub const ENSEMBLE_STREAM: u64 = 0x454e_5345_4d42_4c45;

/// The seed for replica `replica` of an ensemble rooted at `base_seed`.
///
/// Replica 0 is the base seed itself — an ensemble's first replica is
/// exactly the run a plain `figures` invocation would produce, so
/// committed single-seed baselines stay valid. Later replicas derive
/// through [`seed_for_shard`] over the [`ENSEMBLE_STREAM`]-salted base.
pub fn seed_for_replica(base_seed: u64, replica: usize) -> u64 {
    if replica == 0 {
        base_seed
    } else {
        seed_for_shard(base_seed ^ ENSEMBLE_STREAM, replica as u64)
    }
}

/// The first `n` replica seeds of an ensemble rooted at `base_seed`.
///
/// # Panics
///
/// Panics if the derivation ever collides (astronomically unlikely; a
/// collision would silently halve the effective sample size).
pub fn seeds_for(base_seed: u64, n: usize) -> Vec<u64> {
    let seeds: Vec<u64> = (0..n).map(|i| seed_for_replica(base_seed, i)).collect();
    assert_distinct(&seeds);
    seeds
}

/// Parse a `--seed-list` argument: comma-separated decimal seeds.
pub fn parse_seed_list(text: &str) -> Result<Vec<u64>, String> {
    let mut seeds = Vec::new();
    for part in text.split(',') {
        let part = part.trim();
        seeds.push(
            part.parse::<u64>()
                .map_err(|_| format!("bad seed `{part}` (need a decimal u64)"))?,
        );
    }
    if seeds.is_empty() {
        return Err("empty seed list".to_owned());
    }
    for (i, a) in seeds.iter().enumerate() {
        if seeds[..i].contains(a) {
            return Err(format!("duplicate seed {a}"));
        }
    }
    Ok(seeds)
}

fn assert_distinct(seeds: &[u64]) {
    for (i, a) in seeds.iter().enumerate() {
        assert!(!seeds[..i].contains(a), "replica seed collision on {a}");
    }
}

/// N completed study replicas, one per seed, in canonical seed order.
pub struct Ensemble {
    seeds: Vec<u64>,
    replicas: Vec<StudyResults>,
}

impl Ensemble {
    /// Run one full study per seed.
    ///
    /// Replicas are the parallel unit: they are scheduled as top-level
    /// single-chunk shards on [`Executor::run_chunked`] (sized by
    /// `config.parallelism`), and each replica's *inner* study runs
    /// serially so the worker budget is spent across replicas rather
    /// than nested. Inner results are worker-invariant anyway, so this
    /// is purely a scheduling choice, not a determinism requirement.
    ///
    /// # Panics
    ///
    /// Panics when `seeds` is empty or contains duplicates.
    pub fn run(config: &EcosystemConfig, seeds: &[u64]) -> Ensemble {
        assert!(!seeds.is_empty(), "an ensemble needs at least one seed");
        assert_distinct(seeds);
        let replicas = Executor::new(config.parallelism)
            .run_chunked(
                config.seed,
                &vec![1; seeds.len()],
                |replica, _chunk, _rng| {
                    let mut replica_config = config.clone();
                    replica_config.seed = seeds[replica];
                    replica_config.parallelism = NonZeroUsize::new(1);
                    Study::new(replica_config).run()
                },
            )
            .into_iter()
            .map(|mut per_shard| per_shard.remove(0))
            .collect();
        Ensemble {
            seeds: seeds.to_vec(),
            replicas,
        }
    }

    /// The replica seeds, in canonical order.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// The completed replicas, in canonical seed order.
    pub fn replicas(&self) -> &[StudyResults] {
        &self.replicas
    }

    /// The primary replica (index 0 — the base seed when the ensemble
    /// was derived via [`seeds_for`]). Its artifacts are what a
    /// single-seed run would have produced.
    pub fn primary(&self) -> &StudyResults {
        &self.replicas[0]
    }

    /// Fold the named artifact's N per-seed tables into its ensemble
    /// companion table (the `<name>.ens.csv` payload). `None` when the
    /// artifact name is unknown or the per-seed tables cannot be folded
    /// (shape drift across seeds).
    pub fn companion(&self, name: &str) -> Option<Table> {
        let tables: Option<Vec<Table>> = self
            .replicas
            .iter()
            .map(|results| crate::build(name, results).map(|artifact| artifact.table))
            .collect();
        fold_tables(&tables?)
    }

    /// The `seeds.txt` manifest: one decimal seed per line, in
    /// canonical order.
    pub fn seeds_manifest(&self) -> String {
        let mut out = String::new();
        for seed in &self.seeds {
            out.push_str(&seed.to_string());
            out.push('\n');
        }
        out
    }

    /// The merged telemetry exposition: every replica's registry,
    /// absorbed in canonical seed order, each series carrying its
    /// `seed` label (see [`Exposition::from_seeded_registries`]).
    pub fn to_prometheus(&self) -> String {
        Exposition::from_seeded_registries(
            self.seeds
                .iter()
                .zip(&self.replicas)
                .map(|(&seed, results)| (seed, &results.telemetry)),
        )
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_zero_is_the_base_seed() {
        assert_eq!(seed_for_replica(2018, 0), 2018);
        assert_eq!(seed_for_replica(7, 0), 7);
    }

    #[test]
    fn later_replicas_derive_away_from_the_base() {
        let seeds = seeds_for(2018, 8);
        assert_eq!(seeds[0], 2018);
        for (i, &s) in seeds.iter().enumerate().skip(1) {
            assert_ne!(s, 2018, "replica {i} collapsed onto the base seed");
            // Salted derivation: never the campaign's own shard stream.
            assert_ne!(
                s,
                seed_for_shard(2018, i as u64),
                "replica {i} collided with campaign shard {i}"
            );
        }
    }

    #[test]
    fn seed_derivation_is_stable() {
        // Pinned values: committed `seeds.txt` baselines depend on them.
        assert_eq!(seeds_for(2018, 3), seeds_for(2018, 3));
        let again = seeds_for(2018, 5);
        assert_eq!(&seeds_for(2018, 3)[..], &again[..3]);
    }

    #[test]
    fn seed_lists_parse_and_reject_garbage() {
        assert_eq!(parse_seed_list("1,2,3").unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_seed_list(" 7 , 2018 ").unwrap(), vec![7, 2018]);
        assert!(parse_seed_list("1,one").is_err());
        assert!(parse_seed_list("1,1").is_err());
        assert!(parse_seed_list("").is_err());
        assert!(parse_seed_list("-3").is_err());
    }

    #[test]
    fn tiny_two_seed_ensemble_has_sane_shape() {
        let config = EcosystemConfig::tiny();
        let ensemble = Ensemble::run(&config, &seeds_for(config.seed, 2));
        assert_eq!(
            ensemble.seeds(),
            &[config.seed, seeds_for(config.seed, 2)[1]]
        );
        assert_eq!(ensemble.replicas().len(), 2);
        assert_eq!(ensemble.primary().config.seed, config.seed);
        assert_eq!(ensemble.seeds_manifest().lines().count(), 2);

        let companion = ensemble.companion("fig5").expect("fold fig5");
        assert_eq!(companion.header()[0], "metric");
        assert!(!companion.is_empty(), "fig5 companion is empty");
        for row in companion.rows() {
            assert_eq!(row[4], "2", "every cell summarizes both seeds");
        }
        assert!(ensemble.companion("no-such-artifact").is_none());

        let prom = ensemble.to_prometheus();
        assert!(prom.contains("seed=\"7\""), "missing primary seed label");
    }
}
