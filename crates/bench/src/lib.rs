//! Figure and table regeneration.
//!
//! One function per table/figure in the paper's evaluation. Each returns
//! an [`Artifact`]: a name, a prose summary comparing paper and measured
//! values, and a [`Table`] that renders to aligned text or CSV. The
//! `figures` binary drives these; EXPERIMENTS.md quotes their output.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod ensemble;

use analysis::table::{pct, secs};
use analysis::{AlexaAdoption, Cdf, Table};
use ecosystem::{
    monthly_snapshots, AlexaStream, CorpusStream, EcosystemConfig, Engine, LiveEcosystem,
};
use scanner::executor::Executor;
use scanner::hourly::HourlyCampaign;
use scanner::ErrorClass;

use mustaple::StudyResults;
use telemetry::catalog;

/// A regenerated figure or table.
pub struct Artifact {
    /// Identifier, e.g. `fig3` or `table1`.
    pub name: &'static str,
    /// What the paper reported and what we measured.
    pub summary: String,
    /// The data.
    pub table: Table,
}

/// All artifact names, in paper order.
pub const ALL_ARTIFACTS: [&str; 17] = [
    "sec4", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "fig10",
    "reasons", "table2", "fig11", "fig12", "table3", "cdn",
];

/// Build one artifact by name (plus "freshness" as a bonus §5.4 table).
pub fn build(name: &str, results: &StudyResults) -> Option<Artifact> {
    Some(match name {
        "sec4" => sec4(results),
        "fig2" => fig2(results),
        "fig3" => fig3(results),
        "fig4" => fig4(results),
        "fig5" => fig5(results),
        "fig6" => cdf_figure("fig6", "CDF of average certificates per OCSP response (paper: 14.5% of responders send more than one; max 4 full chains)", results.hourly.cdf_cert_counts()),
        "fig7" => cdf_figure("fig7", "CDF of average serial numbers per OCSP response (paper: 96.2% send one; 3.3% always send 20)", results.hourly.cdf_serial_counts()),
        "fig8" => fig8(results),
        "fig9" => cdf_figure("fig9", "CDF of thisUpdate margin at receipt (paper: 17.2% zero margin, 3% future-dated)", results.hourly.cdf_margins()),
        "table1" => table1(results),
        "fig10" => fig10(results),
        "reasons" => reasons(results),
        "table2" => table2(results),
        "fig11" => fig11(results),
        "fig12" => fig12(),
        "table3" => table3(results),
        "cdn" => cdn(results),
        "freshness" => freshness(results),
        "recommendations" => recommendations(results),
        "telemetry" => telemetry_artifact(results),
        _ => return None,
    })
}

fn sec4(results: &StudyResults) -> Artifact {
    let stats = &results.corpus;
    let mut table = Table::new(&["metric", "paper", "measured"]);
    table.row(&[
        "certificates supporting OCSP".into(),
        "95.4%".into(),
        pct(stats.ocsp_fraction()),
    ]);
    table.row(&[
        "certificates with Must-Staple".into(),
        "0.02%".into(),
        format!("{:.3}%", stats.must_staple_fraction() * 100.0),
    ]);
    table.row(&[
        "Must-Staple share issued by Let's Encrypt".into(),
        "97.3%".into(),
        pct(stats.lets_encrypt_must_staple_share()),
    ]);
    for (issuer, count) in results.must_staple_by_ca.iter().take(6) {
        table.row(&[
            format!("Must-Staple issuer: {issuer}"),
            "-".into(),
            count.to_string(),
        ]);
    }
    Artifact {
        name: "sec4",
        summary: format!(
            "§4 deployment status — OCSP near-universal ({}), Must-Staple minuscule ({:.3}%), \
             dominated by Let's Encrypt ({}).",
            pct(stats.ocsp_fraction()),
            stats.must_staple_fraction() * 100.0,
            pct(stats.lets_encrypt_must_staple_share()),
        ),
        table,
    }
}

fn fig2(results: &StudyResults) -> Artifact {
    // The rank folds arrive pre-accumulated from the study (batch and
    // streaming runs fold identically — DESIGN.md §13).
    let https_bins = results.alexa.https();
    let ocsp_bins = results.alexa.ocsp_of_https();
    let mut table = Table::new(&["rank_bin", "https_pct", "ocsp_pct_of_https"]);
    for ((rank, https), (_, ocsp)) in https_bins
        .percentages()
        .into_iter()
        .zip(ocsp_bins.percentages())
    {
        table.row(&[
            rank.to_string(),
            format!("{https:.1}"),
            format!("{ocsp:.1}"),
        ]);
    }
    Artifact {
        name: "fig2",
        summary: format!(
            "Figure 2 — HTTPS ~75% across ranks (measured avg {:.1}%), OCSP among HTTPS high \
             (paper avg 91.3%, measured {:.1}%), both declining gently with rank \
             (gradients {:+.1} / {:+.1} points).",
            https_bins.overall_percentage(),
            ocsp_bins.overall_percentage(),
            https_bins.popularity_gradient(),
            ocsp_bins.popularity_gradient(),
        ),
        table,
    }
}

fn fig3(results: &StudyResults) -> Artifact {
    let mut table = Table::new(&[
        "time",
        "Oregon",
        "Virginia",
        "Sao-Paulo",
        "Paris",
        "Sydney",
        "Seoul",
    ]);
    let series: Vec<Vec<(asn1::Time, f64)>> = results
        .hourly
        .per_region_success
        .iter()
        .map(|(_, ts)| ts.fractions())
        .collect();
    if let Some(first) = series.first() {
        for (i, (t, _)) in first.iter().enumerate() {
            let mut row = vec![t.to_string()];
            for region_series in &series {
                row.push(format!("{:.2}", region_series[i].1 * 100.0));
            }
            table.row(&row);
        }
    }
    let failure = results.hourly.overall_failure_rate();
    Artifact {
        name: "fig3",
        summary: format!(
            "Figure 3 — per-region success fraction over the campaign. Paper: 1.7% average \
             failure, worst from São Paulo; measured {:.1}% average, São Paulo {:.1}% vs \
             Virginia {:.1}%. {} responders never reachable anywhere; {} partially dead.",
            failure * 100.0,
            results.hourly.region_failure_rate(netsim::Region::SaoPaulo) * 100.0,
            results.hourly.region_failure_rate(netsim::Region::Virginia) * 100.0,
            results.hourly.responders_never_reachable(),
            results.hourly.responders_partially_dead(),
        ),
        table,
    }
}

fn fig4(results: &StudyResults) -> Artifact {
    let mut table = Table::new(&[
        "time",
        "Oregon",
        "Virginia",
        "Sao-Paulo",
        "Paris",
        "Sydney",
        "Seoul",
    ]);
    let series: Vec<&[(asn1::Time, u64)]> = netsim::Region::VANTAGE_POINTS
        .iter()
        .map(|&r| results.alexa1m.region_series(r))
        .collect();
    if let Some(first) = series.first() {
        for (i, (t, _)) in first.iter().enumerate() {
            let mut row = vec![t.to_string()];
            for region_series in &series {
                row.push(region_series[i].1.to_string());
            }
            table.row(&row);
        }
    }
    let (region, t, peak) = results.alexa1m.global_peak();
    Artifact {
        name: "fig4",
        summary: format!(
            "Figure 4 — Alexa domains unable to fetch OCSP. Paper: 163k domains dark during \
             the Comodo episode (Oregon/Sydney/Seoul), 318 persistently dark from São Paulo. \
             Measured peak: {peak} of {} domains from {region} at {t}; {} persistently dark \
             from São Paulo.",
            results.alexa1m.total_domains, results.alexa1m.sao_paulo_persistent,
        ),
        table,
    }
}

fn fig5(results: &StudyResults) -> Artifact {
    let mut table = Table::new(&[
        "time",
        "asn1_unparseable_pct",
        "serial_unmatch_pct",
        "signature_pct",
    ]);
    let series: Vec<Vec<(asn1::Time, f64)>> = results
        .hourly
        .class_series
        .iter()
        .map(|(_, ts)| ts.fractions())
        .collect();
    if let Some(first) = series.first() {
        for (i, (t, _)) in first.iter().enumerate() {
            let mut row = vec![t.to_string()];
            for class_series in &series {
                row.push(format!("{:.3}", class_series[i].1 * 100.0));
            }
            table.row(&row);
        }
    }
    // Totals per class for the summary.
    let totals: Vec<(ErrorClass, u64)> = ErrorClass::ALL
        .iter()
        .map(|&c| {
            (
                c,
                results
                    .hourly
                    .responders
                    .iter()
                    .map(|r| r.unusable.get(&c).copied().unwrap_or(0))
                    .sum(),
            )
        })
        .collect();
    Artifact {
        name: "fig5",
        summary: format!(
            "Figure 5 — unusable responses by cause. Paper: malformed ASN.1 dominates \
             (responders returning '0', empty bodies, JavaScript), with episodic spikes \
             (sheca, postsignum). Measured totals: {:?}.",
            totals
                .iter()
                .map(|(c, n)| format!("{}={n}", c.label()))
                .collect::<Vec<_>>()
        ),
        table,
    }
}

fn fig8(results: &StudyResults) -> Artifact {
    let mut cdf = results.hourly.cdf_validity();
    let infinite = cdf.infinite_count();
    let total = cdf.len();
    let mut artifact = cdf_figure(
        "fig8",
        "CDF of validity periods (paper: median ~1 week, 9.1% blank nextUpdate plotted as ∞, 2% over a month, max 1,251 days)",
        cdf.clone(),
    );
    artifact.summary = format!(
        "Figure 8 — validity periods. Paper: median ~1 week, 9.1% blank nextUpdate, 2% over \
         a month, max 1,251 days. Measured: median {}, blank {} of {} responders ({:.1}%), \
         max {}.",
        cdf.median().map(secs).unwrap_or_else(|| "n/a".into()),
        infinite,
        total,
        100.0 * infinite as f64 / total.max(1) as f64,
        cdf.max().map(secs).unwrap_or_else(|| "n/a".into()),
    );
    artifact
}

fn cdf_figure(name: &'static str, description: &str, mut cdf: Cdf) -> Artifact {
    let mut table = Table::new(&["x", "cdf"]);
    for (x, f) in cdf.curve() {
        table.row(&[format!("{x:.2}"), format!("{f:.4}")]);
    }
    Artifact {
        name,
        summary: format!(
            "{description}. Measured: {} samples, median {:?}, max {:?}.",
            cdf.len(),
            cdf.median(),
            cdf.max(),
        ),
        table,
    }
}

fn table1(results: &StudyResults) -> Artifact {
    let mut table = Table::new(&["ocsp_url", "crl_url", "unknown", "good", "revoked"]);
    for row in &results.consistency.table1 {
        table.row(&[
            row.ocsp_url.clone(),
            row.crl_url.clone(),
            row.unknown.to_string(),
            row.good.to_string(),
            row.revoked.to_string(),
        ]);
    }
    Artifact {
        name: "table1",
        summary: format!(
            "Table 1 — responders whose OCSP view disagrees with their CRL. Paper: 7 CRLs \
             with discrepancies (five answering Good, two Unknown-for-all). Measured: {} \
             discrepant responders, of which {} answer Good for some revoked serials and {} \
             answer Unknown for every revoked serial.",
            results.consistency.table1.len(),
            results
                .consistency
                .table1
                .iter()
                .filter(|r| r.good > 0)
                .count(),
            results
                .consistency
                .table1
                .iter()
                .filter(|r| r.unknown > 0 && r.good == 0 && r.revoked == 0)
                .count(),
        ),
        table,
    }
}

fn fig10(results: &StudyResults) -> Artifact {
    let mut artifact = cdf_figure(
        "fig10",
        "CDF of OCSP-minus-CRL revocation times",
        results.consistency.time_diff_cdf(),
    );
    artifact.name = "fig10";
    artifact.summary = format!(
        "Figure 10 — revocation-time differences. Paper: 0.15% differ, 14.7% of those \
         negative, msocsp lags 7h–9d, tail past 137M seconds. Measured: {:.2}% differ, \
         {:.1}% negative, max difference {}.",
        results.consistency.time_diff_fraction() * 100.0,
        results.consistency.negative_diff_fraction() * 100.0,
        results
            .consistency
            .time_diff_cdf()
            .max()
            .map(secs)
            .unwrap_or_else(|| "n/a".into()),
    );
    artifact
}

fn reasons(results: &StudyResults) -> Artifact {
    let c = &results.consistency;
    let mut table = Table::new(&["category", "count"]);
    table.row(&[
        "reason absent on both sides".into(),
        c.reason_absent.to_string(),
    ]);
    table.row(&[
        "reason matches on both sides".into(),
        c.reason_match.to_string(),
    ]);
    table.row(&["reason in CRL only".into(), c.reason_crl_only.to_string()]);
    table.row(&["other mismatch".into(), c.reason_other_mismatch.to_string()]);
    Artifact {
        name: "reasons",
        summary: format!(
            "§5.4 reason codes — paper: 15% of revocations differ, 99.99% of those 'CRL has \
             a code, OCSP none'. Measured: {:.1}% differ, all of the CRL-only shape.",
            c.reason_diff_fraction() * 100.0
        ),
        table,
    }
}

fn table2(results: &StudyResults) -> Artifact {
    let mut table = Table::new(&["browser", "request_ocsp", "respect_must_staple", "own_ocsp"]);
    for row in &results.browsers {
        table.row(&[
            row.profile.label(),
            mark(row.requested_ocsp).into(),
            mark(row.respected_must_staple).into(),
            match row.sent_own_ocsp {
                None => "-".into(),
                Some(b) => mark(b).into(),
            },
        ]);
    }
    let respecting = results
        .browsers
        .iter()
        .filter(|r| r.respected_must_staple)
        .count();
    Artifact {
        name: "table2",
        summary: format!(
            "Table 2 — browser matrix. Paper: all 16 request stapled responses; only \
             Firefox desktop (3 OSes) + Firefox Android respect Must-Staple; none send \
             their own OCSP request. Measured: {respecting}/16 respect; all request; none \
             fall back.",
        ),
        table,
    }
}

fn fig11(results: &StudyResults) -> Artifact {
    let bins = results.alexa.staples_of_ocsp();
    let mut table = Table::new(&["rank_bin", "stapling_pct_of_ocsp"]);
    for (rank, staple) in bins.percentages() {
        table.row(&[rank.to_string(), format!("{staple:.1}")]);
    }
    Artifact {
        name: "fig11",
        summary: format!(
            "Figure 11 — OCSP Stapling adoption vs rank. Paper: ~35% overall, higher for \
             popular domains. Measured: {:.1}% overall, gradient {:+.1} points toward the top.",
            bins.overall_percentage(),
            bins.popularity_gradient(),
        ),
        table,
    }
}

fn fig12() -> Artifact {
    let snaps = monthly_snapshots();
    let mut table = Table::new(&["month", "ocsp_pct", "stapling_pct", "cloudflare_domains"]);
    for s in &snaps {
        let c = s.time.civil();
        table.row(&[
            format!("{:04}-{:02}", c.year, c.month),
            format!("{:.1}", s.ocsp_fraction * 100.0),
            format!("{:.1}", s.stapling_fraction * 100.0),
            s.cloudflare_stapling_domains.to_string(),
        ]);
    }
    Artifact {
        name: "fig12",
        summary: "Figure 12 — OCSP & Stapling adoption May 2016 → Sep 2018, both growing \
                  steadily, with the June 2017 Cloudflare cruise-liner step (11,675 → 78,907 \
                  stapled domains)."
            .to_string(),
        table,
    }
}

fn table3(results: &StudyResults) -> Artifact {
    let mut table = Table::new(&["experiment", "Apache", "Nginx", "Ideal (recommended)"]);
    let get = |kind| {
        results
            .table3
            .iter()
            .find(move |r| r.server == kind)
            .expect("all three servers run")
    };
    let (a, n, i) = (
        get(webserver::ServerKind::Apache),
        get(webserver::ServerKind::Nginx),
        get(webserver::ServerKind::Ideal),
    );
    table.row(&[
        "Prefetch OCSP response".into(),
        a.prefetch.cell().into(),
        n.prefetch.cell().into(),
        i.prefetch.cell().into(),
    ]);
    table.row(&[
        "Cache OCSP response".into(),
        mark(a.caches).into(),
        mark(n.caches).into(),
        mark(i.caches).into(),
    ]);
    table.row(&[
        "Respect nextUpdate in cache".into(),
        mark(a.respects_next_update).into(),
        mark(n.respects_next_update).into(),
        mark(i.respects_next_update).into(),
    ]);
    table.row(&[
        "Retain OCSP response on error".into(),
        mark(a.retains_on_error).into(),
        mark(n.retains_on_error).into(),
        mark(i.retains_on_error).into(),
    ]);
    Artifact {
        name: "table3",
        summary: "Table 3 — web-server stapling correctness. Paper: Apache pauses the first \
                  connection, ignores nextUpdate, and drops valid responses on error; Nginx \
                  leaves the first client unstapled but respects nextUpdate and retains on \
                  error. Measured: identical, plus the §8 recommended model passing all four."
            .to_string(),
        table,
    }
}

fn cdn(results: &StudyResults) -> Artifact {
    let c = &results.cdn;
    let mut table = Table::new(&["metric", "value"]);
    table.row(&["lookups replayed".into(), c.lookups.to_string()]);
    table.row(&[
        "distinct responders contacted".into(),
        c.distinct_responders.to_string(),
    ]);
    table.row(&["cache hit ratio".into(), pct(c.cache_hit_ratio)]);
    table.row(&["origin fetches".into(), c.origin_fetches.to_string()]);
    table.row(&["origin success ratio".into(), pct(c.origin_success_ratio)]);
    Artifact {
        name: "cdn",
        summary: format!(
            "§5.2 CDN perspective — paper: ~20 distinct responders contacted, most lookups \
             cached, 100% origin success. Measured: {} responders, {} cached, {} origin \
             success.",
            c.distinct_responders,
            pct(c.cache_hit_ratio),
            pct(c.origin_success_ratio),
        ),
        table,
    }
}

fn freshness(results: &StudyResults) -> Artifact {
    let f = results.hourly.freshness();
    let mut table = Table::new(&["metric", "value"]);
    table.row(&["on-demand responders".into(), f.on_demand.to_string()]);
    table.row(&[
        "pre-generated responders".into(),
        f.pre_generated.to_string(),
    ]);
    table.row(&[
        "non-overlapping windows".into(),
        f.non_overlapping.len().to_string(),
    ]);
    table.row(&[
        "producedAt regressions (multi-instance)".into(),
        f.produced_at_regressions.len().to_string(),
    ]);
    for url in &f.non_overlapping {
        table.row(&["non-overlapping responder".into(), url.clone()]);
    }
    Artifact {
        name: "freshness",
        summary: format!(
            "§5.4 freshness — paper: 51.7% of responders pre-generate; 7 have validity equal \
             to their refresh period (hinet 7200s, cnnic 10800s); some regress producedAt \
             across instances. Measured: {} pre-generated vs {} on-demand, {} non-overlapping, \
             {} with producedAt regressions.",
            f.pre_generated,
            f.on_demand,
            f.non_overlapping.len(),
            f.produced_at_regressions.len(),
        ),
        table,
    }
}

/// The §8 recommendation 2 quantified: outage durations vs validity
/// periods. If most outages are much shorter than most validity windows,
/// a prefetching server survives them with a cached staple.
fn recommendations(results: &StudyResults) -> Artifact {
    let mut outages = results
        .hourly
        .cdf_outage_durations(results.config.scan_interval);
    let mut validity = results.hourly.cdf_validity();
    let mut table = Table::new(&["percentile", "outage_duration", "validity_period"]);
    for q in [0.5, 0.75, 0.9, 0.99] {
        table.row(&[
            format!("p{:.0}", q * 100.0),
            outages
                .quantile(q)
                .map(secs)
                .unwrap_or_else(|| "n/a".into()),
            validity
                .quantile(q)
                .map(secs)
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    let median_outage = outages.median().unwrap_or(0.0);
    let median_validity = validity.median().unwrap_or(0.0);
    Artifact {
        name: "recommendations",
        summary: format!(
            "§8 recommendation 2 — 'most failures persist far shorter than most OCSP \
             responses' validity periods': median observed outage {} vs median validity {} \
             ({}x headroom); a prefetching server rides out virtually every outage with a \
             cached staple.",
            secs(median_outage),
            secs(median_validity),
            if median_outage > 0.0 {
                (median_validity / median_outage) as i64
            } else {
                0
            },
        ),
        table,
    }
}

/// The `telemetry` artifact: every deterministic counter and histogram
/// the campaigns recorded, in canonical (lexicographic) order. The CSV
/// rendering of this table is byte-identical for every worker count;
/// wall-clock spans are deliberately excluded.
fn telemetry_artifact(results: &StudyResults) -> Artifact {
    let reg = &results.telemetry;
    let mut table = Table::new(&["kind", "metric", "label", "value"]);
    for (metric, label, value) in reg.counters() {
        table.row(&[
            "counter".into(),
            metric.into(),
            label.into(),
            value.to_string(),
        ]);
    }
    for (metric, label, h) in reg.histograms() {
        table.row(&[
            "histogram".into(),
            metric.into(),
            label.into(),
            format!(
                "count={};sum={};min={};max={}",
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            ),
        ]);
    }
    let counters = reg.counters().count();
    let events: u64 = reg.counters().map(|(_, _, v)| v).sum();
    Artifact {
        name: "telemetry",
        summary: format!(
            "Campaign telemetry — {counters} counters totalling {events} events, plus {} \
             histogram series; deterministic and byte-identical across worker counts.",
            reg.histograms().count(),
        ),
        table,
    }
}

/// The human-oriented report printed by `figures --telemetry`:
/// log2-interpolated histogram quantiles, the simulated-clock span
/// tree, and the wall-clock report. Everything above the wall section
/// is deterministic; the wall section is informational only and is
/// excluded from every on-disk artifact.
pub fn telemetry_report(results: &StudyResults) -> String {
    let reg = &results.telemetry;
    let mut out = String::new();
    out.push_str("-- histogram quantiles (log2-interpolated) --\n");
    let mut table = Table::new(&["metric", "label", "p50", "p90", "p99"]);
    let mut any = false;
    for (metric, label, h) in reg.histograms() {
        any = true;
        let q = |q: f64| {
            h.quantile(q)
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "n/a".into())
        };
        table.row(&[metric.into(), label.into(), q(0.5), q(0.9), q(0.99)]);
    }
    if any {
        out.push_str(&table.render());
    } else {
        out.push_str("(no histogram series recorded)\n");
    }
    out.push_str("\n-- span tree (simulated hours) --\n");
    out.push_str(&results.trace.render_ascii(1));
    out.push_str("\n-- wall timings (informational, excluded from artifacts) --\n");
    out.push_str(&reg.wall_report());
    out
}

/// The `bench-scan` artifact: serial vs parallel wall-clock for the
/// hourly campaign, on both probe engines, over the same ecosystem,
/// plus the streaming pass and a live `ocspd` serve leg over loopback.
/// Every leg replays the identical request count, so the rows are
/// directly comparable — and the artifact doubles as a determinism
/// probe at full scale (all five campaign runs must agree on requests
/// and responder reports).
pub fn bench_scan(config: &EcosystemConfig) -> Artifact {
    let eco = LiveEcosystem::generate(config.clone());
    let time = |executor: &Executor, engine: Engine| {
        let started = std::time::Instant::now();
        let dataset = HourlyCampaign::new(&eco).run_with_engine(executor, config.chunking, engine);
        (started.elapsed(), dataset)
    };

    let serial_exec = Executor::serial();
    // The parallel legs honor `config.parallelism` when set (and >1);
    // otherwise they use every available core, with a floor of 4 workers
    // so the sharded path is always what gets measured (on a single-core
    // host the honest speedup is then ~1x).
    let parallel_exec = match config.parallelism {
        Some(n) if n.get() > 1 => Executor::new(Some(n)),
        _ => {
            let avail = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            Executor::new(std::num::NonZeroUsize::new(avail.max(4)))
        }
    };
    // (mode label, executor, engine) — serial threads first: it is the
    // speedup baseline every other row is measured against.
    let legs: [(&str, &Executor, Engine); 4] = [
        ("serial", &serial_exec, Engine::Threads),
        ("parallel", &parallel_exec, Engine::Threads),
        ("serial", &serial_exec, Engine::Reactor),
        ("parallel", &parallel_exec, Engine::Reactor),
    ];
    let mut runs: Vec<_> = legs
        .iter()
        .map(|&(mode, executor, engine)| {
            let mem_before = mem_leg_start();
            let (wall, dataset) = time(executor, engine);
            let (peak, allocs) = mem_leg_end(mem_before);
            (
                mode,
                executor.workers(),
                engine,
                wall,
                dataset,
                peak,
                allocs,
            )
        })
        .collect();

    // The streaming leg: the same serial threads campaign plus the
    // streaming statistical pass (corpus + Alexa folds off the feeds at
    // the scaled sizes) — what a bounded-memory `figures --streaming`
    // run pays, at equal hourly request counts.
    {
        let mem_before = mem_leg_start();
        let started = std::time::Instant::now();
        let mut corpus_stream = CorpusStream::new(config.seed, config.scaled_corpus_size());
        for _ in corpus_stream.by_ref() {}
        let corpus_fold = corpus_stream.into_fold();
        assert!(corpus_fold.stats().total > 0, "streaming corpus fold ran");
        let mut adoption = AlexaAdoption::new(config.scaled_alexa_size());
        for site in AlexaStream::new(config.seed, config.scaled_alexa_size()) {
            adoption.record(site.rank, site.https, site.ocsp, site.staples);
        }
        assert!(!adoption.is_empty(), "streaming Alexa fold ran");
        let dataset = HourlyCampaign::new(&eco).run_with_engine(
            &serial_exec,
            config.chunking,
            Engine::Threads,
        );
        let wall = started.elapsed();
        let (peak, allocs) = mem_leg_end(mem_before);
        runs.push(("streaming", 1, Engine::Threads, wall, dataset, peak, allocs));
    }

    let baseline = &runs[0];

    // The serve leg: the same request count pushed through the live
    // `ocspd` tier as real loopback HTTP — one connection per request,
    // `Connection: close` — so the table shows what the operational
    // surface costs next to the in-process campaign. The server thread
    // hands its service back so the cache-hit column reads the same
    // counters the other legs do.
    let (serve_wall, serve_hit_rate, serve_peak, serve_allocs) = {
        let total = baseline.4.requests;
        let seed = config.seed;
        let mem_before = mem_leg_start();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("loopback addr").to_string();
        let server = std::thread::spawn(move || {
            let mut service = ocspd::OcspService::new(seed);
            ocspd::serve(&listener, &mut service, Some(total)).expect("serve loopback");
            service
        });
        let body = ocspd::OcspService::new(seed).canonical_request();
        let started = std::time::Instant::now();
        for _ in 0..total {
            let (status, response) =
                ocspd::client::post(&addr, "/ocsp", "application/ocsp-request", &body)
                    .expect("POST /ocsp over loopback");
            assert_eq!(status, 200, "live responder refused the canonical request");
            assert!(!response.is_empty(), "live responder sent an empty body");
        }
        let wall = started.elapsed();
        let service = server.join().expect("join ocspd server thread");
        assert_eq!(service.requests_served(), total, "serve leg lost requests");
        let hit = service
            .registry()
            .counter(catalog::OCSP_RESPONDER_CACHE, "hit");
        let miss = service
            .registry()
            .counter(catalog::OCSP_RESPONDER_CACHE, "miss");
        let (peak, allocs) = mem_leg_end(mem_before);
        let rate = hit as f64 / (hit + miss).max(1) as f64;
        (wall, rate, peak, allocs)
    };

    for (mode, _, engine, _, dataset, _, _) in &runs[1..] {
        assert_eq!(
            baseline.4.requests,
            dataset.requests,
            "{mode}/{} run diverged",
            engine.label()
        );
        assert_eq!(
            baseline.4.responders,
            dataset.responders,
            "{mode}/{} run diverged from serial threads",
            engine.label()
        );
    }

    // Request-path cache effectiveness: `window_sign` events stand in
    // for the scheduled signing real pre-generating responders do off
    // the request path, so the hit rate is hit / (hit + miss).
    let cache_hit_rate = |dataset: &scanner::hourly::HourlyDataset| {
        let hit = dataset
            .telemetry
            .counter(catalog::OCSP_RESPONDER_CACHE, "hit");
        let miss = dataset
            .telemetry
            .counter(catalog::OCSP_RESPONDER_CACHE, "miss");
        hit as f64 / (hit + miss).max(1) as f64
    };
    let req_per_sec =
        |requests: u64, wall: std::time::Duration| requests as f64 / wall.as_secs_f64().max(1e-9);
    let mut table = Table::new(&[
        "mode",
        "engine",
        "workers",
        "wall_ms",
        "requests",
        "req_per_sec",
        "cache_hit_rate",
        "speedup",
        "peak_alloc_bytes",
        "alloc_count",
    ]);
    let serial_wall = baseline.3;
    for (mode, workers, engine, wall, dataset, peak, allocs) in &runs {
        let speedup = serial_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9);
        table.row(&[
            (*mode).into(),
            engine.label().into(),
            if *mode == "parallel" {
                workers.to_string()
            } else {
                "1".into()
            },
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            dataset.requests.to_string(),
            format!("{:.0}", req_per_sec(dataset.requests, *wall)),
            format!("{:.4}", cache_hit_rate(dataset)),
            format!("{speedup:.2}"),
            peak.clone(),
            allocs.clone(),
        ]);
    }
    // The serve row last: it replays the canonical request through the
    // live tier rather than running the campaign, so it carries no
    // `HourlyDataset` and sits outside the dataset-identity assertion
    // above — its request count is still pinned to the baseline's.
    {
        let speedup = serial_wall.as_secs_f64() / serve_wall.as_secs_f64().max(1e-9);
        table.row(&[
            "serve".into(),
            "http".into(),
            "1".into(),
            format!("{:.1}", serve_wall.as_secs_f64() * 1e3),
            baseline.4.requests.to_string(),
            format!("{:.0}", req_per_sec(baseline.4.requests, serve_wall)),
            format!("{serve_hit_rate:.4}"),
            format!("{speedup:.2}"),
            serve_peak,
            serve_allocs,
        ]);
    }
    let parallel_threads = &runs[1];
    let speedup = serial_wall.as_secs_f64() / parallel_threads.3.as_secs_f64().max(1e-9);
    Artifact {
        name: "bench-scan",
        summary: format!(
            "Hourly-scan wall clock, serial vs sharded on both engines: {:.1?} serial \
             threads vs {:.1?} on {} workers ({speedup:.2}x), reactor {:.1?} serial / \
             {:.1?} parallel, streaming {:.1?} (campaign + corpus/Alexa folds), live \
             `ocspd` serve {:.1?} ({:.0} req/s over loopback HTTP at the same request \
             count), for {} probes at {:.0} req/s serial, responder-cache hit rate \
             {:.1}% — all five campaign outputs verified identical. Peak-allocation \
             columns are real only under `--features mem-profile` (else n/a).",
            serial_wall,
            parallel_threads.3,
            parallel_threads.1,
            runs[2].3,
            runs[3].3,
            runs[4].3,
            serve_wall,
            req_per_sec(baseline.4.requests, serve_wall),
            baseline.4.requests,
            req_per_sec(baseline.4.requests, serial_wall),
            cache_hit_rate(&baseline.4) * 100.0,
        ),
        table,
    }
}

/// Start a `bench_scan` leg's memory window: reset the allocator's high
/// watermark and remember the allocation count. Returns 0 when the
/// `mem-profile` feature is off.
#[cfg(feature = "mem-profile")]
fn mem_leg_start() -> u64 {
    memprof::reset_peak();
    memprof::stats().alloc_count
}

#[cfg(not(feature = "mem-profile"))]
fn mem_leg_start() -> u64 {
    0
}

/// Close a leg's memory window: `(peak_alloc_bytes, alloc_count)` cells.
/// Honest `n/a` when the feature is off — and also when the counting
/// allocator is not actually installed (the counters never moved), so a
/// `mem-profile` library build inside an uninstrumented binary cannot
/// report a fake zero.
#[cfg(feature = "mem-profile")]
fn mem_leg_end(before: u64) -> (String, String) {
    let stats = memprof::stats();
    if stats.alloc_count == 0 {
        return ("n/a".into(), "n/a".into());
    }
    (
        stats.peak_bytes.to_string(),
        (stats.alloc_count - before).to_string(),
    )
}

#[cfg(not(feature = "mem-profile"))]
fn mem_leg_end(_before: u64) -> (String, String) {
    ("n/a".into(), "n/a".into())
}

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosystem::EcosystemConfig;
    use mustaple::Study;

    #[test]
    fn every_artifact_builds_at_tiny_scale() {
        let results = Study::new(EcosystemConfig::tiny()).run();
        for name in ALL_ARTIFACTS
            .iter()
            .chain(["freshness", "recommendations", "telemetry"].iter())
        {
            let artifact = build(name, &results).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(&artifact.name, name);
            assert!(!artifact.summary.is_empty(), "{name} summary");
            let rendered = artifact.table.render();
            assert!(rendered.lines().count() >= 2, "{name} table\n{rendered}");
            let csv = artifact.table.to_csv();
            assert!(csv.contains(','), "{name} csv");
        }
        assert!(build("nope", &results).is_none());
    }
}
