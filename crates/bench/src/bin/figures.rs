//! `figures` — regenerate every table and figure of the paper.
//!
//! ```text
//! figures [--scale tiny|figures] [--out DIR] [ARTIFACT...]
//! ```
//!
//! With no artifact arguments, regenerates everything (all figures,
//! all tables, the §5.4 freshness analysis, the five ablations, and the
//! §8 readiness report). Each artifact prints a paper-vs-measured
//! summary plus its data table, and is also written as CSV under the
//! output directory (default `results/`).

use ecosystem::EcosystemConfig;
use mustaple::Study;
use mustaple_bench::{ablations, build, Artifact, ALL_ARTIFACTS};
use std::fs;
use std::path::PathBuf;

fn main() {
    let mut scale = "figures".to_string();
    let mut out_dir = PathBuf::from("results");
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().unwrap_or_else(|| usage("--scale needs a value")),
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage("--out needs a value")))
            }
            "--help" | "-h" => usage(""),
            name => wanted.push(name.to_string()),
        }
    }

    let config = match scale.as_str() {
        "tiny" => EcosystemConfig::tiny(),
        "figures" => EcosystemConfig::figures(),
        other => usage(&format!("unknown scale `{other}` (use tiny|figures)")),
    };

    if wanted.is_empty() {
        wanted = ALL_ARTIFACTS.iter().map(|s| s.to_string()).collect();
        wanted.push("freshness".into());
        wanted.push("recommendations".into());
        wanted.push("ablations".into());
        wanted.push("readiness".into());
    }

    eprintln!(
        "running the study at `{scale}` scale ({} responders, {} scan rounds)...",
        config.responders,
        config.scan_rounds()
    );
    let started = std::time::Instant::now();
    let results = Study::new(config.clone()).run();
    eprintln!("study completed in {:.1?}; rendering artifacts\n", started.elapsed());

    fs::create_dir_all(&out_dir).expect("create output directory");

    for name in &wanted {
        match name.as_str() {
            "ablations" => {
                for artifact in ablations::all(config.seed) {
                    emit(&out_dir, &artifact);
                }
            }
            "readiness" => {
                let report = results.readiness_report();
                println!("== readiness ==============================================");
                println!("{}", report.render());
                fs::write(out_dir.join("readiness.txt"), report.render())
                    .expect("write readiness report");
            }
            name => match build(name, &results) {
                Some(artifact) => emit(&out_dir, &artifact),
                None => eprintln!("warning: unknown artifact `{name}` (skipped)"),
            },
        }
    }
    eprintln!("\nartifacts written to {}", out_dir.display());
}

fn emit(out_dir: &std::path::Path, artifact: &Artifact) {
    println!("== {} ==============================================", artifact.name);
    println!("{}\n", artifact.summary);
    let rendered = artifact.table.render();
    // Long tables (time series, CDFs) are truncated on the terminal but
    // written in full to CSV.
    let lines: Vec<&str> = rendered.lines().collect();
    if lines.len() > 24 {
        for line in &lines[..12] {
            println!("{line}");
        }
        println!("... ({} rows total; full data in CSV)", lines.len() - 2);
        for line in &lines[lines.len() - 4..] {
            println!("{line}");
        }
    } else {
        println!("{rendered}");
    }
    println!();
    fs::write(out_dir.join(format!("{}.csv", artifact.name)), artifact.table.to_csv())
        .expect("write CSV artifact");
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: figures [--scale tiny|figures] [--out DIR] [ARTIFACT...]\n\
         artifacts: {} freshness recommendations ablations readiness",
        ALL_ARTIFACTS.join(" ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
