//! `figures` — regenerate every table and figure of the paper.
//!
//! ```text
//! figures [--scale tiny|figures] [--out DIR] [--serial | --workers N] [ARTIFACT...]
//! ```
//!
//! With no artifact arguments, regenerates everything (all figures,
//! all tables, the §5.4 freshness analysis, the five ablations, the
//! §8 readiness report, and the scan-executor benchmark). Each artifact
//! prints a paper-vs-measured summary plus its data table, and is also
//! written as CSV under the output directory (default `results/`).
//!
//! The scan campaigns are sharded across worker threads by default
//! (`available_parallelism`); `--serial` forces one worker and
//! `--workers N` pins the count. Every setting produces byte-identical
//! CSVs — parallelism is purely a wall-clock knob.
//!
//! `--telemetry` additionally dumps the campaigns' deterministic
//! counters and histograms to `telemetry.csv`, a Prometheus text
//! exposition to `telemetry.prom`, and the simulated-clock span tree to
//! `trace.jsonl` (all byte-identical for every worker count), with
//! histogram quantiles, the span tree, and wall timings summarized on
//! stdout. Diff two runs' expositions with `cargo run -p teldiff`.

#![forbid(unsafe_code)]

use ecosystem::EcosystemConfig;
use mustaple::Study;
use mustaple_bench::{ablations, bench_scan, build, Artifact, ALL_ARTIFACTS};
use std::fs;
use std::path::PathBuf;

fn main() {
    let mut scale = "figures".to_string();
    let mut out_dir = PathBuf::from("results");
    let mut wanted: Vec<String> = Vec::new();
    let mut workers: Option<usize> = None;
    let mut telemetry = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("--scale needs a value"))
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage("--out needs a value")))
            }
            "--serial" => workers = Some(1),
            "--telemetry" => telemetry = true,
            "--workers" => {
                let n = args
                    .next()
                    .unwrap_or_else(|| usage("--workers needs a value"));
                workers = Some(n.parse().unwrap_or_else(|_| {
                    usage(&format!("--workers needs a positive integer, got `{n}`"))
                }));
            }
            "--help" | "-h" => usage(""),
            name => wanted.push(name.to_string()),
        }
    }

    let mut config = match scale.as_str() {
        "tiny" => EcosystemConfig::tiny(),
        "figures" => EcosystemConfig::figures(),
        other => usage(&format!("unknown scale `{other}` (use tiny|figures)")),
    };
    if let Some(n) = workers {
        if n == 0 {
            usage("--workers needs a positive integer, got `0`");
        }
        config = config.with_parallelism(n);
    }

    if wanted.is_empty() {
        wanted = ALL_ARTIFACTS.iter().map(|s| s.to_string()).collect();
        wanted.push("freshness".into());
        wanted.push("recommendations".into());
        wanted.push("ablations".into());
        wanted.push("readiness".into());
        wanted.push("bench-scan".into());
    }
    if telemetry && !wanted.iter().any(|w| w == "telemetry") {
        wanted.push("telemetry".into());
    }

    eprintln!(
        "running the study at `{scale}` scale ({} responders, {} scan rounds)...",
        config.responders,
        config.scan_rounds()
    );
    let started = std::time::Instant::now();
    let results = Study::new(config.clone()).run();
    let elapsed = started.elapsed();
    eprintln!(
        "study completed in {:.1?} ({:.0} hourly-scan req/s); rendering artifacts\n",
        elapsed,
        results.hourly.requests as f64 / elapsed.as_secs_f64().max(1e-9)
    );

    fs::create_dir_all(&out_dir).expect("create output directory");

    for name in &wanted {
        match name.as_str() {
            "ablations" => {
                for artifact in ablations::all(config.seed) {
                    emit(&out_dir, &artifact);
                }
            }
            "readiness" => {
                let report = results.readiness_report();
                println!("== readiness ==============================================");
                println!("{}", report.render());
                fs::write(out_dir.join("readiness.txt"), report.render())
                    .expect("write readiness report");
            }
            "bench-scan" => emit(&out_dir, &bench_scan(&config)),
            "telemetry" => {
                let artifact = build("telemetry", &results).expect("telemetry artifact");
                emit(&out_dir, &artifact);
                fs::write(
                    out_dir.join("telemetry.prom"),
                    results.telemetry.to_prometheus(),
                )
                .expect("write Prometheus exposition");
                fs::write(out_dir.join("trace.jsonl"), results.trace.to_jsonl())
                    .expect("write trace spans");
                println!("{}", mustaple_bench::telemetry_report(&results));
            }
            name => match build(name, &results) {
                Some(artifact) => emit(&out_dir, &artifact),
                None => eprintln!("warning: unknown artifact `{name}` (skipped)"),
            },
        }
    }
    eprintln!("\nartifacts written to {}", out_dir.display());
}

fn emit(out_dir: &std::path::Path, artifact: &Artifact) {
    println!(
        "== {} ==============================================",
        artifact.name
    );
    println!("{}\n", artifact.summary);
    let rendered = artifact.table.render();
    // Long tables (time series, CDFs) are truncated on the terminal but
    // written in full to CSV.
    let lines: Vec<&str> = rendered.lines().collect();
    if lines.len() > 24 {
        for line in &lines[..12] {
            println!("{line}");
        }
        println!("... ({} rows total; full data in CSV)", lines.len() - 2);
        for line in &lines[lines.len() - 4..] {
            println!("{line}");
        }
    } else {
        println!("{rendered}");
    }
    println!();
    fs::write(
        out_dir.join(format!("{}.csv", artifact.name)),
        artifact.table.to_csv(),
    )
    .expect("write CSV artifact");
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: figures [--scale tiny|figures] [--out DIR] [--serial | --workers N] \
         [--telemetry] [ARTIFACT...]\n\
         artifacts: {} freshness recommendations telemetry ablations readiness bench-scan",
        ALL_ARTIFACTS.join(" ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
