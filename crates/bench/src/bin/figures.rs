//! `figures` — regenerate every table and figure of the paper.
//!
//! ```text
//! figures [--scale tiny|figures] [--scale-mult K] [--streaming]
//!         [--mem-budget BYTES] [--out DIR] [--serial | --workers N]
//!         [--engine threads|reactor] [--chunking per-responder|time-sliced]
//!         [--seeds N | --seed-list a,b,c] [ARTIFACT...]
//! ```
//!
//! With no artifact arguments, regenerates everything (all figures,
//! all tables, the §5.4 freshness analysis, the five ablations, the
//! §8 readiness report, and the scan-executor benchmark). Each artifact
//! prints a paper-vs-measured summary plus its data table, and is also
//! written as CSV under the output directory (default `results/`).
//!
//! The scan campaigns are sharded across worker threads by default
//! (`available_parallelism`); `--serial` forces one worker and
//! `--workers N` pins the count. `--engine reactor` drives the probes
//! through the simulated-time reactor instead of blocking calls, and
//! `--chunking` picks the hourly work-unit split. Every combination
//! produces byte-identical CSVs — all three are purely wall-clock
//! knobs (DESIGN.md §12).
//!
//! `--seeds N` reruns the whole study under N independently-derived
//! seeds (`--seed-list` pins them explicitly) and writes, next to each
//! regenerated artifact, an `<name>.ens.csv` companion carrying
//! per-cell mean / 95 % confidence interval / stddev / min–max across
//! the seeds, plus a `seeds.txt` manifest. The primary artifacts come
//! from replica 0 — with derived seeds that replica *is* the base seed,
//! so they are byte-identical to a single-seed run. Replicas are the
//! parallel unit: `--workers N` spreads seeds across threads, and every
//! worker count yields byte-identical output.
//!
//! `--scale-mult K` multiplies the *statistical* populations (corpus +
//! Alexa) by K, leaving the scan populations untouched; `--streaming`
//! folds those populations off the pull-based feeds in bounded memory
//! instead of materializing them. At `--scale-mult 1` streaming output
//! is byte-identical to batch (DESIGN.md §13). Built with
//! `--features mem-profile`, the binary installs a counting global
//! allocator, reports `mem.peak_bytes` / `mem.alloc_count` as
//! telemetry gauges (excluded from equality surfaces), and
//! `--mem-budget BYTES` turns the peak into a hard gate (exit 3 when
//! exceeded) — the CI peak-memory ratchet.
//!
//! `--telemetry` additionally dumps the campaigns' deterministic
//! counters and histograms to `telemetry.csv`, a Prometheus text
//! exposition to `telemetry.prom`, the simulated-clock span tree to
//! `trace.jsonl`, and the operational event bus (health transitions,
//! outages, window rollovers, revocations) to `events.jsonl` (all
//! byte-identical for every worker count), with histogram quantiles,
//! the span tree, and wall timings summarized on stdout. Diff two
//! runs' expositions with `cargo run -p teldiff`.

#![forbid(unsafe_code)]

use ecosystem::{Chunking, EcosystemConfig, Engine};
use mustaple::{Study, StudyResults};
use mustaple_bench::ensemble::{parse_seed_list, seeds_for, Ensemble};
use mustaple_bench::{ablations, bench_scan, build, Artifact, ALL_ARTIFACTS};
use std::fs;
use std::path::PathBuf;

/// With `mem-profile`, the whole binary allocates through the counting
/// allocator, so the peak covers the full study — generation,
/// campaigns, and analysis.
#[cfg(feature = "mem-profile")]
#[global_allocator]
static ALLOC: memprof::CountingAlloc = memprof::CountingAlloc;

/// `(peak_bytes, alloc_count)` when instrumented, `None` otherwise.
#[cfg(feature = "mem-profile")]
fn mem_stats() -> Option<(u64, u64)> {
    let stats = memprof::stats();
    Some((stats.peak_bytes, stats.alloc_count))
}

#[cfg(not(feature = "mem-profile"))]
fn mem_stats() -> Option<(u64, u64)> {
    None
}

fn main() {
    let mut scale = "figures".to_string();
    let mut out_dir = PathBuf::from("results");
    let mut wanted: Vec<String> = Vec::new();
    let mut workers: Option<usize> = None;
    let mut telemetry = false;
    let mut seed_count: Option<usize> = None;
    let mut seed_list: Option<Vec<u64>> = None;
    let mut engine: Option<Engine> = None;
    let mut chunking: Option<Chunking> = None;
    let mut scale_mult: usize = 1;
    let mut streaming = false;
    let mut mem_budget: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .unwrap_or_else(|| usage("--scale needs a value"))
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage("--out needs a value")))
            }
            "--serial" => workers = Some(1),
            "--telemetry" => telemetry = true,
            "--workers" => {
                let n = args
                    .next()
                    .unwrap_or_else(|| usage("--workers needs a value"));
                workers = Some(n.parse().unwrap_or_else(|_| {
                    usage(&format!("--workers needs a positive integer, got `{n}`"))
                }));
            }
            "--seeds" => {
                let n = args
                    .next()
                    .unwrap_or_else(|| usage("--seeds needs a value"));
                let n: usize = n.parse().unwrap_or_else(|_| {
                    usage(&format!("--seeds needs a positive integer, got `{n}`"))
                });
                if n == 0 {
                    usage("--seeds needs a positive integer, got `0`");
                }
                seed_count = Some(n);
            }
            "--seed-list" => {
                let list = args
                    .next()
                    .unwrap_or_else(|| usage("--seed-list needs a value"));
                seed_list = Some(
                    parse_seed_list(&list)
                        .unwrap_or_else(|err| usage(&format!("--seed-list: {err}"))),
                );
            }
            "--engine" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--engine needs a value"));
                engine = Some(Engine::parse(&v).unwrap_or_else(|| {
                    usage(&format!("unknown engine `{v}` (use threads|reactor)"))
                }));
            }
            "--chunking" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--chunking needs a value"));
                chunking = Some(Chunking::parse(&v).unwrap_or_else(|| {
                    usage(&format!(
                        "unknown chunking `{v}` (use per-responder|time-sliced)"
                    ))
                }));
            }
            "--scale-mult" => {
                let n = args
                    .next()
                    .unwrap_or_else(|| usage("--scale-mult needs a value"));
                scale_mult = n.parse().unwrap_or_else(|_| {
                    usage(&format!("--scale-mult needs a positive integer, got `{n}`"))
                });
                if scale_mult == 0 {
                    usage("--scale-mult needs a positive integer, got `0`");
                }
            }
            "--streaming" => streaming = true,
            "--mem-budget" => {
                let n = args
                    .next()
                    .unwrap_or_else(|| usage("--mem-budget needs a value"));
                mem_budget = Some(n.parse().unwrap_or_else(|_| {
                    usage(&format!("--mem-budget needs a byte count, got `{n}`"))
                }));
            }
            "--help" | "-h" => usage(""),
            name => wanted.push(name.to_string()),
        }
    }
    if seed_count.is_some() && seed_list.is_some() {
        usage("--seeds and --seed-list are mutually exclusive");
    }

    let mut config = match scale.as_str() {
        "tiny" => EcosystemConfig::tiny(),
        "figures" => EcosystemConfig::figures(),
        other => usage(&format!("unknown scale `{other}` (use tiny|figures)")),
    };
    if let Some(n) = workers {
        if n == 0 {
            usage("--workers needs a positive integer, got `0`");
        }
        config = config.with_parallelism(n);
    }
    if let Some(engine) = engine {
        config = config.with_engine(engine);
    }
    if let Some(chunking) = chunking {
        config = config.with_chunking(chunking);
    }
    config = config.with_scale_mult(scale_mult).with_streaming(streaming);
    if mem_budget.is_some() && mem_stats().is_none() {
        usage("--mem-budget requires building with `--features mem-profile`");
    }

    if wanted.is_empty() {
        wanted = ALL_ARTIFACTS.iter().map(|s| s.to_string()).collect();
        wanted.push("freshness".into());
        wanted.push("recommendations".into());
        wanted.push("ablations".into());
        wanted.push("readiness".into());
        wanted.push("bench-scan".into());
    }
    if telemetry && !wanted.iter().any(|w| w == "telemetry") {
        wanted.push("telemetry".into());
    }

    let seeds = seed_list.or_else(|| seed_count.map(|n| seeds_for(config.seed, n)));

    eprintln!(
        "running the study at `{scale}` scale ({} responders, {} scan rounds{})...",
        config.responders,
        config.scan_rounds(),
        match &seeds {
            Some(seeds) => format!(", {} seeds", seeds.len()),
            None => String::new(),
        }
    );
    let started = std::time::Instant::now();
    let ensemble = seeds.as_deref().map(|s| Ensemble::run(&config, s));
    let mut single = match &ensemble {
        Some(_) => None,
        None => Some(Study::new(config.clone()).run()),
    };
    // Export the allocator's high watermark as telemetry gauges —
    // excluded from every artifact-equality surface, so instrumented
    // and uninstrumented runs stay byte-identical (single-run only;
    // the ensemble's primary results are shared borrows).
    if let (Some((peak, allocs)), Some(results)) = (mem_stats(), single.as_mut()) {
        results
            .telemetry
            .set_gauge(telemetry::catalog::MEM_PEAK_BYTES, peak);
        results
            .telemetry
            .set_gauge(telemetry::catalog::MEM_ALLOC_COUNT, allocs);
    }
    let results: &StudyResults = ensemble
        .as_ref()
        .map(Ensemble::primary)
        .or(single.as_ref())
        .expect("one of the two run paths produced results");
    let elapsed = started.elapsed();
    eprintln!(
        "study completed in {:.1?} ({:.0} hourly-scan req/s); rendering artifacts\n",
        elapsed,
        results.hourly.requests as f64 / elapsed.as_secs_f64().max(1e-9)
    );

    fs::create_dir_all(&out_dir).expect("create output directory");
    if let Some(ensemble) = &ensemble {
        fs::write(out_dir.join("seeds.txt"), ensemble.seeds_manifest()).expect("write seeds.txt");
    }

    for name in &wanted {
        match name.as_str() {
            "ablations" => {
                for artifact in ablations::all(config.seed) {
                    emit(&out_dir, &artifact);
                }
            }
            "readiness" => {
                let report = results.readiness_report();
                println!("== readiness ==============================================");
                println!("{}", report.render());
                fs::write(out_dir.join("readiness.txt"), report.render())
                    .expect("write readiness report");
            }
            "bench-scan" => emit(&out_dir, &bench_scan(&config)),
            "telemetry" => {
                let artifact = build("telemetry", results).expect("telemetry artifact");
                emit(&out_dir, &artifact);
                // Ensemble runs keep per-seed series separable in the
                // exposition via a `seed` label; single runs are as
                // before.
                let exposition = match &ensemble {
                    Some(ensemble) => ensemble.to_prometheus(),
                    None => results.telemetry.to_prometheus(),
                };
                fs::write(out_dir.join("telemetry.prom"), exposition)
                    .expect("write Prometheus exposition");
                fs::write(out_dir.join("trace.jsonl"), results.trace.to_jsonl())
                    .expect("write trace spans");
                fs::write(out_dir.join("events.jsonl"), results.events.to_jsonl())
                    .expect("write operational events");
                println!("{}", mustaple_bench::telemetry_report(results));
                emit_companion(&out_dir, ensemble.as_ref(), name);
            }
            name => match build(name, results) {
                Some(artifact) => {
                    emit(&out_dir, &artifact);
                    emit_companion(&out_dir, ensemble.as_ref(), name);
                }
                None => eprintln!("warning: unknown artifact `{name}` (skipped)"),
            },
        }
    }
    eprintln!("\nartifacts written to {}", out_dir.display());

    // The peak-memory ratchet: report the high watermark, and gate on
    // it when a budget was given.
    if let Some((peak, allocs)) = mem_stats() {
        eprintln!("peak allocation: {peak} bytes ({allocs} allocations)");
        if let Some(budget) = mem_budget {
            if peak > budget {
                eprintln!("error: peak allocation {peak} bytes exceeds --mem-budget {budget}");
                std::process::exit(3);
            }
            eprintln!("within --mem-budget {budget} bytes");
        }
    }
}

/// Write `<name>.ens.csv` next to the primary artifact: the per-cell
/// mean / CI / stddev / min–max statistics folded across all seeds.
/// A no-op for single-seed (non-ensemble) runs.
fn emit_companion(out_dir: &std::path::Path, ensemble: Option<&Ensemble>, name: &str) {
    let Some(table) = ensemble.and_then(|e| e.companion(name)) else {
        return;
    };
    fs::write(out_dir.join(format!("{name}.ens.csv")), table.to_csv())
        .expect("write ensemble companion CSV");
}

fn emit(out_dir: &std::path::Path, artifact: &Artifact) {
    println!(
        "== {} ==============================================",
        artifact.name
    );
    println!("{}\n", artifact.summary);
    let rendered = artifact.table.render();
    // Long tables (time series, CDFs) are truncated on the terminal but
    // written in full to CSV.
    let lines: Vec<&str> = rendered.lines().collect();
    if lines.len() > 24 {
        for line in &lines[..12] {
            println!("{line}");
        }
        println!("... ({} rows total; full data in CSV)", lines.len() - 2);
        for line in &lines[lines.len() - 4..] {
            println!("{line}");
        }
    } else {
        println!("{rendered}");
    }
    println!();
    fs::write(
        out_dir.join(format!("{}.csv", artifact.name)),
        artifact.table.to_csv(),
    )
    .expect("write CSV artifact");
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: figures [--scale tiny|figures] [--scale-mult K] [--streaming] \
         [--mem-budget BYTES] [--out DIR] [--serial | --workers N] \
         [--engine threads|reactor] [--chunking per-responder|time-sliced] \
         [--seeds N | --seed-list a,b,c] [--telemetry] [ARTIFACT...]\n\
         artifacts: {} freshness recommendations telemetry ablations readiness bench-scan\n\
         --seeds/--seed-list run a multi-seed ensemble: every artifact gains an \
         <name>.ens.csv companion (mean, 95% CI, stddev, min/max per cell) plus a \
         seeds.txt manifest",
        ALL_ARTIFACTS.join(" ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
