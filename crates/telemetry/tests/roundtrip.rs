//! Property tests: `parse ∘ emit` over the telemetry CSV dialect is
//! byte-exact, for fields full of the metacharacters the minimal-quoting
//! rules exist for (commas, double quotes, line breaks).

use mustaple_telemetry::csv::CsvSnapshot;
use mustaple_telemetry::Registry;
use proptest::prelude::*;

/// One metric or label: printable ASCII (which already includes commas,
/// quotes, and `=`/`;`) salted with literal newlines and carriage
/// returns in the middle.
const FIELD: &str = "\\PC{0,8}[,\"\n\r=;]{0,2}\\PC{0,8}";

proptest! {
    #[test]
    fn csv_emit_parse_emit_is_byte_exact(
        counters in proptest::collection::vec((FIELD, FIELD, 0u64..1_000_000), 0..8),
        histograms in proptest::collection::vec(
            (FIELD, FIELD, proptest::collection::vec(0u64..10_000, 1..5)),
            0..4,
        ),
    ) {
        let mut r = Registry::new();
        for (metric, label, value) in &counters {
            r.add(metric, label, *value);
        }
        for (metric, label, samples) in &histograms {
            for s in samples {
                r.observe(metric, label, *s);
            }
        }

        let csv = r.to_csv();
        let parsed = match CsvSnapshot::parse(&csv) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("parse failed: {e}\n{csv}"))),
        };
        // Byte-exact re-emission, and no series lost or invented.
        prop_assert_eq!(parsed.to_csv(), csv);
        prop_assert_eq!(parsed.counters.len(), r.counters().count());
        prop_assert_eq!(parsed.histograms.len(), r.histograms().count());
        for (metric, label, value) in r.counters() {
            let key = (metric.to_owned(), label.to_owned());
            prop_assert_eq!(parsed.counters.get(&key), Some(&value));
        }
    }

    /// Arbitrary printable text (with stray quotes and newlines) must
    /// never panic the parser, only error.
    #[test]
    fn csv_parse_never_panics_on_garbage(text in "[\\PC]{0,2}\\PC{0,120}[,\"\n\r]{0,6}\\PC{0,40}") {
        let _ = CsvSnapshot::parse(&text);
    }
}
