//! The Prometheus text exposition behind
//! [`Registry::to_prometheus`](crate::Registry::to_prometheus), plus a
//! parser for exactly the subset we emit.
//!
//! The exposition is the `telemetry.prom` artifact: like the CSV it
//! covers only the *deterministic* registry sections (counters and log2
//! histograms — wall-clock spans are never rendered), so the bytes are
//! identical for every worker count and every `run_chunked` chunking.
//!
//! Mapping onto the text format:
//!
//! * Registry metric names are dotted (`net.failure.tcp`); Prometheus
//!   metric names admit only `[A-Za-z0-9_:]`. Each metric is sanitized
//!   into a *family* name (`net_failure_tcp`) and the original spelling
//!   is preserved on the family's `# HELP` line, so
//!   [`Exposition::parse`] recovers the exact registry names and
//!   `teldiff` aligns a `.prom` file against a `.csv` one.
//! * The registry label becomes the `label` label:
//!   `net_failure_tcp{label="Virginia"} 5`.
//! * A [`Histogram`](crate::Histogram) renders as a native Prometheus
//!   histogram: cumulative `_bucket` series with `le` set to each
//!   occupied log2 bucket's inclusive upper bound (`0`, `1`, `3`, `7`,
//!   … `2^i − 1`, then `+Inf`), plus exact `_sum` and `_count`.
//! * Families sort by name, samples by label — rendering is canonical,
//!   and `parse ∘ render` is the identity (pinned by the round-trip
//!   property test in `tests/roundtrip.rs`).
//!
//! # The equality-gated / operational split
//!
//! Two expositions share this module's format:
//!
//! * [`Registry::to_prometheus`] — **equality-gated**: counters and
//!   histograms only, byte-identical across worker counts, engines,
//!   and chunkings; committed as `results/telemetry.prom` and diffed
//!   in CI. This is the only exposition [`Exposition::parse`]
//!   accepts — `# TYPE … gauge` lines are rejected on purpose.
//! * [`Registry::to_prometheus_with_gauges`](crate::Registry::to_prometheus_with_gauges)
//!   — **operational**: the equality-gated bytes as an *exact prefix*,
//!   then [`GAUGE_SECTION_MARKER`] and the gauges (`mem.*`, reactor
//!   depth, `health.*`, `ocspd.*`) as `gauge` families with
//!   `stat="last"/"max"/"sets"` samples. Gauges are legitimately
//!   engine-dependent, so this render is never an artifact and never
//!   parsed back; the live `/metrics` endpoint serves it, and the
//!   live-smoke CI job truncates a scrape at the marker to recover the
//!   equality-gated subset for byte comparison.

use crate::{Histogram, Registry, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What a metric family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotone event counts.
    Counter,
    /// Log2-bucketed sample distributions.
    Histogram,
}

impl FamilyKind {
    fn keyword(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Histogram => "histogram",
        }
    }
}

/// The key identifying one series within a family: the registry label,
/// plus the optional `seed` dimension multi-seed ensembles add.
///
/// Single-run expositions carry no seed (`seed: None`) and render
/// exactly as before — `name{label="…"} v`. An ensemble exposition (see
/// [`Exposition::from_seeded_registries`]) renders every series as
/// `name{label="…",seed="…"} v`, keeping per-seed telemetry separable
/// after the merge. Ordering (and therefore rendering order) is by
/// label first, then seed, with seedless series before seeded ones.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SeriesKey {
    /// The registry label.
    pub label: String,
    /// The ensemble seed this series came from, if any (decimal).
    pub seed: Option<String>,
}

impl SeriesKey {
    /// A seedless (single-run) key.
    pub fn plain(label: &str) -> SeriesKey {
        SeriesKey {
            label: label.to_owned(),
            seed: None,
        }
    }

    /// A key carrying the ensemble seed dimension.
    pub fn seeded(label: &str, seed: u64) -> SeriesKey {
        SeriesKey {
            label: label.to_owned(),
            seed: Some(seed.to_string()),
        }
    }
}

/// One histogram series as exposed: cumulative buckets plus exact
/// sum/count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PromHistogram {
    /// `(le, cumulative count)` pairs in emission order; `le` is a
    /// decimal integer upper bound, with `"+Inf"` last.
    pub buckets: Vec<(String, u64)>,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Number of recorded samples.
    pub count: u64,
}

/// One metric family: every series sharing a (sanitized) metric name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Family {
    /// Counter or histogram.
    pub kind: FamilyKind,
    /// The original registry metric name (recovered from `# HELP`;
    /// equals the family name when sanitization changed nothing).
    pub metric: String,
    /// `series key → value` for counter families.
    pub counters: BTreeMap<SeriesKey, u64>,
    /// `series key → series` for histogram families.
    pub histograms: BTreeMap<SeriesKey, PromHistogram>,
}

/// A parsed (or registry-derived) exposition: the format-faithful view
/// of one run's deterministic telemetry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Exposition {
    /// Families keyed by sanitized name.
    pub families: BTreeMap<String, Family>,
}

/// The comment line separating the equality-gated exposition from the
/// operational gauge section in
/// [`Registry::to_prometheus_with_gauges`](crate::Registry::to_prometheus_with_gauges).
/// Everything *above* the marker must byte-equal
/// [`Registry::to_prometheus`]; everything below is gauge territory
/// that [`Exposition::parse`] would reject. CI's live-smoke job
/// truncates scrapes at this line.
pub const GAUGE_SECTION_MARKER: &str =
    "# --- operational gauges (excluded from determinism gating) ---";

/// Sanitize a registry metric name into a Prometheus metric name:
/// every character outside `[A-Za-z0-9_:]` becomes `_`, and a leading
/// digit gains a `_` prefix.
pub fn sanitize_metric(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Escape a label value per the text format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text: `\` → `\\`, newline → `\n`.
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(value: &str, in_label: bool) -> Result<String, String> {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('"') if in_label => out.push('"'),
            other => return Err(format!("bad escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

/// The inclusive upper bound of log2 bucket `index`, as its `le` label
/// value: bucket 0 holds only the value zero (`le="0"`); bucket `i ≥ 1`
/// holds `[2^(i−1), 2^i)`, so its integer upper bound is `2^i − 1`.
fn le_of_bucket(index: usize) -> String {
    if index == 0 {
        "0".to_string()
    } else {
        ((1u128 << index) - 1).to_string()
    }
}

impl Exposition {
    /// Snapshot the deterministic sections of a registry.
    ///
    /// Panics if two distinct registry metrics sanitize to the same
    /// family name — metric names are code-authored, so a collision is
    /// a programming error, not an input error.
    pub fn from_registry(registry: &Registry) -> Exposition {
        let mut exposition = Exposition::default();
        exposition.absorb(registry, None);
        exposition
    }

    /// Snapshot an *ensemble* of registries, one per seed, into a single
    /// exposition whose every series carries a `seed` label.
    ///
    /// Registries are absorbed in the order given; callers pass seeds in
    /// canonical (replica) order so the result is a pure function of the
    /// per-seed registries. Duplicate seeds panic — each replica owns
    /// its seed, so a repeat is a programming error.
    pub fn from_seeded_registries<'a>(
        parts: impl IntoIterator<Item = (u64, &'a Registry)>,
    ) -> Exposition {
        let mut exposition = Exposition::default();
        let mut seen = BTreeMap::new();
        for (seed, registry) in parts {
            assert!(
                seen.insert(seed, ()).is_none(),
                "duplicate ensemble seed {seed}"
            );
            exposition.absorb(registry, Some(seed));
        }
        exposition
    }

    fn absorb(&mut self, registry: &Registry, seed: Option<u64>) {
        let key = |label: &str| match seed {
            None => SeriesKey::plain(label),
            Some(seed) => SeriesKey::seeded(label, seed),
        };
        for (metric, label, value) in registry.counters() {
            let family = self.family_for(metric, FamilyKind::Counter);
            family.counters.insert(key(label), value);
        }
        for (metric, label, histogram) in registry.histograms() {
            let family = self.family_for(metric, FamilyKind::Histogram);
            family
                .histograms
                .insert(key(label), PromHistogram::from_histogram(histogram));
        }
    }

    fn family_for(&mut self, metric: &str, kind: FamilyKind) -> &mut Family {
        let name = sanitize_metric(metric);
        let family = self.families.entry(name.clone()).or_insert_with(|| Family {
            kind,
            metric: metric.to_owned(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        });
        assert!(
            family.metric == metric && family.kind == kind,
            "metrics `{}` and `{metric}` collide on family `{name}`",
            family.metric,
        );
        family
    }

    /// Render the canonical text exposition. Families sort by name,
    /// samples by label; every byte is a pure function of the model.
    pub fn render(&self) -> String {
        // The label set for one series: `label="…"` plus, for ensemble
        // series, `,seed="…"`.
        fn labels_of(key: &SeriesKey) -> String {
            let mut set = format!("label=\"{}\"", escape_label(&key.label));
            if let Some(seed) = &key.seed {
                let _ = write!(set, ",seed=\"{}\"", escape_label(seed));
            }
            set
        }
        let mut out = String::new();
        for (name, family) in &self.families {
            if family.metric != *name {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.metric));
            }
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.keyword());
            for (key, value) in &family.counters {
                let _ = writeln!(out, "{name}{{{}}} {value}", labels_of(key));
            }
            for (key, h) in &family.histograms {
                let labels = labels_of(key);
                for (le, cumulative) in &h.buckets {
                    let _ = writeln!(out, "{name}_bucket{{{labels},le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum);
                let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count);
            }
        }
        out
    }

    /// Parse an exposition previously produced by [`Exposition::render`].
    ///
    /// Strict for the subset we emit: a family's `# TYPE` line must
    /// precede its samples, histogram sample names must use the
    /// `_bucket`/`_sum`/`_count` suffixes, and duplicate series are
    /// errors. Unrecognized comment lines are ignored (the format
    /// allows free-form comments); unparseable sample lines are not.
    pub fn parse(text: &str) -> Result<Exposition, String> {
        let mut exposition = Exposition::default();
        // `# HELP` may precede `# TYPE`; remember pending originals.
        let mut pending_help: BTreeMap<String, String> = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            let err = |msg: String| format!("line {lineno}: {msg}");
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest
                    .split_once(' ')
                    .ok_or_else(|| err("malformed HELP".into()))?;
                pending_help.insert(name.to_owned(), unescape(help, false).map_err(&err)?);
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest
                    .split_once(' ')
                    .ok_or_else(|| err("malformed TYPE".into()))?;
                let kind = match kind {
                    "counter" => FamilyKind::Counter,
                    "histogram" => FamilyKind::Histogram,
                    other => return Err(err(format!("unsupported family kind `{other}`"))),
                };
                let metric = pending_help.remove(name).unwrap_or_else(|| name.to_owned());
                let replaced = exposition.families.insert(
                    name.to_owned(),
                    Family {
                        kind,
                        metric,
                        counters: BTreeMap::new(),
                        histograms: BTreeMap::new(),
                    },
                );
                if replaced.is_some() {
                    return Err(err(format!("duplicate TYPE for family `{name}`")));
                }
                continue;
            }
            if line.starts_with('#') {
                continue; // free-form comment
            }
            exposition.parse_sample(line).map_err(err)?;
        }
        Ok(exposition)
    }

    fn parse_sample(&mut self, line: &str) -> Result<(), String> {
        let (series, value) = split_sample(line)?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("bad sample value `{value}`"))?;
        let (name, labels) = series;
        let label = SeriesKey {
            label: labels
                .get("label")
                .cloned()
                .ok_or_else(|| format!("sample `{name}` has no label=… pair"))?,
            seed: labels.get("seed").cloned(),
        };

        // Histogram sample names carry a suffix on the family name.
        for (suffix, is_bucket) in [("_bucket", true), ("_sum", false), ("_count", false)] {
            let Some(family_name) = name.strip_suffix(suffix) else {
                continue;
            };
            let Some(family) = self.families.get_mut(family_name) else {
                continue; // e.g. a *counter* legitimately named `…_sum`
            };
            if family.kind != FamilyKind::Histogram {
                continue;
            }
            let series = family.histograms.entry(label.clone()).or_default();
            if is_bucket {
                let le = labels
                    .get("le")
                    .cloned()
                    .ok_or_else(|| format!("bucket sample `{name}` has no le=… pair"))?;
                if series.buckets.iter().any(|(existing, _)| *existing == le) {
                    return Err(format!("duplicate bucket le=\"{le}\" for `{family_name}`"));
                }
                series.buckets.push((le, value));
            } else if suffix == "_sum" {
                series.sum = value;
            } else {
                series.count = value;
            }
            return Ok(());
        }

        let family = self
            .families
            .get_mut(&name)
            .ok_or_else(|| format!("sample `{name}` precedes its TYPE line"))?;
        if family.kind != FamilyKind::Counter {
            return Err(format!("bare sample `{name}` for a histogram family"));
        }
        if family.counters.insert(label, value).is_some() {
            return Err(format!("duplicate counter series `{name}`"));
        }
        Ok(())
    }

    /// Iterate every counter series as
    /// `(original metric, series key, value)` in canonical order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &SeriesKey, u64)> {
        self.families.values().flat_map(|family| {
            family
                .counters
                .iter()
                .map(move |(key, v)| (family.metric.as_str(), key, *v))
        })
    }

    /// Iterate every histogram series as
    /// `(original metric, series key, series)` in canonical order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &SeriesKey, &PromHistogram)> {
        self.families.values().flat_map(|family| {
            family
                .histograms
                .iter()
                .map(move |(key, h)| (family.metric.as_str(), key, h))
        })
    }
}

impl PromHistogram {
    /// Expose one registry histogram: cumulative counts for every
    /// *occupied* log2 bucket (empty buckets are omitted — the `le`
    /// bounds make the series unambiguous), then the mandatory `+Inf`.
    pub fn from_histogram(histogram: &Histogram) -> PromHistogram {
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for index in 0..HISTOGRAM_BUCKETS {
            let occupancy = histogram.bucket(index);
            if occupancy == 0 {
                continue;
            }
            cumulative += occupancy;
            buckets.push((le_of_bucket(index), cumulative));
        }
        buckets.push(("+Inf".to_string(), cumulative));
        PromHistogram {
            buckets,
            sum: histogram.sum(),
            count: histogram.count(),
        }
    }
}

/// Split one sample line into `((name, labels), value)`.
#[allow(clippy::type_complexity)]
fn split_sample(line: &str) -> Result<((String, BTreeMap<String, String>), &str), String> {
    let Some(brace) = line.find('{') else {
        // Unlabeled sample: `name value`.
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed sample `{line}`"))?;
        return Ok(((name.to_owned(), BTreeMap::new()), value));
    };
    let name = &line[..brace];
    let rest = &line[brace + 1..];
    let mut labels = BTreeMap::new();
    let mut chars = rest.char_indices();
    loop {
        // Parse `key="value"`, then `,` or `}`.
        let key_start = match chars.next() {
            Some((i, c)) if c.is_ascii_alphabetic() || c == '_' => i,
            _ => return Err(format!("malformed label set in `{line}`")),
        };
        let mut key_end = key_start;
        for (i, c) in chars.by_ref() {
            if c == '=' {
                key_end = i;
                break;
            }
        }
        let key = &rest[key_start..key_end];
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(format!("label `{key}` value is not quoted in `{line}`"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some((_, c)) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => match chars.next().map(|(_, c)| c) {
                    Some('\\') => value.push('\\'),
                    Some('n') => value.push('\n'),
                    Some('"') => value.push('"'),
                    other => {
                        return Err(format!("bad escape `\\{}`", other.unwrap_or(' ')));
                    }
                },
                _ => value.push(c),
            }
        }
        if !closed {
            return Err(format!("unterminated label value in `{line}`"));
        }
        if labels.insert(key.to_owned(), value).is_some() {
            return Err(format!("duplicate label `{key}` in `{line}`"));
        }
        match chars.next().map(|(_, c)| c) {
            Some(',') => continue,
            Some('}') => break,
            _ => return Err(format!("malformed label set in `{line}`")),
        }
    }
    let after = match chars.next() {
        Some((i, ' ')) => &rest[i + 1..],
        _ => return Err(format!("missing value in `{line}`")),
    };
    Ok(((name.to_owned(), labels), after))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.incr("net.failure.tcp", "Virginia");
        r.add("net.failure.tcp", "Oregon", 3);
        r.incr("scan.probes", "r0");
        r.observe("latency", "Virginia", 0);
        r.observe("latency", "Virginia", 12);
        r.observe("latency", "Virginia", 80);
        r.observe("latency", "Oregon", 7);
        r
    }

    #[test]
    fn render_is_canonical_and_complete() {
        let text = sample_registry().to_prometheus();
        let expected = "\
# TYPE latency histogram
latency_bucket{label=\"Oregon\",le=\"7\"} 1
latency_bucket{label=\"Oregon\",le=\"+Inf\"} 1
latency_sum{label=\"Oregon\"} 7
latency_count{label=\"Oregon\"} 1
latency_bucket{label=\"Virginia\",le=\"0\"} 1
latency_bucket{label=\"Virginia\",le=\"15\"} 2
latency_bucket{label=\"Virginia\",le=\"127\"} 3
latency_bucket{label=\"Virginia\",le=\"+Inf\"} 3
latency_sum{label=\"Virginia\"} 92
latency_count{label=\"Virginia\"} 3
# HELP net_failure_tcp net.failure.tcp
# TYPE net_failure_tcp counter
net_failure_tcp{label=\"Oregon\"} 3
net_failure_tcp{label=\"Virginia\"} 1
# HELP scan_probes scan.probes
# TYPE scan_probes counter
scan_probes{label=\"r0\"} 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn parse_render_round_trips_byte_exactly() {
        let text = sample_registry().to_prometheus();
        let parsed = Exposition::parse(&text).expect("parse own output");
        assert_eq!(parsed.render(), text);
        assert_eq!(parsed, Exposition::from_registry(&sample_registry()));
    }

    #[test]
    fn original_metric_names_survive_the_round_trip() {
        let mut r = Registry::new();
        r.incr("net.failure.tcp", "Virginia");
        r.observe("ocsp.latency", "x", 9);
        let parsed = Exposition::parse(&r.to_prometheus()).expect("parse");
        let counters: Vec<_> = parsed
            .counters()
            .map(|(m, k, v)| (m, k.label.as_str(), v))
            .collect();
        assert_eq!(counters, vec![("net.failure.tcp", "Virginia", 1)]);
        let histograms: Vec<_> = parsed
            .histograms()
            .map(|(m, k, h)| (m, k.label.as_str(), h.count, h.sum))
            .collect();
        assert_eq!(histograms, vec![("ocsp.latency", "x", 1, 9)]);
    }

    #[test]
    fn awkward_label_values_escape_and_round_trip() {
        let mut r = Registry::new();
        r.incr("m", "with \"quotes\" and \\slash\\ and\nnewline");
        let text = r.to_prometheus();
        assert!(text.contains("\\\"quotes\\\""));
        assert!(text.contains("\\\\slash\\\\"));
        assert!(text.contains("\\n"));
        let parsed = Exposition::parse(&text).expect("parse");
        assert_eq!(parsed.render(), text);
        let (_, key, v) = parsed.counters().next().expect("one series");
        assert_eq!(key.label, "with \"quotes\" and \\slash\\ and\nnewline");
        assert_eq!(key.seed, None);
        assert_eq!(v, 1);
    }

    #[test]
    fn sanitize_metric_normalizes_and_prefixes() {
        assert_eq!(sanitize_metric("net.failure.tcp"), "net_failure_tcp");
        assert_eq!(sanitize_metric("plain_name:ok"), "plain_name:ok");
        assert_eq!(sanitize_metric("0day"), "_0day");
        assert_eq!(sanitize_metric(""), "_");
        assert_eq!(sanitize_metric("söme metric"), "s_me_metric");
    }

    #[test]
    #[should_panic(expected = "collide")]
    fn family_collisions_are_loud() {
        let mut r = Registry::new();
        r.incr("a.b", "x");
        r.incr("a_b", "x");
        let _ = r.to_prometheus();
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_log2_bounds() {
        let mut r = Registry::new();
        for v in [1u64, 1, 2, 3, 1024] {
            r.observe("h", "l", v);
        }
        let exposition = Exposition::from_registry(&r);
        let (_, _, series) = exposition.histograms().next().expect("series");
        assert_eq!(
            series.buckets,
            vec![
                ("1".to_string(), 2),
                ("3".to_string(), 4),
                ("2047".to_string(), 5),
                ("+Inf".to_string(), 5),
            ]
        );
        assert_eq!(series.count, 5);
        assert_eq!(series.sum, 1031);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Exposition::parse("# TYPE m gauge\n").is_err());
        assert!(Exposition::parse("m{label=\"x\"} 1\n").is_err()); // no TYPE
        assert!(Exposition::parse("# TYPE m counter\nm{label=\"x\"} nope\n").is_err());
        assert!(Exposition::parse("# TYPE m counter\nm 1\n").is_err()); // no label pair
        assert!(
            Exposition::parse("# TYPE m counter\nm{label=\"x\"} 1\nm{label=\"x\"} 2\n").is_err()
        );
        assert!(Exposition::parse("# TYPE m counter\n# TYPE m counter\n").is_err());
        assert!(Exposition::parse("# TYPE m counter\nm{label=\"x} 1\n").is_err());
        // Free-form comments are fine.
        let ok = Exposition::parse("# a comment\n# TYPE m counter\nm{label=\"x\"} 1\n");
        assert!(ok.is_ok());
    }

    #[test]
    fn seeded_ensemble_exposition_round_trips() {
        let mut a = Registry::new();
        a.incr("net.failure.tcp", "Virginia");
        a.observe("latency", "Oregon", 7);
        let mut b = Registry::new();
        b.add("net.failure.tcp", "Virginia", 2);
        b.observe("latency", "Oregon", 9);
        let exposition = Exposition::from_seeded_registries([(2018, &a), (7, &b)]);
        let text = exposition.render();
        let expected = "\
# TYPE latency histogram
latency_bucket{label=\"Oregon\",seed=\"2018\",le=\"7\"} 1
latency_bucket{label=\"Oregon\",seed=\"2018\",le=\"+Inf\"} 1
latency_sum{label=\"Oregon\",seed=\"2018\"} 7
latency_count{label=\"Oregon\",seed=\"2018\"} 1
latency_bucket{label=\"Oregon\",seed=\"7\",le=\"15\"} 1
latency_bucket{label=\"Oregon\",seed=\"7\",le=\"+Inf\"} 1
latency_sum{label=\"Oregon\",seed=\"7\"} 9
latency_count{label=\"Oregon\",seed=\"7\"} 1
# HELP net_failure_tcp net.failure.tcp
# TYPE net_failure_tcp counter
net_failure_tcp{label=\"Virginia\",seed=\"2018\"} 1
net_failure_tcp{label=\"Virginia\",seed=\"7\"} 2
";
        assert_eq!(text, expected);
        let parsed = Exposition::parse(&text).expect("parse seeded output");
        assert_eq!(parsed.render(), text);
        assert_eq!(parsed, exposition);
        let keys: Vec<_> = parsed.counters().map(|(_, k, _)| k.clone()).collect();
        assert_eq!(
            keys,
            vec![
                SeriesKey::seeded("Virginia", 2018),
                SeriesKey::seeded("Virginia", 7)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate ensemble seed")]
    fn duplicate_ensemble_seeds_are_loud() {
        let r = Registry::new();
        let _ = Exposition::from_seeded_registries([(7, &r), (7, &r)]);
    }

    #[test]
    fn empty_registry_renders_empty_exposition() {
        let r = Registry::new();
        assert_eq!(r.to_prometheus(), "");
        let parsed = Exposition::parse("").expect("empty parse");
        assert_eq!(parsed, Exposition::default());
    }
}
