//! The `kind,metric,label,value` CSV dialect behind
//! [`Registry::to_csv`](crate::Registry::to_csv), plus a parser for it.
//!
//! Metric and label names are arbitrary strings — operators appear in
//! labels verbatim, and nothing stops a future metric from containing a
//! comma — so the writer quotes any field containing a comma, double
//! quote, or line break (doubling inner quotes, the same minimal-quoting
//! convention `analysis::Table::to_csv` uses). [`CsvSnapshot`] parses
//! the dialect back; `parse ∘ emit` is byte-exact, which the round-trip
//! property test in `tests/roundtrip.rs` pins down.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Quote `field` if it contains a CSV metacharacter; otherwise borrow it.
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_owned()
    }
}

/// Append one `counter` row to `out`.
pub(crate) fn write_counter_row(out: &mut String, metric: &str, label: &str, value: u64) {
    let _ = writeln!(out, "counter,{},{},{value}", field(metric), field(label));
}

/// Append one `histogram` summary row to `out`.
pub(crate) fn write_histogram_row(
    out: &mut String,
    metric: &str,
    label: &str,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
) {
    let _ = writeln!(
        out,
        "histogram,{},{},count={count};sum={sum};min={min};max={max}",
        field(metric),
        field(label),
    );
}

/// The summary a `histogram` CSV row carries (the log2 buckets are not
/// serialized to CSV; the Prometheus exposition has them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramRow {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

/// A parsed `telemetry.csv`: the format-faithful view of one run's
/// deterministic telemetry, re-emittable byte-exactly via
/// [`CsvSnapshot::to_csv`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsvSnapshot {
    /// `(metric, label) → value` for every counter row.
    pub counters: BTreeMap<(String, String), u64>,
    /// `(metric, label) → summary` for every histogram row.
    pub histograms: BTreeMap<(String, String), HistogramRow>,
}

impl CsvSnapshot {
    /// Parse a `kind,metric,label,value` CSV (as written by
    /// [`Registry::to_csv`](crate::Registry::to_csv) or the `telemetry`
    /// figures artifact). Strict: unknown kinds, malformed quoting, or a
    /// wrong column count are errors.
    pub fn parse(text: &str) -> Result<CsvSnapshot, String> {
        let mut records = split_records(text)?;
        if records.is_empty() {
            return Err("empty input: expected a kind,metric,label,value header".into());
        }
        let header = records.remove(0);
        if header != ["kind", "metric", "label", "value"] {
            return Err(format!(
                "unexpected header {header:?}: expected kind,metric,label,value"
            ));
        }
        let mut snapshot = CsvSnapshot::default();
        for (i, record) in records.into_iter().enumerate() {
            let line = i + 2; // 1-based, after the header
            let [kind, metric, label, value]: [String; 4] = record
                .try_into()
                .map_err(|r: Vec<String>| format!("line {line}: {} fields, want 4", r.len()))?;
            let key = (metric, label);
            match kind.as_str() {
                "counter" => {
                    let v: u64 = value
                        .parse()
                        .map_err(|_| format!("line {line}: bad counter value `{value}`"))?;
                    if snapshot.counters.insert(key, v).is_some() {
                        return Err(format!("line {line}: duplicate counter series"));
                    }
                }
                "histogram" => {
                    let row =
                        parse_histogram_value(&value).map_err(|e| format!("line {line}: {e}"))?;
                    if snapshot.histograms.insert(key, row).is_some() {
                        return Err(format!("line {line}: duplicate histogram series"));
                    }
                }
                other => return Err(format!("line {line}: unknown kind `{other}`")),
            }
        }
        Ok(snapshot)
    }

    /// Re-emit the snapshot in the exact byte format
    /// [`Registry::to_csv`](crate::Registry::to_csv) produces.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,metric,label,value\n");
        for ((metric, label), v) in &self.counters {
            write_counter_row(&mut out, metric, label, *v);
        }
        for ((metric, label), h) in &self.histograms {
            write_histogram_row(&mut out, metric, label, h.count, h.sum, h.min, h.max);
        }
        out
    }
}

/// Parse the packed `count=..;sum=..;min=..;max=..` histogram value.
fn parse_histogram_value(value: &str) -> Result<HistogramRow, String> {
    let mut fields = [0u64; 4];
    let names = ["count", "sum", "min", "max"];
    let parts: Vec<&str> = value.split(';').collect();
    if parts.len() != 4 {
        return Err(format!("bad histogram value `{value}`"));
    }
    for (slot, (part, name)) in fields.iter_mut().zip(parts.iter().zip(names.iter())) {
        let rest = part
            .strip_prefix(name)
            .and_then(|r| r.strip_prefix('='))
            .ok_or_else(|| format!("bad histogram field `{part}` (want {name}=N)"))?;
        *slot = rest
            .parse()
            .map_err(|_| format!("bad histogram field `{part}`"))?;
    }
    Ok(HistogramRow {
        count: fields[0],
        sum: fields[1],
        min: fields[2],
        max: fields[3],
    })
}

/// Split CSV text into records of unquoted fields. Quoted fields may
/// contain commas, doubled quotes, and line breaks.
fn split_records(text: &str) -> Result<Vec<Vec<String>>, String> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    // Whether the record in progress has any content (so a trailing
    // newline doesn't produce a phantom empty record).
    let mut started = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        current.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => current.push(c),
            }
            continue;
        }
        match c {
            '"' if current.is_empty() => {
                in_quotes = true;
                started = true;
            }
            '"' => return Err("stray quote inside an unquoted field".into()),
            ',' => {
                record.push(std::mem::take(&mut current));
                started = true;
            }
            '\n' => {
                record.push(std::mem::take(&mut current));
                records.push(std::mem::take(&mut record));
                started = false;
            }
            _ => {
                current.push(c);
                started = true;
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    if started || !record.is_empty() {
        record.push(current);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn plain_names_are_not_quoted() {
        let mut r = Registry::new();
        r.incr("net.failure.tcp", "Virginia");
        assert_eq!(
            r.to_csv(),
            "kind,metric,label,value\ncounter,net.failure.tcp,Virginia,1\n"
        );
    }

    #[test]
    fn metacharacters_are_quoted_and_round_trip() {
        let mut r = Registry::new();
        r.incr("evil,metric", "with \"quotes\"");
        r.add("multi\nline", "plain", 7);
        r.observe("hist,og", "a,b", 3);
        let csv = r.to_csv();
        assert!(csv.contains("\"evil,metric\""));
        assert!(csv.contains("\"with \"\"quotes\"\"\""));
        assert!(csv.contains("\"multi\nline\""));
        let parsed = CsvSnapshot::parse(&csv).expect("round-trip parse");
        assert_eq!(parsed.to_csv(), csv);
        assert_eq!(
            parsed.counters[&("evil,metric".into(), "with \"quotes\"".into())],
            1
        );
        assert_eq!(
            parsed.histograms[&("hist,og".into(), "a,b".into())],
            HistogramRow {
                count: 1,
                sum: 3,
                min: 3,
                max: 3
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(CsvSnapshot::parse("").is_err());
        assert!(CsvSnapshot::parse("a,b,c\n").is_err());
        assert!(CsvSnapshot::parse("kind,metric,label,value\nx,y,z,1\n").is_err());
        assert!(CsvSnapshot::parse("kind,metric,label,value\ncounter,m,l,notanum\n").is_err());
        assert!(CsvSnapshot::parse("kind,metric,label,value\ncounter,m,l\n").is_err());
        assert!(CsvSnapshot::parse("kind,metric,label,value\nhistogram,m,l,count=1\n").is_err());
        assert!(CsvSnapshot::parse("kind,metric,label,value\ncounter,\"m,l,1\n").is_err());
        assert!(
            CsvSnapshot::parse("kind,metric,label,value\ncounter,m,l,1\ncounter,m,l,2\n").is_err()
        );
    }

    #[test]
    fn empty_registry_round_trips() {
        let csv = Registry::new().to_csv();
        let parsed = CsvSnapshot::parse(&csv).expect("header-only parse");
        assert_eq!(parsed, CsvSnapshot::default());
        assert_eq!(parsed.to_csv(), csv);
    }
}
