//! Deterministic, mergeable telemetry for the measurement pipelines.
//!
//! The scan campaigns are sharded across worker threads (DESIGN.md §6),
//! and the repo's core invariant is that the *serial* and *parallel*
//! runs are byte-identical. Telemetry must not weaken that, so this
//! crate splits its state into two classes:
//!
//! * **Deterministic** — [`Registry::incr`] counters and
//!   [`Registry::observe`] histograms. These depend only on simulated
//!   events, participate in [`Registry::to_csv`] (the `telemetry.csv`
//!   artifact) and in equality, and merge by elementwise sum, so
//!   combining per-shard registries in canonical shard order yields the
//!   exact registry a serial run would have produced.
//! * **Wall-clock** — [`Registry::time`] span timers. These measure
//!   real elapsed time (merge timings, shard durations) and are
//!   **excluded** from `to_csv` and from `==`; they exist for human
//!   inspection via [`Registry::wall_report`] only. No wall-clock value
//!   can ever reach an artifact.
//! * **Gauges** — [`Registry::set_gauge`] high-watermark gauges
//!   (reactor in-flight depth, ready-queue width). Deterministic for a
//!   fixed engine and chunk plan, but legitimately *different* between
//!   engines or plans that produce byte-identical artifacts — so they
//!   are excluded from `to_csv`, the Prometheus exposition, and `==`
//!   just like wall-clock spans, and surface only through
//!   [`Registry::gauge_report`] and the accessor methods.
//!
//! Counters and histograms are keyed by a `(metric, label)` pair of
//! strings, e.g. `("net.failure.tcp", "Virginia")`. Lookups on the hot
//! path borrow the `&str` keys and allocate only on first insertion.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod csv;
pub mod prom;
pub mod trace;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Number of log2 buckets in a [`Histogram`]: bucket 0 holds the value
/// zero, bucket `i ≥ 1` holds values with `floor(log2(v)) == i - 1`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Exact `count`/`sum`/`min`/`max` are kept alongside the buckets, so
/// merging histograms (elementwise) loses nothing the CSV artifact
/// reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Index of the bucket a value falls in.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Histogram::bucket_of(value)] += 1;
    }

    fn absorb(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupancy of one log2 bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// The value range a bucket covers, as an inclusive-exclusive
    /// `[lo, hi)` pair in `f64` (bucket 0 is the point `[0, 1)`; bucket
    /// `i ≥ 1` is `[2^(i-1), 2^i)`).
    fn bucket_bounds(index: usize) -> (f64, f64) {
        if index == 0 {
            (0.0, 1.0)
        } else {
            ((1u128 << (index - 1)) as f64, (1u128 << index) as f64)
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the log2 bucket the target rank falls in, clamped to the
    /// exact recorded `[min, max]`. `None` if the histogram is empty.
    ///
    /// The estimator: with `target = q · count`, walk the cumulative
    /// bucket counts to the first bucket whose cumulative count reaches
    /// `target`, then interpolate `lo + (target − below)/occupancy ·
    /// (hi − lo)` across that bucket's value range. The clamp makes
    /// single-bucket distributions exact at the recorded extremes.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut below = 0u64;
        for (index, &occupancy) in self.buckets.iter().enumerate() {
            if occupancy == 0 {
                continue;
            }
            let cumulative = below + occupancy;
            if cumulative as f64 >= target {
                let (lo, hi) = Histogram::bucket_bounds(index);
                let fraction = ((target - below as f64) / occupancy as f64).clamp(0.0, 1.0);
                let estimate = lo + fraction * (hi - lo);
                return Some(estimate.clamp(self.min as f64, self.max as f64));
            }
            below = cumulative;
        }
        Some(self.max as f64)
    }
}

/// Aggregated wall-clock time for one span name. Never serialized into
/// artifacts; see the crate docs.
#[derive(Debug, Clone, Copy, Default)]
struct WallSpan {
    count: u64,
    total_nanos: u128,
}

/// A high-watermark gauge: last value set, maximum ever set, and how
/// many times it was set. Introspection only (reactor queue depths and
/// the like) — excluded from equality, `to_csv`, and the Prometheus
/// exposition, exactly like wall-clock spans, because gauge values may
/// legitimately differ between engines or chunk plans that produce
/// byte-identical artifacts.
#[derive(Debug, Clone, Copy, Default)]
struct GaugeSpan {
    last: u64,
    max: u64,
    sets: u64,
}

/// A mergeable set of deterministic counters/histograms plus
/// non-deterministic wall-clock spans.
///
/// Equality and [`Registry::to_csv`] cover only the deterministic
/// sections, so `assert_eq!` between a serial and a parallel run's
/// registries is meaningful even when both also timed their merges.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, BTreeMap<String, u64>>,
    histograms: BTreeMap<String, BTreeMap<String, Histogram>>,
    wall: BTreeMap<String, WallSpan>,
    gauges: BTreeMap<String, GaugeSpan>,
}

impl PartialEq for Registry {
    fn eq(&self, other: &Registry) -> bool {
        // Wall-clock spans are intentionally ignored: two runs of the
        // same simulation are equal even if their real durations differ.
        self.counters == other.counters && self.histograms == other.histograms
    }
}

impl Eq for Registry {}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// True if no deterministic metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Increment the counter `(metric, label)` by one.
    pub fn incr(&mut self, metric: &str, label: &str) {
        self.add(metric, label, 1);
    }

    /// Increment the counter `(metric, label)` by `n`.
    pub fn add(&mut self, metric: &str, label: &str, n: u64) {
        if let Some(labels) = self.counters.get_mut(metric) {
            if let Some(v) = labels.get_mut(label) {
                *v += n;
                return;
            }
            labels.insert(label.to_owned(), n);
            return;
        }
        let mut labels = BTreeMap::new();
        labels.insert(label.to_owned(), n);
        self.counters.insert(metric.to_owned(), labels);
    }

    /// Current value of the counter `(metric, label)` (0 if never set).
    pub fn counter(&self, metric: &str, label: &str) -> u64 {
        self.counters
            .get(metric)
            .and_then(|labels| labels.get(label))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of all labels under `metric` (0 if never set).
    pub fn counter_total(&self, metric: &str) -> u64 {
        self.counters
            .get(metric)
            .map(|labels| labels.values().sum())
            .unwrap_or(0)
    }

    /// Record one sample into the histogram `(metric, label)`.
    pub fn observe(&mut self, metric: &str, label: &str, value: u64) {
        if let Some(labels) = self.histograms.get_mut(metric) {
            if let Some(h) = labels.get_mut(label) {
                h.record(value);
                return;
            }
            let mut h = Histogram::new();
            h.record(value);
            labels.insert(label.to_owned(), h);
            return;
        }
        let mut h = Histogram::new();
        h.record(value);
        let mut labels = BTreeMap::new();
        labels.insert(label.to_owned(), h);
        self.histograms.insert(metric.to_owned(), labels);
    }

    /// The histogram at `(metric, label)`, if any sample was recorded.
    pub fn histogram(&self, metric: &str, label: &str) -> Option<&Histogram> {
        self.histograms
            .get(metric)
            .and_then(|labels| labels.get(label))
    }

    /// Time `f` as a wall-clock span named `name`.
    ///
    /// The measurement lands in the wall section only — it can never
    /// appear in `to_csv` output or influence equality.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record_wall(name, start.elapsed().as_nanos());
        out
    }

    /// Record one wall-clock span observation directly.
    pub fn record_wall(&mut self, name: &str, nanos: u128) {
        if let Some(span) = self.wall.get_mut(name) {
            span.count += 1;
            span.total_nanos += nanos;
            return;
        }
        self.wall.insert(
            name.to_owned(),
            WallSpan {
                count: 1,
                total_nanos: nanos,
            },
        );
    }

    /// Number of wall-clock observations recorded under `name`.
    pub fn wall_count(&self, name: &str) -> u64 {
        self.wall.get(name).map(|s| s.count).unwrap_or(0)
    }

    /// Set the gauge `name` to `value`, tracking its high watermark.
    ///
    /// Gauges are introspection-only (see [`GaugeSpan`]): they never
    /// reach `to_csv`, the Prometheus exposition, or equality. Use them
    /// for executor internals — reactor in-flight depth, ready-queue
    /// width — whose values are allowed to differ between engines that
    /// produce byte-identical artifacts.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        let g = self.gauges.entry(name.to_owned()).or_default();
        g.last = value;
        g.max = g.max.max(value);
        g.sets += 1;
    }

    /// Last value set on gauge `name` (`None` if never set).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).map(|g| g.last)
    }

    /// High watermark of gauge `name` (`None` if never set).
    pub fn gauge_max(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).map(|g| g.max)
    }

    /// Render the gauges for human inspection (never an artifact). One
    /// line per gauge: `name last=.. max=.. sets=..`, or an explicit
    /// placeholder when none were set.
    pub fn gauge_report(&self) -> String {
        if self.gauges.is_empty() {
            return String::from("(no gauges recorded)\n");
        }
        let mut out = String::new();
        for (name, g) in &self.gauges {
            let _ = writeln!(out, "{name} last={} max={} sets={}", g.last, g.max, g.sets);
        }
        out
    }

    /// Fold `other` into `self`.
    ///
    /// Counters and histograms add elementwise, so merging is
    /// associative and commutative; pipelines nevertheless merge
    /// per-shard registries in canonical shard order (matching how their
    /// other per-shard results merge), which the determinism tests rely
    /// on.
    pub fn merge(&mut self, other: &Registry) {
        for (metric, labels) in &other.counters {
            for (label, n) in labels {
                self.add(metric, label, *n);
            }
        }
        for (metric, labels) in &other.histograms {
            for (label, h) in labels {
                if let Some(mine) = self.histograms.get_mut(metric) {
                    if let Some(existing) = mine.get_mut(label) {
                        existing.absorb(h);
                    } else {
                        mine.insert(label.to_owned(), h.clone());
                    }
                } else {
                    let mut mine = BTreeMap::new();
                    mine.insert(label.to_owned(), h.clone());
                    self.histograms.insert(metric.to_owned(), mine);
                }
            }
        }
        for (name, span) in &other.wall {
            if let Some(mine) = self.wall.get_mut(name) {
                mine.count += span.count;
                mine.total_nanos += span.total_nanos;
            } else {
                self.wall.insert(name.to_owned(), *span);
            }
        }
        // Gauges combine by elementwise max (and summed set counts), so
        // merging per-chunk registries in any order reports the same
        // campaign-wide high watermark.
        for (name, gauge) in &other.gauges {
            if let Some(mine) = self.gauges.get_mut(name) {
                mine.last = mine.last.max(gauge.last);
                mine.max = mine.max.max(gauge.max);
                mine.sets += gauge.sets;
            } else {
                self.gauges.insert(name.to_owned(), *gauge);
            }
        }
    }

    /// Iterate all counters as `(metric, label, value)` in canonical
    /// (lexicographic) order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counters.iter().flat_map(|(metric, labels)| {
            labels
                .iter()
                .map(move |(label, v)| (metric.as_str(), label.as_str(), *v))
        })
    }

    /// Iterate all histograms as `(metric, label, histogram)` in
    /// canonical (lexicographic) order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &str, &Histogram)> {
        self.histograms.iter().flat_map(|(metric, labels)| {
            labels
                .iter()
                .map(move |(label, h)| (metric.as_str(), label.as_str(), h))
        })
    }

    /// Render the deterministic sections as CSV
    /// (`kind,metric,label,value`), in canonical order.
    ///
    /// Histogram rows pack their summary into the value column as
    /// `count=..;sum=..;min=..;max=..`. Metric and label fields
    /// containing commas, quotes, or newlines are quoted with doubled
    /// inner quotes (the same convention `analysis::Table` uses), so
    /// [`csv::CsvSnapshot::parse`] round-trips any name byte-exactly.
    /// Wall-clock spans are *not* rendered: the artifact must be
    /// byte-identical across runs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,metric,label,value\n");
        for (metric, label, v) in self.counters() {
            csv::write_counter_row(&mut out, metric, label, v);
        }
        for (metric, label, h) in self.histograms() {
            csv::write_histogram_row(
                &mut out,
                metric,
                label,
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
            );
        }
        out
    }

    /// Render the deterministic sections in the Prometheus text
    /// exposition format (the `telemetry.prom` artifact); see
    /// [`prom::Exposition`] for the exact subset emitted. Byte-stable
    /// across worker counts; wall-clock spans are never rendered.
    pub fn to_prometheus(&self) -> String {
        prom::Exposition::from_registry(self).render()
    }

    /// Render the *operational* exposition the live service serves at
    /// `GET /metrics`: the equality-gated [`Registry::to_prometheus`]
    /// bytes as an exact prefix, then — after
    /// [`prom::GAUGE_SECTION_MARKER`] — every gauge as a Prometheus
    /// `gauge` family with `stat="last"/"max"/"sets"` samples.
    ///
    /// The prefix property is the contract the live-smoke CI job
    /// leans on: truncating a scrape at the marker yields bytes that
    /// must equal an offline [`Registry::to_prometheus`] render, while
    /// the gauge tail may differ between engines/runs exactly like
    /// every other gauge surface. [`prom::Exposition::parse`] rejects
    /// `gauge` families on purpose, so the tail can never leak into
    /// the determinism-gated toolchain; see `telemetry::prom` for the
    /// full split.
    pub fn to_prometheus_with_gauges(&self) -> String {
        let mut out = self.to_prometheus();
        if self.gauges.is_empty() {
            return out;
        }
        out.push_str(prom::GAUGE_SECTION_MARKER);
        out.push('\n');
        for (name, g) in &self.gauges {
            let family = prom::sanitize_metric(name);
            if family != *name {
                let _ = writeln!(out, "# HELP {family} {name}");
            }
            let _ = writeln!(out, "# TYPE {family} gauge");
            let _ = writeln!(out, "{family}{{stat=\"last\"}} {}", g.last);
            let _ = writeln!(out, "{family}{{stat=\"max\"}} {}", g.max);
            let _ = writeln!(out, "{family}{{stat=\"sets\"}} {}", g.sets);
        }
        out
    }

    /// Render the wall-clock spans for human inspection (never an
    /// artifact). Returns one line per span: `name count total_ms` — or
    /// an explicit `(no wall timings recorded)` line when no span was
    /// ever timed (e.g. replayed or freshly-merged registries), so the
    /// report is never silently empty.
    pub fn wall_report(&self) -> String {
        if self.wall.is_empty() {
            return String::from("(no wall timings recorded)\n");
        }
        let mut out = String::new();
        for (name, span) in &self.wall {
            let _ = writeln!(
                out,
                "{name} count={} total={:.3}ms",
                span.count,
                span.total_nanos as f64 / 1e6
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_a() -> Registry {
        let mut r = Registry::new();
        r.incr("net.failure.tcp", "Virginia");
        r.add("net.failure.tcp", "Oregon", 3);
        r.incr("scan.probes", "r0");
        r.observe("latency", "Virginia", 12);
        r.observe("latency", "Virginia", 80);
        r
    }

    fn sample_b() -> Registry {
        let mut r = Registry::new();
        r.add("net.failure.tcp", "Virginia", 4);
        r.incr("scan.probes", "r1");
        r.observe("latency", "Oregon", 7);
        r
    }

    fn sample_c() -> Registry {
        let mut r = Registry::new();
        r.incr("net.failure.dns", "Sydney");
        r.observe("latency", "Virginia", 200);
        r
    }

    fn merged(parts: &[&Registry]) -> Registry {
        let mut out = Registry::new();
        for p in parts {
            out.merge(p);
        }
        out
    }

    #[test]
    fn counters_accumulate_and_read_back() {
        let r = sample_a();
        assert_eq!(r.counter("net.failure.tcp", "Virginia"), 1);
        assert_eq!(r.counter("net.failure.tcp", "Oregon"), 3);
        assert_eq!(r.counter_total("net.failure.tcp"), 4);
        assert_eq!(r.counter("net.failure.tcp", "Sydney"), 0);
        assert_eq!(r.counter_total("absent"), 0);
    }

    #[test]
    fn merge_is_associative() {
        let (a, b, c) = (sample_a(), sample_b(), sample_c());
        let left = merged(&[&merged(&[&a, &b]), &c]);
        let right = merged(&[&a, &merged(&[&b, &c])]);
        assert_eq!(left, right);
    }

    #[test]
    fn merge_is_commutative_so_canonical_order_is_safe() {
        // Elementwise sums commute, so the canonical shard-order merge
        // the pipelines use yields the same registry any order would —
        // the ordering convention is for auditability, not correctness.
        let (a, b, c) = (sample_a(), sample_b(), sample_c());
        let forward = merged(&[&a, &b, &c]);
        let backward = merged(&[&c, &b, &a]);
        assert_eq!(forward, backward);
        assert_eq!(forward.to_csv(), backward.to_csv());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = sample_a();
        let mut out = a.clone();
        out.merge(&Registry::new());
        assert_eq!(out, a);
        let mut empty = Registry::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn histograms_track_summary_stats_and_buckets() {
        let r = sample_a();
        let h = r.histogram("latency", "Virginia").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 92);
        assert_eq!(h.min(), 12);
        assert_eq!(h.max(), 80);
        assert!((h.mean() - 46.0).abs() < 1e-9);
        assert_eq!(h.bucket(Histogram::bucket_of(12)), 1);
        assert_eq!(h.bucket(Histogram::bucket_of(80)), 1);
        assert!(r.histogram("latency", "Sydney").is_none());
    }

    #[test]
    fn bucket_of_is_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantile_is_exact_on_single_bucket_distributions() {
        // All mass in one bucket: the [min, max] clamp collapses the
        // interpolation to the exact recorded value at every quantile.
        let mut h = Histogram::new();
        for _ in 0..5 {
            h.record(7);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(7.0), "q={q}");
        }
    }

    #[test]
    fn quantile_interpolates_known_distributions() {
        // Samples 1, 2, 3: bucket 1 holds {1}, bucket 2 ([2,4)) holds
        // {2, 3}. target = q·3 walks the cumulative counts.
        let mut h = Histogram::new();
        for v in [1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1.0));
        // target 1.5 → bucket 2, fraction (1.5−1)/2 → 2 + 0.25·2 = 2.5.
        assert_eq!(h.quantile(0.5), Some(2.5));
        // target 3 lands at the top of bucket 2 → 4.0, clamped to max 3.
        assert_eq!(h.quantile(1.0), Some(3.0));

        // Zeros plus one far outlier: the median stays inside bucket 0
        // and the tail clamps to the recorded max, not the bucket's
        // upper bound (2048).
        let mut h = Histogram::new();
        for _ in 0..3 {
            h.record(0);
        }
        h.record(1024);
        // target 2 of 3 zeros → 0 + (2/3)·1 inside bucket 0's [0, 1).
        assert!((h.quantile(0.5).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.quantile(0.9), Some(1024.0));
        assert_eq!(h.quantile(1.0), Some(1024.0));
    }

    #[test]
    fn quantile_is_monotone_and_none_when_empty() {
        assert_eq!(Histogram::new().quantile(0.5), None);
        let mut h = Histogram::new();
        for v in [0, 1, 3, 9, 40, 41, 500, 8_000, 9_001] {
            h.record(v);
        }
        let mut last = f64::NEG_INFINITY;
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let v = h.quantile(q).unwrap();
            assert!(v >= last, "quantile not monotone at q={q}: {v} < {last}");
            assert!((0.0..=9_001.0).contains(&v), "q={q} escaped [min, max]");
            last = v;
        }
        // Out-of-range q clamps rather than panics.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn wall_spans_are_excluded_from_equality_and_csv() {
        let mut with_wall = sample_a();
        let result = with_wall.time("merge", || 2 + 2);
        assert_eq!(result, 4);
        with_wall.record_wall("merge", 1_000_000);
        assert_eq!(with_wall.wall_count("merge"), 2);

        let without_wall = sample_a();
        assert_eq!(with_wall, without_wall);
        assert_eq!(with_wall.to_csv(), without_wall.to_csv());
        assert!(!with_wall.to_csv().contains("merge"));
        assert!(with_wall.wall_report().contains("merge count=2"));
    }

    #[test]
    fn quantile_endpoints_are_exact_min_and_max() {
        // Pinned for the reactor port: q=0.0 must report the exact
        // recorded min and q=1.0 the exact recorded max, regardless of
        // bucket boundaries.
        let mut h = Histogram::new();
        for v in [5, 17, 300, 4_096] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(4_096.0));
        let mut single = Histogram::new();
        single.record(42);
        assert_eq!(single.quantile(0.0), Some(42.0));
        assert_eq!(single.quantile(1.0), Some(42.0));
    }

    #[test]
    fn gauges_are_excluded_from_equality_and_artifacts() {
        let mut with_gauge = sample_a();
        with_gauge.set_gauge("reactor.depth", 12_000);
        with_gauge.set_gauge("reactor.depth", 7);
        assert_eq!(with_gauge.gauge("reactor.depth"), Some(7));
        assert_eq!(with_gauge.gauge_max("reactor.depth"), Some(12_000));
        assert_eq!(with_gauge.gauge("absent"), None);

        let without_gauge = sample_a();
        assert_eq!(with_gauge, without_gauge);
        assert_eq!(with_gauge.to_csv(), without_gauge.to_csv());
        assert_eq!(with_gauge.to_prometheus(), without_gauge.to_prometheus());
        assert!(!with_gauge.to_csv().contains("reactor.depth"));
        assert!(with_gauge
            .gauge_report()
            .contains("reactor.depth last=7 max=12000 sets=2"));
        assert_eq!(Registry::new().gauge_report(), "(no gauges recorded)\n");
    }

    #[test]
    fn gauge_exposition_extends_the_equality_gated_render_as_a_prefix() {
        let mut r = sample_a();
        r.set_gauge("reactor.depth", 12);
        r.set_gauge("reactor.depth", 7);
        let gated = r.to_prometheus();
        let operational = r.to_prometheus_with_gauges();
        // The equality-gated bytes are an exact prefix…
        assert!(operational.starts_with(&gated));
        // …separated by the marker, below which the gauges render as
        // stat-labeled gauge families.
        let tail = &operational[gated.len()..];
        assert!(tail.starts_with(prom::GAUGE_SECTION_MARKER));
        assert!(tail.contains("# TYPE reactor_depth gauge"));
        assert!(tail.contains("# HELP reactor_depth reactor.depth"));
        assert!(tail.contains("reactor_depth{stat=\"last\"} 7"));
        assert!(tail.contains("reactor_depth{stat=\"max\"} 12"));
        assert!(tail.contains("reactor_depth{stat=\"sets\"} 2"));
        // Truncating at the marker recovers the gated subset — the
        // live-smoke contract.
        let truncated = &operational[..gated.len()];
        assert_eq!(truncated, gated);
        assert!(prom::Exposition::parse(truncated).is_ok());
        // The gauge tail is unparseable by design.
        assert!(prom::Exposition::parse(tail).is_err());
        // No gauges → the two renders coincide.
        assert_eq!(
            sample_a().to_prometheus_with_gauges(),
            sample_a().to_prometheus()
        );
    }

    #[test]
    fn gauges_merge_by_high_watermark_in_any_order() {
        let mut a = Registry::new();
        a.set_gauge("reactor.depth", 10);
        let mut b = Registry::new();
        b.set_gauge("reactor.depth", 25);
        b.set_gauge("reactor.depth", 3);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for merged in [&ab, &ba] {
            assert_eq!(merged.gauge_max("reactor.depth"), Some(25));
            assert_eq!(merged.gauge("reactor.depth"), Some(10).max(Some(3)));
            assert!(merged.gauge_report().contains("sets=3"));
        }
    }

    #[test]
    fn wall_spans_merge_too() {
        let mut a = Registry::new();
        a.record_wall("shard", 10);
        let mut b = Registry::new();
        b.record_wall("shard", 30);
        a.merge(&b);
        assert_eq!(a.wall_count("shard"), 2);
        assert!(a.wall_report().contains("total=0.000"));
    }

    #[test]
    fn csv_is_canonically_ordered_and_complete() {
        let all = merged(&[&sample_a(), &sample_b(), &sample_c()]);
        let csv = all.to_csv();
        let expected = "kind,metric,label,value\n\
                        counter,net.failure.dns,Sydney,1\n\
                        counter,net.failure.tcp,Oregon,3\n\
                        counter,net.failure.tcp,Virginia,5\n\
                        counter,scan.probes,r0,1\n\
                        counter,scan.probes,r1,1\n\
                        histogram,latency,Oregon,count=1;sum=7;min=7;max=7\n\
                        histogram,latency,Virginia,count=3;sum=292;min=12;max=200\n";
        assert_eq!(csv, expected);
    }

    #[test]
    fn empty_registry_renders_header_only() {
        let r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(r.to_csv(), "kind,metric,label,value\n");
        assert_eq!(r.counter("x", "y"), 0);
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
