//! The metric-name catalog: one constant per telemetry name.
//!
//! Every metric, gauge, and wall-span name the workspace emits is
//! declared here as a `pub const NAME: &str = "dotted.name";`. Call
//! sites reference the constant instead of repeating the string, so a
//! typo is a compile error (unknown identifier) instead of a silently
//! forked metric family. `detlint`'s metric-catalog pass enforces the
//! discipline three ways: call sites in the metric crates must route
//! through these constants, every family in the committed
//! `results/telemetry.prom` baseline must be declared here, and every
//! `["metric"]` tolerance section in `teldiff.toml` must be declared
//! here — so the catalog, the baseline, and the tolerances cannot
//! drift apart. An orphaned constant (referenced by no call site) is
//! itself a lint error: a retired metric leaves no residue.
//!
//! Test code deliberately keeps its metric names as string literals —
//! the equality and accounting tests cross-check these constants'
//! *values*, which a catalog-wide rename would otherwise silently
//! rewrite on both sides.
//!
//! Naming: the constant is the SCREAMING_SNAKE form of the dotted
//! name. Grouping mirrors the emitting subsystem.

// --- netsim: transport requests and failure taxonomy -----------------

/// Every HTTP transaction entering the simulated network, by vantage
/// region.
pub const NET_REQUEST: &str = "net.request";
/// DNS resolution failures (NXDOMAIN, unregistered host), by region.
pub const NET_FAILURE_DNS: &str = "net.failure.dns";
/// TCP connect failures from injected outages, by region.
pub const NET_FAILURE_TCP: &str = "net.failure.tcp";
/// Injected HTTP 4xx outcomes, by region.
pub const NET_FAILURE_HTTP4XX: &str = "net.failure.http4xx";
/// Injected HTTP 5xx outcomes, by region.
pub const NET_FAILURE_HTTP5XX: &str = "net.failure.http5xx";
/// HTTPS endpoints presenting an invalid certificate, by region.
pub const NET_FAILURE_TLS: &str = "net.failure.tls";
/// Handler-returned non-200 statuses outside the injected taxonomy,
/// by region.
pub const NET_FAILURE_HTTP: &str = "net.failure.http";
/// Failures attributed to a shared-infrastructure group outage, by
/// group name.
pub const NET_FAILURE_BY_GROUP: &str = "net.failure.by_group";
/// Outage activations, by host (or `group:<name>`).
pub const NET_OUTAGE_ACTIVATION: &str = "net.outage.activation";
/// Warm-path request latency histogram (ms), by region.
pub const NET_LATENCY_MS: &str = "net.latency_ms";

// --- netsim: CDN edge cache ------------------------------------------

/// CDN edge-cache hits, by edge region.
pub const CDN_EDGE_HIT: &str = "cdn.edge.hit";
/// CDN edge-cache misses, by edge region.
pub const CDN_EDGE_MISS: &str = "cdn.edge.miss";
/// Origin fetches issued on an edge miss, by edge region.
pub const CDN_ORIGIN_FETCH: &str = "cdn.origin.fetch";
/// Origin fetches that returned HTTP 200, by edge region.
pub const CDN_ORIGIN_SUCCESS: &str = "cdn.origin.success";

// --- ocsp: responder engine and client validation --------------------

/// Fault-profile activations in the responder engine, by fault label.
pub const OCSP_RESPONDER_FAULT: &str = "ocsp.responder.fault";
/// Signed-response cache outcomes on the responder request path
/// (`hit` / `miss` / `window_sign`).
pub const OCSP_RESPONDER_CACHE: &str = "ocsp.responder.cache";
/// Signature-verification cache outcomes in client-side validation
/// (`hit` / `miss`).
pub const OCSP_VALIDATE_SIGCACHE: &str = "ocsp.validate.sigcache";

// --- scanner: the four measurement pipelines -------------------------

/// Hourly-scan probes sent, by responder label.
pub const SCAN_HOURLY_PROBES: &str = "scan.hourly.probes";
/// Hourly-scan rounds executed, by responder label.
pub const SCAN_HOURLY_ROUNDS: &str = "scan.hourly.rounds";
/// Hourly-scan validation outcomes, by outcome label.
pub const SCAN_HOURLY_VALIDATE: &str = "scan.hourly.validate";
/// Alexa1M responders evaluated, by shard label.
pub const SCAN_ALEXA1M_RESPONDERS_EVALUATED: &str = "scan.alexa1m.responders_evaluated";
/// Alexa1M persistent domains accumulated, by shard label.
pub const SCAN_ALEXA1M_PERSISTENT_DOMAINS: &str = "scan.alexa1m.persistent_domains";
/// Consistency-study probes sent, by responder label.
pub const SCAN_CONSISTENCY_PROBES: &str = "scan.consistency.probes";
/// CRL fetch outcomes in the consistency study (`ok` / `err`).
pub const SCAN_CONSISTENCY_CRL_FETCH: &str = "scan.consistency.crl_fetch";
/// Consistency-study validation outcomes, by outcome label.
pub const SCAN_CONSISTENCY_VALIDATE: &str = "scan.consistency.validate";
/// CDN-perspective log lookups, by outcome label.
pub const SCAN_CDN_LOOKUPS: &str = "scan.cdn.lookups";

// --- scanner: wall-clock merge spans (excluded from artifacts) -------

/// Wall time of the hourly scan's shard-merge phase.
pub const SCAN_HOURLY_MERGE: &str = "scan.hourly.merge";
/// Wall time of the consistency study's shard-merge phase.
pub const SCAN_CONSISTENCY_MERGE: &str = "scan.consistency.merge";
/// Wall time of the Alexa1M scan's shard-merge phase.
pub const SCAN_ALEXA1M_MERGE: &str = "scan.alexa1m.merge";

// --- scanner: reactor introspection gauges (excluded from artifacts) -

/// Peak in-flight probe depth inside the hourly scan's reactor.
pub const SCAN_HOURLY_REACTOR_DEPTH: &str = "scan.hourly.reactor.depth";
/// Widest ready-queue tick inside the hourly scan's reactor.
pub const SCAN_HOURLY_REACTOR_READY: &str = "scan.hourly.reactor.ready";
/// Peak in-flight probe depth inside the consistency study's reactor.
pub const SCAN_CONSISTENCY_REACTOR_DEPTH: &str = "scan.consistency.reactor.depth";
/// Peak in-flight CRL-fetch depth inside the consistency study's
/// reactor.
pub const SCAN_CONSISTENCY_REACTOR_CRL_DEPTH: &str = "scan.consistency.reactor.crl_depth";

// --- webserver: stapling behavior models -----------------------------

/// Staples installed into the server cache, by server kind.
pub const WEBSERVER_STAPLE_INSTALL: &str = "webserver.staple.install";
/// Cached staples dropped (expired or evicted), by server kind.
pub const WEBSERVER_STAPLE_DROP: &str = "webserver.staple.drop";
/// Connections served with no staple available, by server kind.
pub const WEBSERVER_STAPLE_NONE: &str = "webserver.staple.none";
/// Old staples retained after a failed refresh, by server kind.
pub const WEBSERVER_STAPLE_RETAIN: &str = "webserver.staple.retain";
/// Error/stale responses rejected instead of installed (Ideal server
/// only), by server kind.
pub const WEBSERVER_STAPLE_REJECT_ERROR: &str = "webserver.staple.reject_error";
/// Staple served from the warm cache, by server kind.
pub const WEBSERVER_CACHE_HIT: &str = "webserver.cache.hit";
/// Connection arrived with a cold/expired cache, by server kind.
pub const WEBSERVER_CACHE_MISS: &str = "webserver.cache.miss";
/// Synchronous (handshake-pausing) OCSP fetches, by server kind.
pub const WEBSERVER_FETCH_SYNC: &str = "webserver.fetch.sync";
/// Background (non-blocking) OCSP fetches, by server kind.
pub const WEBSERVER_FETCH_BACKGROUND: &str = "webserver.fetch.background";
/// Scheduled prefetches ahead of expiry, by server kind.
pub const WEBSERVER_PREFETCH: &str = "webserver.prefetch";
/// Refresh intervals clamped to the responder's validity window, by
/// server kind.
pub const WEBSERVER_REFRESH_CLAMPED: &str = "webserver.refresh.clamped";

// --- ecosystem / study: churn gauges (excluded from artifacts) -------

/// Certificates issued over the simulated study window.
pub const ECOSYSTEM_CHURN_ISSUED: &str = "ecosystem.churn.issued";
/// Certificates expired over the simulated study window.
pub const ECOSYSTEM_CHURN_EXPIRED: &str = "ecosystem.churn.expired";
/// Certificates revoked over the simulated study window.
pub const ECOSYSTEM_CHURN_REVOKED: &str = "ecosystem.churn.revoked";
/// Certificates live at the end of the simulated study window.
pub const ECOSYSTEM_CHURN_LIVE: &str = "ecosystem.churn.live";

// --- opsmon: responder health-state machine --------------------------

/// Health-state transitions observed by the per-responder tracker, by
/// edge label (`healthy_degraded`, `degraded_failed`,
/// `degraded_healthy`, `failed_healthy`). Deterministic (replayed from
/// probe classifications in simulated time), so artifact-grade.
pub const HEALTH_TRANSITIONS: &str = "health.transitions";
/// Subjects currently Healthy after the replay (gauge, excluded from
/// artifacts).
pub const HEALTH_STATE_HEALTHY: &str = "health.state.healthy";
/// Subjects currently Degraded after the replay (gauge, excluded from
/// artifacts).
pub const HEALTH_STATE_DEGRADED: &str = "health.state.degraded";
/// Subjects currently Failed after the replay (gauge, excluded from
/// artifacts).
pub const HEALTH_STATE_FAILED: &str = "health.state.failed";
/// Worst scheduled retry backoff across Failed subjects, in seconds
/// (gauge, excluded from artifacts).
pub const HEALTH_BACKOFF_SECS: &str = "health.backoff_secs";

// --- ocspd: the live service tier ------------------------------------

/// OCSP requests served over the live `POST /ocsp` socket path, by
/// route label. Deterministic given the request sequence (the
/// live-smoke job replays it offline for byte comparison).
pub const OCSPD_REQUESTS: &str = "ocspd.requests";
/// Live `GET /metrics` scrapes served (gauge — scrape counts are
/// operational, never part of the equality-gated exposition).
pub const OCSPD_SCRAPES_METRICS: &str = "ocspd.scrapes.metrics";
/// Live `GET /health` scrapes served (gauge, excluded from artifacts).
pub const OCSPD_SCRAPES_HEALTH: &str = "ocspd.scrapes.health";

// --- bench: allocator instrumentation gauges -------------------------

/// Peak bytes outstanding reported by the counting allocator
/// (`--features mem-profile` only).
pub const MEM_PEAK_BYTES: &str = "mem.peak_bytes";
/// Total allocation count reported by the counting allocator
/// (`--features mem-profile` only).
pub const MEM_ALLOC_COUNT: &str = "mem.alloc_count";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_dotted_and_lowercase() {
        let all = [
            NET_REQUEST,
            NET_FAILURE_DNS,
            NET_FAILURE_TCP,
            NET_FAILURE_HTTP4XX,
            NET_FAILURE_HTTP5XX,
            NET_FAILURE_TLS,
            NET_FAILURE_HTTP,
            NET_FAILURE_BY_GROUP,
            NET_OUTAGE_ACTIVATION,
            NET_LATENCY_MS,
            CDN_EDGE_HIT,
            CDN_EDGE_MISS,
            CDN_ORIGIN_FETCH,
            CDN_ORIGIN_SUCCESS,
            OCSP_RESPONDER_FAULT,
            OCSP_RESPONDER_CACHE,
            OCSP_VALIDATE_SIGCACHE,
            SCAN_HOURLY_PROBES,
            SCAN_HOURLY_ROUNDS,
            SCAN_HOURLY_VALIDATE,
            SCAN_ALEXA1M_RESPONDERS_EVALUATED,
            SCAN_ALEXA1M_PERSISTENT_DOMAINS,
            SCAN_CONSISTENCY_PROBES,
            SCAN_CONSISTENCY_CRL_FETCH,
            SCAN_CONSISTENCY_VALIDATE,
            SCAN_CDN_LOOKUPS,
            SCAN_HOURLY_MERGE,
            SCAN_CONSISTENCY_MERGE,
            SCAN_ALEXA1M_MERGE,
            SCAN_HOURLY_REACTOR_DEPTH,
            SCAN_HOURLY_REACTOR_READY,
            SCAN_CONSISTENCY_REACTOR_DEPTH,
            SCAN_CONSISTENCY_REACTOR_CRL_DEPTH,
            WEBSERVER_STAPLE_INSTALL,
            WEBSERVER_STAPLE_DROP,
            WEBSERVER_STAPLE_NONE,
            WEBSERVER_STAPLE_RETAIN,
            WEBSERVER_STAPLE_REJECT_ERROR,
            WEBSERVER_CACHE_HIT,
            WEBSERVER_CACHE_MISS,
            WEBSERVER_FETCH_SYNC,
            WEBSERVER_FETCH_BACKGROUND,
            WEBSERVER_PREFETCH,
            WEBSERVER_REFRESH_CLAMPED,
            HEALTH_TRANSITIONS,
            HEALTH_STATE_HEALTHY,
            HEALTH_STATE_DEGRADED,
            HEALTH_STATE_FAILED,
            HEALTH_BACKOFF_SECS,
            OCSPD_REQUESTS,
            OCSPD_SCRAPES_METRICS,
            OCSPD_SCRAPES_HEALTH,
            ECOSYSTEM_CHURN_ISSUED,
            ECOSYSTEM_CHURN_EXPIRED,
            ECOSYSTEM_CHURN_REVOKED,
            ECOSYSTEM_CHURN_LIVE,
            MEM_PEAK_BYTES,
            MEM_ALLOC_COUNT,
        ];
        for name in all {
            assert!(
                name.contains('.')
                    && name.chars().all(|c| c.is_ascii_lowercase()
                        || c.is_ascii_digit()
                        || "._45".contains(c)),
                "unexpected metric name shape: {name}"
            );
        }
        // No duplicates: the catalog is a bijection name ↔ value.
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }
}
