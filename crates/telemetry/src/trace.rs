//! Deterministic trace spans: a hierarchical self-profile of one
//! campaign, stamped with **simulated** clock hours.
//!
//! The scan pipelines already account for wall time via
//! [`Registry::time`](crate::Registry::time) — but wall spans are
//! non-deterministic and excluded from every artifact. Trace spans are
//! the complement: each span covers a range of *simulated campaign
//! hours* (hour 0 = campaign start), so the tree is a pure function of
//! the simulation and the `trace.jsonl` artifact is byte-identical
//! across worker counts.
//!
//! The tree mirrors the execution hierarchy: a `campaign` root, one
//! child per scan pipeline (`scan.hourly`, `scan.alexa1m`, …), one
//! grandchild per shard (named after the responder/operator it covers),
//! and one leaf per `run_chunked` chunk. `units` counts the work a span
//! covers (requests, lookups) and sums upward on aggregation.
//!
//! Serialization is JSONL — one object per span in preorder, carrying
//! an explicit `depth` instead of a path (span names contain `/`
//! freely: responder URLs). [`Span::render_ascii`] draws the same tree
//! for the `figures --telemetry` self-profile.

use std::fmt::Write as _;

/// One node of the span tree: a named range of simulated campaign
/// hours plus the work units it covered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// What this span covers (pipeline name, responder hostname,
    /// `chunk 3`, …). Arbitrary bytes; escaped on serialization.
    pub name: String,
    /// First simulated campaign hour the span covers.
    pub start_hour: u64,
    /// Last simulated campaign hour the span covers (inclusive range
    /// end as the pipelines compute it; a point-in-time span has
    /// `start_hour == end_hour`).
    pub end_hour: u64,
    /// Work units (requests, lookups) attributed to the span itself
    /// plus all descendants.
    pub units: u64,
    /// Child spans, in execution (canonical shard/chunk) order.
    pub children: Vec<Span>,
}

impl Span {
    /// A childless span.
    pub fn leaf(name: impl Into<String>, start_hour: u64, end_hour: u64, units: u64) -> Span {
        Span {
            name: name.into(),
            start_hour,
            end_hour,
            units,
            children: Vec::new(),
        }
    }

    /// A parent span derived from its children: the hour range is the
    /// envelope (min start, max end) and `units` is the sum. An empty
    /// child list yields the degenerate `[0, 0]` span with zero units.
    pub fn aggregate(name: impl Into<String>, children: Vec<Span>) -> Span {
        let start_hour = children.iter().map(|c| c.start_hour).min().unwrap_or(0);
        let end_hour = children.iter().map(|c| c.end_hour).max().unwrap_or(0);
        let units = children.iter().map(|c| c.units).sum();
        Span {
            name: name.into(),
            start_hour,
            end_hour,
            units,
            children,
        }
    }

    /// Total number of spans in the tree (self included).
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(Span::len).sum::<usize>()
    }

    /// Always false: a span tree contains at least its root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serialize the tree as JSONL: one object per span in preorder,
    /// with an explicit `depth` field encoding the hierarchy (names may
    /// contain `/`, so path-style keys would be ambiguous). Byte-stable:
    /// field order is fixed and all values are integers or escaped
    /// strings.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        self.write_jsonl(&mut out, 0);
        out
    }

    fn write_jsonl(&self, out: &mut String, depth: usize) {
        let _ = writeln!(
            out,
            "{{\"depth\":{depth},\"name\":\"{}\",\"start_hour\":{},\"end_hour\":{},\"units\":{}}}",
            escape_json(&self.name),
            self.start_hour,
            self.end_hour,
            self.units,
        );
        for child in &self.children {
            child.write_jsonl(out, depth + 1);
        }
    }

    /// Parse a tree previously produced by [`Span::to_jsonl`]. Strict
    /// for the subset we emit: the first line must be the depth-0 root,
    /// each subsequent line's depth must be between 1 and one more than
    /// its predecessor's, and re-serializing the result is byte-exact.
    pub fn parse_jsonl(text: &str) -> Result<Span, String> {
        let mut stack: Vec<Span> = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            let (depth, span) =
                parse_jsonl_line(line).map_err(|e| format!("line {lineno}: {e}"))?;
            if depth > stack.len() || (stack.is_empty() && depth != 0) {
                return Err(format!(
                    "line {lineno}: depth {depth} does not attach to the tree"
                ));
            }
            // Everything at `depth` or deeper is complete; fold it up.
            while stack.len() > depth {
                let done = match stack.pop() {
                    Some(done) => done,
                    None => return Err(format!("line {lineno}: malformed tree")),
                };
                match stack.last_mut() {
                    Some(parent) => parent.children.push(done),
                    None => return Err(format!("line {lineno}: multiple roots")),
                }
            }
            stack.push(span);
        }
        while stack.len() > 1 {
            let done = match stack.pop() {
                Some(done) => done,
                None => break,
            };
            if let Some(parent) = stack.last_mut() {
                parent.children.push(done);
            }
        }
        stack.pop().ok_or_else(|| "empty trace".to_string())
    }

    /// Render the tree as an indented ASCII self-profile, one line per
    /// span down to `max_depth` (0 = root only). Subtrees below the
    /// limit collapse into a `… (N spans elided)` line so huge shard
    /// fan-outs stay readable.
    pub fn render_ascii(&self, max_depth: usize) -> String {
        let mut out = String::new();
        self.render_line(&mut out, 0, max_depth);
        out
    }

    fn render_line(&self, out: &mut String, depth: usize, max_depth: usize) {
        let indent = "  ".repeat(depth);
        let _ = writeln!(
            out,
            "{indent}{}  hours {}..{}  units {}",
            self.name, self.start_hour, self.end_hour, self.units
        );
        if self.children.is_empty() {
            return;
        }
        if depth == max_depth {
            let elided: usize = self.children.iter().map(Span::len).sum();
            let _ = writeln!(out, "{indent}  … ({elided} spans elided)");
            return;
        }
        for child in &self.children {
            child.render_line(out, depth + 1, max_depth);
        }
    }
}

/// Escape a string for a JSON string literal (control characters,
/// quotes, backslashes).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse one serialized span line into `(depth, childless span)`.
fn parse_jsonl_line(line: &str) -> Result<(usize, Span), String> {
    let body = line
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: `{line}`"))?;
    let mut depth: Option<usize> = None;
    let mut name: Option<String> = None;
    let mut start_hour: Option<u64> = None;
    let mut end_hour: Option<u64> = None;
    let mut units: Option<u64> = None;
    let mut rest = body;
    while !rest.is_empty() {
        let after_key = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a key at `{rest}`"))?;
        let quote = after_key
            .find('"')
            .ok_or_else(|| format!("unterminated key at `{rest}`"))?;
        let key = &after_key[..quote];
        let after_colon = after_key[quote + 1..]
            .strip_prefix(':')
            .ok_or_else(|| format!("expected `:` after key `{key}`"))?;
        let consumed;
        if key == "name" {
            let (value, tail) = parse_json_string(after_colon)?;
            name = Some(value);
            consumed = tail;
        } else {
            let end = after_colon.find([',', '}']).unwrap_or(after_colon.len());
            let digits = &after_colon[..end];
            let value: u64 = digits
                .parse()
                .map_err(|_| format!("bad integer `{digits}` for key `{key}`"))?;
            match key {
                "depth" => depth = Some(value as usize),
                "start_hour" => start_hour = Some(value),
                "end_hour" => end_hour = Some(value),
                "units" => units = Some(value),
                other => return Err(format!("unknown key `{other}`")),
            }
            consumed = &after_colon[end..];
        }
        rest = consumed.strip_prefix(',').unwrap_or(consumed);
        if consumed.is_empty() || consumed == rest {
            break;
        }
    }
    let span = Span {
        name: name.ok_or("missing `name`")?,
        start_hour: start_hour.ok_or("missing `start_hour`")?,
        end_hour: end_hour.ok_or("missing `end_hour`")?,
        units: units.ok_or("missing `units`")?,
        children: Vec::new(),
    };
    Ok((depth.ok_or("missing `depth`")?, span))
}

/// Parse a JSON string literal at the head of `s`; return the decoded
/// value and the unconsumed tail.
fn parse_json_string(s: &str) -> Result<(String, &str), String> {
    let inner = s
        .strip_prefix('"')
        .ok_or_else(|| format!("expected a string at `{s}`"))?;
    let mut out = String::new();
    let mut chars = inner.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &inner[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((j, 'u')) => {
                    let hex = inner.get(j + 1..j + 5).ok_or("truncated \\u escape")?;
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                    out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                other => {
                    return Err(format!(
                        "bad escape `\\{}`",
                        other.map(|(_, c)| c).unwrap_or(' ')
                    ))
                }
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Span {
        let hourly = Span::aggregate(
            "scan.hourly",
            vec![
                Span::aggregate(
                    "ocsp.digicert.com",
                    vec![
                        Span::leaf("chunk 0", 0, 48, 100),
                        Span::leaf("chunk 1", 48, 96, 98),
                    ],
                ),
                Span::aggregate("ocsp.r3.lencr.org", vec![Span::leaf("chunk 0", 0, 96, 210)]),
            ],
        );
        let cdn = Span::leaf("scan.cdnlog", 24, 36, 5000);
        Span::aggregate("campaign", vec![hourly, cdn])
    }

    #[test]
    fn aggregate_envelopes_hours_and_sums_units() {
        let tree = sample_tree();
        assert_eq!(tree.start_hour, 0);
        assert_eq!(tree.end_hour, 96);
        assert_eq!(tree.units, 100 + 98 + 210 + 5000);
        assert_eq!(tree.len(), 8);
        assert!(!tree.is_empty());
        let empty = Span::aggregate("empty", vec![]);
        assert_eq!((empty.start_hour, empty.end_hour, empty.units), (0, 0, 0));
    }

    #[test]
    fn jsonl_round_trips_byte_exactly() {
        let tree = sample_tree();
        let jsonl = tree.to_jsonl();
        assert_eq!(jsonl.lines().count(), tree.len());
        let parsed = Span::parse_jsonl(&jsonl).expect("parse own output");
        assert_eq!(parsed, tree);
        assert_eq!(parsed.to_jsonl(), jsonl);
    }

    #[test]
    fn jsonl_lines_carry_depth_not_paths() {
        let jsonl = sample_tree().to_jsonl();
        let first = jsonl.lines().next().expect("root line");
        assert_eq!(
            first,
            "{\"depth\":0,\"name\":\"campaign\",\"start_hour\":0,\"end_hour\":96,\"units\":5408}"
        );
        // Slashes in span names (responder URLs) pass through verbatim.
        let tree = Span::aggregate(
            "campaign",
            vec![Span::leaf("http://ocsp.example/path", 0, 1, 1)],
        );
        let round = Span::parse_jsonl(&tree.to_jsonl()).expect("parse");
        assert_eq!(round.children[0].name, "http://ocsp.example/path");
    }

    #[test]
    fn awkward_names_escape_and_round_trip() {
        let tree = Span::aggregate(
            "with \"quotes\"",
            vec![Span::leaf("tab\there\nand newline \\ slash", 2, 3, 9)],
        );
        let jsonl = tree.to_jsonl();
        let parsed = Span::parse_jsonl(&jsonl).expect("parse");
        assert_eq!(parsed, tree);
        assert_eq!(parsed.to_jsonl(), jsonl);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Span::parse_jsonl("").is_err());
        assert!(Span::parse_jsonl("not json\n").is_err());
        // First line must be the root.
        let child_first =
            "{\"depth\":1,\"name\":\"x\",\"start_hour\":0,\"end_hour\":0,\"units\":0}\n";
        assert!(Span::parse_jsonl(child_first).is_err());
        // A depth jump (0 → 2) does not attach.
        let jump = "{\"depth\":0,\"name\":\"r\",\"start_hour\":0,\"end_hour\":0,\"units\":0}\n\
                    {\"depth\":2,\"name\":\"x\",\"start_hour\":0,\"end_hour\":0,\"units\":0}\n";
        assert!(Span::parse_jsonl(jump).is_err());
        // Two roots.
        let twice = "{\"depth\":0,\"name\":\"a\",\"start_hour\":0,\"end_hour\":0,\"units\":0}\n\
                     {\"depth\":0,\"name\":\"b\",\"start_hour\":0,\"end_hour\":0,\"units\":0}\n";
        assert!(Span::parse_jsonl(twice).is_err());
        // Missing field.
        assert!(
            Span::parse_jsonl("{\"depth\":0,\"name\":\"a\",\"start_hour\":0,\"units\":0}\n")
                .is_err()
        );
    }

    #[test]
    fn ascii_render_honors_depth_limit_and_elides() {
        let tree = sample_tree();
        let full = tree.render_ascii(usize::MAX);
        assert_eq!(full.lines().count(), tree.len());
        assert!(full.starts_with("campaign  hours 0..96  units 5408\n"));
        assert!(full.contains("\n  scan.hourly  hours 0..96  units 408\n"));
        assert!(full.contains("\n    ocsp.digicert.com  hours 0..96  units 198\n"));
        assert!(full.contains("\n      chunk 0  hours 0..48  units 100\n"));

        let shallow = tree.render_ascii(1);
        assert!(shallow.contains("scan.hourly"));
        assert!(!shallow.contains("chunk 0"));
        assert!(shallow.contains("… (5 spans elided)"));

        let root_only = tree.render_ascii(0);
        assert_eq!(root_only.lines().count(), 2);
        assert!(root_only.contains("… (7 spans elided)"));
    }
}
