//! A small, strict DER (Distinguished Encoding Rules) library.
//!
//! This crate implements the subset of ASN.1/X.690 needed to encode and
//! decode X.509 certificates, CRLs, and OCSP messages for the OCSP
//! Must-Staple readiness study. It follows the smoltcp wire-format idiom:
//!
//! * **parse/emit symmetry** — everything that can be written with
//!   [`Encoder`] can be read back with [`Decoder`], and round-trips are
//!   checked by property tests;
//! * **malformed input is data, not a bug** — decoding never panics; all
//!   failures are reported through the typed [`Error`] enum. This matters
//!   because one of the study's measured error classes is *malformed OCSP
//!   responses* (empty bodies, the literal string `"0"`, JavaScript pages),
//!   and the client code paths that classify those must be real.
//!
//! # Supported universal types
//!
//! BOOLEAN, INTEGER (arbitrary precision, big-endian two's complement),
//! BIT STRING, OCTET STRING, NULL, OBJECT IDENTIFIER, ENUMERATED,
//! UTF8String, PrintableString, IA5String, UTCTime, GeneralizedTime,
//! SEQUENCE (OF) and SET (OF), plus context-specific implicit and explicit
//! tagging.
//!
//! # Example
//!
//! ```
//! use mustaple_asn1::{Encoder, Decoder, Oid};
//!
//! let mut enc = Encoder::new();
//! enc.sequence(|enc| {
//!     enc.integer_i64(42);
//!     enc.oid(&Oid::OCSP_BASIC);
//!     enc.utf8_string("hello");
//! });
//! let der = enc.finish();
//!
//! let mut dec = Decoder::new(&der);
//! let mut seq = dec.sequence().unwrap();
//! assert_eq!(seq.integer_i64().unwrap(), 42);
//! assert_eq!(seq.oid().unwrap(), Oid::OCSP_BASIC);
//! assert_eq!(seq.utf8_string().unwrap(), "hello");
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod oid;
mod reader;
mod tag;
mod time;
mod value;
mod writer;

pub use error::Error;
pub use oid::Oid;
pub use reader::Decoder;
pub use tag::{Class, Tag};
pub use time::{Civil, Time};
pub use value::Value;
pub use writer::Encoder;

/// Result alias used throughout the crate.
pub type Result<T> = core::result::Result<T, Error>;
