//! A dynamic DER value tree.
//!
//! [`Value`] parses arbitrary DER into a tree without a schema. The
//! measurement pipeline uses it to *diagnose* responses that fail
//! schema-driven parsing ("is this even DER? what does it contain?") and
//! the property tests use it to fuzz round-trips.

use crate::{writer::push_length, Decoder, Error, Oid, Result, Tag, Time};

/// A schema-less DER value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// BOOLEAN.
    Boolean(bool),
    /// INTEGER, kept as raw content octets (may exceed i64).
    Integer(Vec<u8>),
    /// BIT STRING: (unused bit count, payload).
    BitString(u8, Vec<u8>),
    /// OCTET STRING.
    OctetString(Vec<u8>),
    /// NULL.
    Null,
    /// OBJECT IDENTIFIER.
    Oid(Oid),
    /// ENUMERATED, raw content octets.
    Enumerated(Vec<u8>),
    /// Any recognized character string (UTF8/Printable/IA5), with its tag.
    String(Tag, String),
    /// UTCTime or GeneralizedTime.
    Time(Time),
    /// SEQUENCE.
    Sequence(Vec<Value>),
    /// SET.
    Set(Vec<Value>),
    /// Context-specific constructed `[n]` containing nested values.
    ContextConstructed(u8, Vec<Value>),
    /// Context-specific primitive `[n]` with raw content.
    ContextPrimitive(u8, Vec<u8>),
    /// Anything else we do not interpret: (tag byte, raw content).
    Unknown(u8, Vec<u8>),
}

impl Value {
    /// Parse a single DER value (the input must contain exactly one TLV).
    pub fn parse(input: &[u8]) -> Result<Value> {
        let mut dec = Decoder::new(input);
        let value = Self::parse_one(&mut dec, 0)?;
        dec.finish()?;
        Ok(value)
    }

    /// Parse a concatenated series of DER values.
    pub fn parse_all(input: &[u8]) -> Result<Vec<Value>> {
        let mut dec = Decoder::new(input);
        let mut out = Vec::new();
        while !dec.is_empty() {
            out.push(Self::parse_one(&mut dec, 0)?);
        }
        Ok(out)
    }

    fn parse_one(dec: &mut Decoder<'_>, depth: u8) -> Result<Value> {
        if depth > 24 {
            return Err(Error::DepthExceeded);
        }
        let tag = dec.peek_tag().ok_or(Error::Truncated)?;
        match tag {
            Tag::BOOLEAN => dec.boolean().map(Value::Boolean),
            Tag::INTEGER => {
                let (_, content) = dec.any()?;
                if content.is_empty() {
                    return Err(Error::NonCanonicalInteger);
                }
                Ok(Value::Integer(content.to_vec()))
            }
            Tag::ENUMERATED => {
                let (_, content) = dec.any()?;
                Ok(Value::Enumerated(content.to_vec()))
            }
            Tag::BIT_STRING => {
                let (_, content) = dec.any()?;
                let (&unused, rest) = content.split_first().ok_or(Error::InvalidBitString)?;
                if unused > 7 {
                    return Err(Error::InvalidBitString);
                }
                Ok(Value::BitString(unused, rest.to_vec()))
            }
            Tag::OCTET_STRING => dec.octet_string().map(|b| Value::OctetString(b.to_vec())),
            Tag::NULL => dec.null().map(|_| Value::Null),
            Tag::OID => dec.oid().map(Value::Oid),
            Tag::UTF8_STRING | Tag::PRINTABLE_STRING | Tag::IA5_STRING => {
                let s = dec.string()?;
                Ok(Value::String(tag, s.to_string()))
            }
            Tag::UTC_TIME | Tag::GENERALIZED_TIME => dec.x509_time().map(Value::Time),
            Tag::SEQUENCE | Tag::SET => {
                let (_, content) = dec.any()?;
                let mut inner = Decoder::new(content);
                let mut items = Vec::new();
                while !inner.is_empty() {
                    items.push(Self::parse_one(&mut inner, depth + 1)?);
                }
                if tag == Tag::SEQUENCE {
                    Ok(Value::Sequence(items))
                } else {
                    Ok(Value::Set(items))
                }
            }
            _ if tag.class() == crate::Class::Context && tag.is_constructed() => {
                let n = tag.number();
                let (_, content) = dec.any()?;
                let mut inner = Decoder::new(content);
                let mut items = Vec::new();
                while !inner.is_empty() {
                    items.push(Self::parse_one(&mut inner, depth + 1)?);
                }
                Ok(Value::ContextConstructed(n, items))
            }
            _ if tag.class() == crate::Class::Context => {
                let n = tag.number();
                let (_, content) = dec.any()?;
                Ok(Value::ContextPrimitive(n, content.to_vec()))
            }
            _ => {
                let (tag, content) = dec.any()?;
                Ok(Value::Unknown(tag.0, content.to_vec()))
            }
        }
    }

    /// Re-encode this value to DER.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        fn tlv(out: &mut Vec<u8>, tag: u8, content: &[u8]) {
            out.push(tag);
            push_length(out, content.len());
            out.extend_from_slice(content);
        }
        match self {
            Value::Boolean(b) => tlv(out, Tag::BOOLEAN.0, &[if *b { 0xff } else { 0x00 }]),
            Value::Integer(content) => tlv(out, Tag::INTEGER.0, content),
            Value::Enumerated(content) => tlv(out, Tag::ENUMERATED.0, content),
            Value::BitString(unused, payload) => {
                let mut content = Vec::with_capacity(payload.len() + 1);
                content.push(*unused);
                content.extend_from_slice(payload);
                tlv(out, Tag::BIT_STRING.0, &content);
            }
            Value::OctetString(b) => tlv(out, Tag::OCTET_STRING.0, b),
            Value::Null => tlv(out, Tag::NULL.0, &[]),
            Value::Oid(oid) => tlv(out, Tag::OID.0, &oid.to_der_content()),
            Value::String(tag, s) => tlv(out, tag.0, s.as_bytes()),
            Value::Time(t) => {
                // Use the same RFC 5280 CHOICE rule as the encoder.
                match t.to_utc_time() {
                    Ok(s) => tlv(out, Tag::UTC_TIME.0, s.as_bytes()),
                    Err(_) => tlv(out, Tag::GENERALIZED_TIME.0, t.to_generalized().as_bytes()),
                }
            }
            Value::Sequence(items) | Value::Set(items) => {
                let tag = if matches!(self, Value::Sequence(_)) {
                    Tag::SEQUENCE
                } else {
                    Tag::SET
                };
                let mut content = Vec::new();
                for item in items {
                    item.encode_into(&mut content);
                }
                tlv(out, tag.0, &content);
            }
            Value::ContextConstructed(n, items) => {
                let mut content = Vec::new();
                for item in items {
                    item.encode_into(&mut content);
                }
                tlv(out, Tag::context(*n).0, &content);
            }
            Value::ContextPrimitive(n, content) => tlv(out, Tag::context_primitive(*n).0, content),
            Value::Unknown(tag, content) => tlv(out, *tag, content),
        }
    }

    /// A terse human-readable shape description, e.g.
    /// `SEQ(INT, OID, SEQ(OCTETS))` — handy in measurement logs.
    pub fn shape(&self) -> String {
        match self {
            Value::Boolean(_) => "BOOL".into(),
            Value::Integer(_) => "INT".into(),
            Value::Enumerated(_) => "ENUM".into(),
            Value::BitString(..) => "BITS".into(),
            Value::OctetString(_) => "OCTETS".into(),
            Value::Null => "NULL".into(),
            Value::Oid(_) => "OID".into(),
            Value::String(..) => "STR".into(),
            Value::Time(_) => "TIME".into(),
            Value::Sequence(items) => {
                format!(
                    "SEQ({})",
                    items
                        .iter()
                        .map(Value::shape)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            Value::Set(items) => {
                format!(
                    "SET({})",
                    items
                        .iter()
                        .map(Value::shape)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            Value::ContextConstructed(n, items) => format!(
                "[{n}]({})",
                items
                    .iter()
                    .map(Value::shape)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Value::ContextPrimitive(n, _) => format!("[{n}]prim"),
            Value::Unknown(tag, _) => format!("?{tag:#04x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encoder;

    #[test]
    fn parses_a_mixed_structure() {
        let mut e = Encoder::new();
        e.sequence(|e| {
            e.integer_i64(5);
            e.oid(&Oid::TLS_FEATURE);
            e.explicit(0, |e| e.boolean(true));
        });
        let der = e.finish();
        let v = Value::parse(&der).unwrap();
        assert_eq!(v.shape(), "SEQ(INT, OID, [0](BOOL))");
    }

    #[test]
    fn round_trips_preserve_bytes() {
        let mut e = Encoder::new();
        e.sequence(|e| {
            e.octet_string(b"abc");
            e.set(|e| {
                e.utf8_string("x");
                e.null();
            });
            e.bit_string(&[0xde, 0xad]);
        });
        let der = e.finish();
        let v = Value::parse(&der).unwrap();
        assert_eq!(v.encode(), der);
    }

    #[test]
    fn rejects_the_paper_observed_garbage() {
        // The study observed responders returning the body "0", empty
        // bodies, and JavaScript pages. None of these are DER.
        assert!(Value::parse(b"0").is_err()); // 0x30 = SEQUENCE tag, then truncated
        assert!(Value::parse(b"").is_err());
        assert!(Value::parse(b"<script>alert(1)</script>").is_err());
    }

    #[test]
    fn parse_all_reads_concatenated_values() {
        let mut e = Encoder::new();
        e.integer_i64(1);
        e.integer_i64(2);
        let der = e.finish();
        let values = Value::parse_all(&der).unwrap();
        assert_eq!(values.len(), 2);
    }
}
