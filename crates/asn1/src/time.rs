//! Calendar time for DER `UTCTime`/`GeneralizedTime`.
//!
//! [`Time`] is a thin wrapper over *seconds since the Unix epoch* (UTC,
//! i.e. Zulu — RFC 6960 requires all OCSP times be expressed in GMT).
//! Civil-date conversion uses Howard Hinnant's `days_from_civil`
//! algorithms, valid over the entire simulated range.
//!
//! The whole study runs on simulated time, so this type is also the base
//! clock unit of every other crate: there is exactly one notion of "now"
//! in the system and it is a `Time`.

use crate::{Error, Result};
use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A UTC timestamp with one-second resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

/// A broken-down civil date/time (always UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Civil {
    /// Four-digit year.
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
    /// Hour, 0–23.
    pub hour: u8,
    /// Minute, 0–59.
    pub minute: u8,
    /// Second, 0–59 (no leap seconds in the simulation).
    pub second: u8,
}

impl Time {
    /// The Unix epoch, 1970-01-01T00:00:00Z.
    pub const UNIX_EPOCH: Time = Time(0);

    /// Construct from raw seconds since the Unix epoch.
    pub const fn from_unix(secs: i64) -> Time {
        Time(secs)
    }

    /// Seconds since the Unix epoch.
    pub const fn unix(self) -> i64 {
        self.0
    }

    /// Construct from a civil UTC date/time.
    ///
    /// # Panics
    ///
    /// Panics if the civil fields do not denote a real calendar moment;
    /// use [`Time::try_from_civil`] for untrusted input.
    pub fn from_civil(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Time {
        Time::try_from_civil(Civil {
            year,
            month,
            day,
            hour,
            minute,
            second,
        })
        .expect("invalid civil date")
    }

    /// Construct from a civil UTC date/time, failing on impossible dates.
    pub fn try_from_civil(c: Civil) -> Result<Time> {
        if c.month < 1 || c.month > 12 || c.day < 1 || c.hour > 23 || c.minute > 59 || c.second > 59
        {
            return Err(Error::InvalidTime);
        }
        if c.day > days_in_month(c.year, c.month) {
            return Err(Error::InvalidTime);
        }
        let days = days_from_civil(c.year, c.month, c.day);
        Ok(Time(
            days * 86_400
                + i64::from(c.hour) * 3_600
                + i64::from(c.minute) * 60
                + i64::from(c.second),
        ))
    }

    /// Break this time into civil UTC components.
    pub fn civil(self) -> Civil {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400);
        let (year, month, day) = civil_from_days(days);
        Civil {
            year,
            month,
            day,
            hour: (secs / 3_600) as u8,
            minute: (secs % 3_600 / 60) as u8,
            second: (secs % 60) as u8,
        }
    }

    /// Render as DER `GeneralizedTime` content (`YYYYMMDDHHMMSSZ`).
    pub fn to_generalized(self) -> String {
        let c = self.civil();
        format!(
            "{:04}{:02}{:02}{:02}{:02}{:02}Z",
            c.year, c.month, c.day, c.hour, c.minute, c.second
        )
    }

    /// Render as DER `UTCTime` content (`YYMMDDHHMMSSZ`); only valid for
    /// years 1950–2049 per RFC 5280's interpretation rule.
    pub fn to_utc_time(self) -> Result<String> {
        let c = self.civil();
        if !(1950..2050).contains(&c.year) {
            return Err(Error::InvalidTime);
        }
        Ok(format!(
            "{:02}{:02}{:02}{:02}{:02}{:02}Z",
            c.year % 100,
            c.month,
            c.day,
            c.hour,
            c.minute,
            c.second
        ))
    }

    /// Parse DER `GeneralizedTime` content (`YYYYMMDDHHMMSSZ`).
    pub fn parse_generalized(s: &str) -> Result<Time> {
        let b = s.as_bytes();
        if b.len() != 15 || b[14] != b'Z' {
            return Err(Error::InvalidTime);
        }
        let year = parse_digits(&b[0..4])? as i32;
        Time::try_from_civil(Civil {
            year,
            month: parse_digits(&b[4..6])? as u8,
            day: parse_digits(&b[6..8])? as u8,
            hour: parse_digits(&b[8..10])? as u8,
            minute: parse_digits(&b[10..12])? as u8,
            second: parse_digits(&b[12..14])? as u8,
        })
    }

    /// Parse DER `UTCTime` content (`YYMMDDHHMMSSZ`). Years `< 50` map to
    /// 20xx, years `>= 50` map to 19xx (RFC 5280 §4.1.2.5.1).
    pub fn parse_utc_time(s: &str) -> Result<Time> {
        let b = s.as_bytes();
        if b.len() != 13 || b[12] != b'Z' {
            return Err(Error::InvalidTime);
        }
        let yy = parse_digits(&b[0..2])? as i32;
        let year = if yy < 50 { 2000 + yy } else { 1900 + yy };
        Time::try_from_civil(Civil {
            year,
            month: parse_digits(&b[2..4])? as u8,
            day: parse_digits(&b[4..6])? as u8,
            hour: parse_digits(&b[6..8])? as u8,
            minute: parse_digits(&b[8..10])? as u8,
            second: parse_digits(&b[10..12])? as u8,
        })
    }

    /// Saturating subtraction producing a duration in seconds.
    pub fn seconds_since(self, earlier: Time) -> i64 {
        self.0 - earlier.0
    }
}

fn parse_digits(b: &[u8]) -> Result<u32> {
    let mut value = 0u32;
    for &d in b {
        if !d.is_ascii_digit() {
            return Err(Error::InvalidTime);
        }
        value = value * 10 + u32::from(d - b'0');
    }
    Ok(value)
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant, `days_from_civil`).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (Hinnant, `civil_from_days`).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u8, d as u8)
}

impl Add<i64> for Time {
    type Output = Time;
    /// Advance by a number of seconds.
    fn add(self, secs: i64) -> Time {
        Time(self.0 + secs)
    }
}

impl AddAssign<i64> for Time {
    fn add_assign(&mut self, secs: i64) {
        self.0 += secs;
    }
}

impl Sub<i64> for Time {
    type Output = Time;
    /// Rewind by a number of seconds.
    fn sub(self, secs: i64) -> Time {
        Time(self.0 - secs)
    }
}

impl SubAssign<i64> for Time {
    fn sub_assign(&mut self, secs: i64) {
        self.0 -= secs;
    }
}

impl Sub<Time> for Time {
    type Output = i64;
    /// Difference in seconds.
    fn sub(self, other: Time) -> i64 {
        self.0 - other.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.civil();
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            c.year, c.month, c.day, c.hour, c.minute, c.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        let c = Time::UNIX_EPOCH.civil();
        assert_eq!((c.year, c.month, c.day, c.hour), (1970, 1, 1, 0));
    }

    #[test]
    fn known_timestamp() {
        // 2018-04-25T00:00:00Z == 1524614400 (start of the paper's Hourly scan)
        let t = Time::from_civil(2018, 4, 25, 0, 0, 0);
        assert_eq!(t.unix(), 1_524_614_400);
        assert_eq!(t.to_string(), "2018-04-25T00:00:00Z");
    }

    #[test]
    fn generalized_round_trip() {
        let t = Time::from_civil(2018, 9, 4, 23, 59, 59);
        let s = t.to_generalized();
        assert_eq!(s, "20180904235959Z");
        assert_eq!(Time::parse_generalized(&s).unwrap(), t);
    }

    #[test]
    fn utc_time_round_trip_and_windowing() {
        let t = Time::from_civil(2018, 5, 1, 12, 0, 0);
        let s = t.to_utc_time().unwrap();
        assert_eq!(s, "180501120000Z");
        assert_eq!(Time::parse_utc_time(&s).unwrap(), t);
        // 49 maps to 2049, 50 maps to 1950.
        assert_eq!(
            Time::parse_utc_time("490101000000Z").unwrap().civil().year,
            2049
        );
        assert_eq!(
            Time::parse_utc_time("500101000000Z").unwrap().civil().year,
            1950
        );
    }

    #[test]
    fn leap_years() {
        assert!(Time::try_from_civil(Civil {
            year: 2016,
            month: 2,
            day: 29,
            hour: 0,
            minute: 0,
            second: 0
        })
        .is_ok());
        assert!(Time::try_from_civil(Civil {
            year: 2018,
            month: 2,
            day: 29,
            hour: 0,
            minute: 0,
            second: 0
        })
        .is_err());
        // 1900 was not a leap year; 2000 was.
        assert!(!is_leap(1900));
        assert!(is_leap(2000));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Time::parse_generalized("not a time at all").is_err());
        assert!(Time::parse_generalized("2018130100000Z").is_err());
        assert!(Time::parse_utc_time("18040100000").is_err());
        assert!(Time::parse_utc_time("1804010000AAZ").is_err());
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_civil(2018, 4, 25, 0, 0, 0);
        assert_eq!((t + 3_600) - t, 3_600);
        assert_eq!((t - 86_400).civil().day, 24);
        let mut u = t;
        u += 60;
        u -= 30;
        assert_eq!(u - t, 30);
    }

    #[test]
    fn civil_round_trip_sweep() {
        // Sweep a few thousand days around the study period.
        let start = Time::from_civil(2010, 1, 1, 0, 0, 0);
        for day in 0..5_000 {
            let t = start + day * 86_400 + 12 * 3_600;
            let c = t.civil();
            let back = Time::try_from_civil(c).unwrap();
            assert_eq!(back, t, "day offset {day}");
        }
    }
}
