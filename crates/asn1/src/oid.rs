//! OBJECT IDENTIFIER values and the well-known OIDs used by the study.

use crate::{Error, Result};
use core::fmt;

/// Arc storage: well-known OIDs borrow a static slice (so they can be
/// `const`), decoded OIDs own their arcs.
#[derive(Clone)]
enum Arcs {
    Static(&'static [u64]),
    Owned(Vec<u64>),
}

/// An ASN.1 OBJECT IDENTIFIER, stored as its component arcs.
///
/// The PKI only needs a handful of OIDs, so an arc list (rather than the
/// packed DER bytes) keeps comparisons and debugging pleasant.
#[derive(Clone)]
pub struct Oid {
    arcs: Arcs,
}

impl PartialEq for Oid {
    fn eq(&self, other: &Self) -> bool {
        self.arcs() == other.arcs()
    }
}
impl Eq for Oid {}

impl PartialOrd for Oid {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Oid {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.arcs().cmp(other.arcs())
    }
}
impl core::hash::Hash for Oid {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.arcs().hash(state)
    }
}

impl Oid {
    // --- Well-known OIDs ---------------------------------------------------

    /// `1.3.6.1.5.5.7.1.24` — the TLS Feature (OCSP Must-Staple) extension.
    /// This is *the* OID the paper studies (its footnote 5).
    pub const TLS_FEATURE: Oid = Oid::from_static(&[1, 3, 6, 1, 5, 5, 7, 1, 24]);
    /// `1.3.6.1.5.5.7.1.1` — Authority Information Access.
    pub const AUTHORITY_INFO_ACCESS: Oid = Oid::from_static(&[1, 3, 6, 1, 5, 5, 7, 1, 1]);
    /// `1.3.6.1.5.5.7.48.1` — the `id-ad-ocsp` access method inside AIA.
    pub const AD_OCSP: Oid = Oid::from_static(&[1, 3, 6, 1, 5, 5, 7, 48, 1]);
    /// `1.3.6.1.5.5.7.48.2` — the `id-ad-caIssuers` access method inside AIA.
    pub const AD_CA_ISSUERS: Oid = Oid::from_static(&[1, 3, 6, 1, 5, 5, 7, 48, 2]);
    /// `2.5.29.31` — CRL Distribution Points.
    pub const CRL_DISTRIBUTION_POINTS: Oid = Oid::from_static(&[2, 5, 29, 31]);
    /// `2.5.29.19` — Basic Constraints.
    pub const BASIC_CONSTRAINTS: Oid = Oid::from_static(&[2, 5, 29, 19]);
    /// `2.5.29.15` — Key Usage.
    pub const KEY_USAGE: Oid = Oid::from_static(&[2, 5, 29, 15]);
    /// `2.5.29.37` — Extended Key Usage.
    pub const EXT_KEY_USAGE: Oid = Oid::from_static(&[2, 5, 29, 37]);
    /// `1.3.6.1.5.5.7.3.9` — `id-kp-OCSPSigning` (delegated OCSP signing).
    pub const KP_OCSP_SIGNING: Oid = Oid::from_static(&[1, 3, 6, 1, 5, 5, 7, 3, 9]);
    /// `2.5.29.17` — Subject Alternative Name.
    pub const SUBJECT_ALT_NAME: Oid = Oid::from_static(&[2, 5, 29, 17]);
    /// `2.5.29.21` — CRL entry Reason Code.
    pub const CRL_REASON: Oid = Oid::from_static(&[2, 5, 29, 21]);
    /// `2.5.29.24` — CRL entry Invalidity Date.
    pub const INVALIDITY_DATE: Oid = Oid::from_static(&[2, 5, 29, 24]);
    /// `2.5.4.3` — X.520 `commonName` attribute.
    pub const COMMON_NAME: Oid = Oid::from_static(&[2, 5, 4, 3]);
    /// `2.5.4.10` — X.520 `organizationName` attribute.
    pub const ORGANIZATION: Oid = Oid::from_static(&[2, 5, 4, 10]);
    /// `2.5.4.6` — X.520 `countryName` attribute.
    pub const COUNTRY: Oid = Oid::from_static(&[2, 5, 4, 6]);
    /// `1.3.6.1.5.5.7.48.1.1` — `id-pkix-ocsp-basic` (the basic OCSP
    /// response type).
    pub const OCSP_BASIC: Oid = Oid::from_static(&[1, 3, 6, 1, 5, 5, 7, 48, 1, 1]);
    /// `1.3.6.1.5.5.7.48.1.2` — `id-pkix-ocsp-nonce`.
    pub const OCSP_NONCE: Oid = Oid::from_static(&[1, 3, 6, 1, 5, 5, 7, 48, 1, 2]);
    /// The study's simulated signature algorithm, "simRSA with SHA-256".
    /// A dedicated arc under the private enterprise space so the toy
    /// algorithm can never be mistaken for real `sha256WithRSAEncryption`.
    pub const SIM_RSA_SHA256: Oid = Oid::from_static(&[1, 3, 6, 1, 4, 1, 99999, 1, 1]);
    /// `2.16.840.1.101.3.4.2.1` — SHA-256 (used inside OCSP CertID).
    pub const SHA256: Oid = Oid::from_static(&[2, 16, 840, 1, 101, 3, 4, 2, 1]);

    /// Create an OID borrowing a static arc slice (usable in `const`).
    pub const fn from_static(arcs: &'static [u64]) -> Oid {
        Oid {
            arcs: Arcs::Static(arcs),
        }
    }

    /// Create an OID from its arcs.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two arcs are given or the first two violate
    /// X.660 (first ≤ 2; second ≤ 39 when first < 2).
    pub fn new(arcs: &[u64]) -> Oid {
        assert!(arcs.len() >= 2, "an OID needs at least two arcs");
        assert!(arcs[0] <= 2, "first arc must be 0, 1, or 2");
        if arcs[0] < 2 {
            assert!(arcs[1] <= 39, "second arc must be <= 39 when first arc < 2");
        }
        Oid {
            arcs: Arcs::Owned(arcs.to_vec()),
        }
    }

    /// The component arcs.
    pub fn arcs(&self) -> &[u64] {
        match &self.arcs {
            Arcs::Static(arcs) => arcs,
            Arcs::Owned(arcs) => arcs,
        }
    }

    /// Encode the OID content octets (without tag/length).
    pub fn to_der_content(&self) -> Vec<u8> {
        let arcs = self.arcs();
        let mut out = Vec::with_capacity(arcs.len() + 1);
        let first = arcs[0] * 40 + arcs[1];
        push_base128(&mut out, first);
        for &arc in &arcs[2..] {
            push_base128(&mut out, arc);
        }
        out
    }

    /// Decode an OID from content octets (without tag/length).
    pub fn from_der_content(bytes: &[u8]) -> Result<Oid> {
        if bytes.is_empty() {
            return Err(Error::InvalidOid);
        }
        let mut arcs = Vec::new();
        let mut iter = bytes.iter().copied().peekable();
        let mut first = true;
        while iter.peek().is_some() {
            let mut value: u64 = 0;
            loop {
                let byte = iter.next().ok_or(Error::InvalidOid)?;
                if value == 0 && byte == 0x80 {
                    // Leading 0x80 pad bytes are forbidden in DER.
                    return Err(Error::InvalidOid);
                }
                value = value.checked_mul(128).ok_or(Error::InvalidOid)?;
                value += u64::from(byte & 0x7f);
                if byte & 0x80 == 0 {
                    break;
                }
                if iter.peek().is_none() {
                    return Err(Error::InvalidOid);
                }
            }
            if first {
                let (a, b) = if value < 40 {
                    (0, value)
                } else if value < 80 {
                    (1, value - 40)
                } else {
                    (2, value - 80)
                };
                arcs.push(a);
                arcs.push(b);
                first = false;
            } else {
                arcs.push(value);
            }
        }
        Ok(Oid {
            arcs: Arcs::Owned(arcs),
        })
    }
}

fn push_base128(out: &mut Vec<u8>, mut value: u64) {
    let mut tmp = [0u8; 10];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            break;
        }
    }
    let last = tmp.len() - 1;
    for (j, byte) in tmp[i..].iter().enumerate() {
        let raw = if i + j == last { *byte } else { *byte | 0x80 };
        out.push(raw);
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, arc) in self.arcs().iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{arc}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn must_staple_oid_renders() {
        assert_eq!(Oid::TLS_FEATURE.to_string(), "1.3.6.1.5.5.7.1.24");
    }

    #[test]
    fn round_trip_well_known() {
        for oid in [
            Oid::TLS_FEATURE,
            Oid::AUTHORITY_INFO_ACCESS,
            Oid::AD_OCSP,
            Oid::SHA256,
            Oid::OCSP_BASIC,
            Oid::COMMON_NAME,
            Oid::SIM_RSA_SHA256,
        ] {
            let der = oid.to_der_content();
            assert_eq!(Oid::from_der_content(&der).unwrap(), oid);
        }
    }

    #[test]
    fn static_and_owned_compare_equal() {
        let owned = Oid::new(&[1, 3, 6, 1, 5, 5, 7, 1, 24]);
        assert_eq!(owned, Oid::TLS_FEATURE);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Oid::from_der_content(&[]), Err(Error::InvalidOid));
    }

    #[test]
    fn rejects_truncated_arc() {
        // 0x88 has the continuation bit set with nothing following.
        assert_eq!(Oid::from_der_content(&[0x2b, 0x88]), Err(Error::InvalidOid));
    }

    #[test]
    fn rejects_leading_pad() {
        assert_eq!(
            Oid::from_der_content(&[0x2b, 0x80, 0x01]),
            Err(Error::InvalidOid)
        );
    }

    #[test]
    fn sha256_known_bytes() {
        // 2.16.840.1.101.3.4.2.1 => 60 86 48 01 65 03 04 02 01
        assert_eq!(
            Oid::SHA256.to_der_content(),
            vec![0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01]
        );
    }

    #[test]
    fn first_arc_two_allows_large_second() {
        let oid = Oid::new(&[2, 999, 1]);
        let der = oid.to_der_content();
        assert_eq!(Oid::from_der_content(&der).unwrap(), oid);
    }
}
