//! DER encoding.
//!
//! [`Encoder`] appends TLVs to an internal buffer. Constructed types take a
//! closure that fills the content directly into the same buffer; the
//! encoder then computes the definite length (DER forbids the indefinite
//! form) and inserts the header where the value started. No intermediate
//! `Vec` is allocated per nesting level, and the insertion shifts at most
//! the constructed value's own content by a ≤ 5-byte header.

use crate::{Oid, Result, Tag, Time};

/// A DER encoder.
///
/// All methods append exactly one TLV (or, for [`Encoder::raw`], caller-
/// provided bytes). The final buffer is obtained with [`Encoder::finish`].
#[derive(Debug, Default)]
pub struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    /// Create an empty encoder.
    pub fn new() -> Encoder {
        Encoder { out: Vec::new() }
    }

    /// Consume the encoder and return the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Append pre-encoded DER (or arbitrary bytes — used by the fault
    /// injector to produce deliberately malformed messages).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// Append one TLV with the given tag and content octets.
    pub fn tlv(&mut self, tag: Tag, content: &[u8]) {
        self.out.push(tag.0);
        push_length(&mut self.out, content.len());
        self.out.extend_from_slice(content);
    }

    /// Append a constructed TLV whose content is produced by `f`.
    ///
    /// The content is encoded in place — `f` writes directly into this
    /// encoder's buffer and the definite length is inserted afterwards —
    /// so arbitrarily deep nesting costs no intermediate allocations.
    pub fn constructed(&mut self, tag: Tag, f: impl FnOnce(&mut Encoder)) {
        self.out.push(tag.0);
        let len_pos = self.out.len();
        f(self);
        insert_length(&mut self.out, len_pos);
    }

    /// Append a SEQUENCE.
    pub fn sequence(&mut self, f: impl FnOnce(&mut Encoder)) {
        self.constructed(Tag::SEQUENCE, f);
    }

    /// Append a SET.
    pub fn set(&mut self, f: impl FnOnce(&mut Encoder)) {
        self.constructed(Tag::SET, f);
    }

    /// Append an EXPLICIT `[n]` wrapper around the content produced by `f`.
    pub fn explicit(&mut self, n: u8, f: impl FnOnce(&mut Encoder)) {
        self.constructed(Tag::context(n), f);
    }

    /// Append an IMPLICIT `[n]` primitive carrying raw content octets.
    pub fn implicit_primitive(&mut self, n: u8, content: &[u8]) {
        self.tlv(Tag::context_primitive(n), content);
    }

    /// Append an IMPLICIT `[n]` *constructed* value filled by `f`
    /// (an implicitly tagged SEQUENCE keeps its constructed bit).
    pub fn implicit_constructed(&mut self, n: u8, f: impl FnOnce(&mut Encoder)) {
        self.constructed(Tag::context(n), f);
    }

    /// Append a BOOLEAN (DER: TRUE is 0xFF).
    pub fn boolean(&mut self, value: bool) {
        self.tlv(Tag::BOOLEAN, &[if value { 0xff } else { 0x00 }]);
    }

    /// Append NULL.
    pub fn null(&mut self) {
        self.tlv(Tag::NULL, &[]);
    }

    /// Append an INTEGER from an `i64`.
    pub fn integer_i64(&mut self, value: i64) {
        let bytes = value.to_be_bytes();
        // Strip redundant sign-extension bytes, keeping at least one and
        // keeping the sign bit correct.
        let mut start = 0;
        while start < 7 {
            let cur = bytes[start];
            let next = bytes[start + 1];
            let redundant = (cur == 0x00 && next & 0x80 == 0) || (cur == 0xff && next & 0x80 != 0);
            if redundant {
                start += 1;
            } else {
                break;
            }
        }
        self.tlv(Tag::INTEGER, &bytes[start..]);
    }

    /// Append an INTEGER from unsigned big-endian magnitude bytes
    /// (certificate serial numbers, RSA moduli). A leading zero octet is
    /// inserted when the top bit is set so the value stays non-negative.
    pub fn integer_unsigned(&mut self, magnitude: &[u8]) {
        let mut trimmed = magnitude;
        while trimmed.len() > 1 && trimmed[0] == 0 {
            trimmed = &trimmed[1..];
        }
        if trimmed.is_empty() {
            self.tlv(Tag::INTEGER, &[0]);
            return;
        }
        if trimmed[0] & 0x80 != 0 {
            let mut content = Vec::with_capacity(trimmed.len() + 1);
            content.push(0);
            content.extend_from_slice(trimmed);
            self.tlv(Tag::INTEGER, &content);
        } else {
            self.tlv(Tag::INTEGER, trimmed);
        }
    }

    /// Append an ENUMERATED from an `i64`.
    pub fn enumerated(&mut self, value: i64) {
        let mut tmp = Encoder::new();
        tmp.integer_i64(value);
        // Same content, ENUMERATED tag.
        let mut bytes = tmp.finish();
        bytes[0] = Tag::ENUMERATED.0;
        self.out.extend_from_slice(&bytes);
    }

    /// Append an OBJECT IDENTIFIER.
    pub fn oid(&mut self, oid: &Oid) {
        self.tlv(Tag::OID, &oid.to_der_content());
    }

    /// Append an OCTET STRING.
    pub fn octet_string(&mut self, bytes: &[u8]) {
        self.tlv(Tag::OCTET_STRING, bytes);
    }

    /// Append an OCTET STRING whose content is nested DER produced by `f`
    /// (the standard way X.509 wraps extension payloads). Encoded in
    /// place, like [`Encoder::constructed`].
    pub fn octet_string_nested(&mut self, f: impl FnOnce(&mut Encoder)) {
        self.out.push(Tag::OCTET_STRING.0);
        let len_pos = self.out.len();
        f(self);
        insert_length(&mut self.out, len_pos);
    }

    /// Append a BIT STRING with zero unused bits.
    pub fn bit_string(&mut self, bytes: &[u8]) {
        let mut content = Vec::with_capacity(bytes.len() + 1);
        content.push(0);
        content.extend_from_slice(bytes);
        self.tlv(Tag::BIT_STRING, &content);
    }

    /// Append a UTF8String.
    pub fn utf8_string(&mut self, s: &str) {
        self.tlv(Tag::UTF8_STRING, s.as_bytes());
    }

    /// Append a PrintableString. The caller must only pass characters in
    /// the PrintableString repertoire; this is checked in debug builds.
    pub fn printable_string(&mut self, s: &str) {
        debug_assert!(
            s.bytes().all(is_printable_char),
            "not a PrintableString: {s:?}"
        );
        self.tlv(Tag::PRINTABLE_STRING, s.as_bytes());
    }

    /// Append an IA5String (ASCII — used for URIs and DNS names).
    pub fn ia5_string(&mut self, s: &str) {
        debug_assert!(s.is_ascii(), "not an IA5String: {s:?}");
        self.tlv(Tag::IA5_STRING, s.as_bytes());
    }

    /// Append a GeneralizedTime.
    pub fn generalized_time(&mut self, t: Time) {
        self.tlv(Tag::GENERALIZED_TIME, t.to_generalized().as_bytes());
    }

    /// Append a UTCTime (fails outside 1950–2049).
    pub fn utc_time(&mut self, t: Time) -> Result<()> {
        let s = t.to_utc_time()?;
        self.tlv(Tag::UTC_TIME, s.as_bytes());
        Ok(())
    }

    /// Append a time using the RFC 5280 rule: UTCTime through 2049,
    /// GeneralizedTime from 2050 on.
    pub fn x509_time(&mut self, t: Time) {
        match t.to_utc_time() {
            Ok(s) => self.tlv(Tag::UTC_TIME, s.as_bytes()),
            Err(_) => self.generalized_time(t),
        }
    }
}

/// True for bytes allowed in PrintableString.
fn is_printable_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b" '()+,-./:=?".contains(&b)
}

/// Insert the DER definite length of `out[len_pos..]` at `len_pos`,
/// shifting the already-encoded content right by the header size (at
/// most five bytes, so the memmove is cheap relative to the content).
fn insert_length(out: &mut Vec<u8>, len_pos: usize) {
    let len = out.len() - len_pos;
    if len < 0x80 {
        out.insert(len_pos, len as u8);
        return;
    }
    let bytes = (len as u64).to_be_bytes();
    let skip = bytes.iter().take_while(|&&b| b == 0).count();
    let tail = &bytes[skip..];
    let mut header = Vec::with_capacity(1 + tail.len());
    header.push(0x80 | tail.len() as u8);
    header.extend_from_slice(tail);
    out.splice(len_pos..len_pos, header);
}

/// Append a DER definite length.
pub(crate) fn push_length(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = (len as u64).to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count();
        let tail = &bytes[skip..];
        out.push(0x80 | tail.len() as u8);
        out.extend_from_slice(tail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(f: impl FnOnce(&mut Encoder)) -> Vec<u8> {
        let mut e = Encoder::new();
        f(&mut e);
        e.finish()
    }

    #[test]
    fn short_and_long_lengths() {
        assert_eq!(
            enc(|e| e.octet_string(&[0xab; 3])),
            vec![0x04, 0x03, 0xab, 0xab, 0xab]
        );
        let der = enc(|e| e.octet_string(&[0u8; 200]));
        assert_eq!(&der[..3], &[0x04, 0x81, 200]);
        let der = enc(|e| e.octet_string(&[0u8; 300]));
        assert_eq!(&der[..4], &[0x04, 0x82, 0x01, 0x2c]);
    }

    #[test]
    fn integer_minimal_encodings() {
        assert_eq!(enc(|e| e.integer_i64(0)), vec![0x02, 0x01, 0x00]);
        assert_eq!(enc(|e| e.integer_i64(127)), vec![0x02, 0x01, 0x7f]);
        assert_eq!(enc(|e| e.integer_i64(128)), vec![0x02, 0x02, 0x00, 0x80]);
        assert_eq!(enc(|e| e.integer_i64(256)), vec![0x02, 0x02, 0x01, 0x00]);
        assert_eq!(enc(|e| e.integer_i64(-1)), vec![0x02, 0x01, 0xff]);
        assert_eq!(enc(|e| e.integer_i64(-128)), vec![0x02, 0x01, 0x80]);
        assert_eq!(enc(|e| e.integer_i64(-129)), vec![0x02, 0x02, 0xff, 0x7f]);
    }

    #[test]
    fn unsigned_integer_adds_sign_pad() {
        assert_eq!(
            enc(|e| e.integer_unsigned(&[0x80])),
            vec![0x02, 0x02, 0x00, 0x80]
        );
        assert_eq!(enc(|e| e.integer_unsigned(&[0x7f])), vec![0x02, 0x01, 0x7f]);
        // Leading zeros in the magnitude are trimmed first.
        assert_eq!(
            enc(|e| e.integer_unsigned(&[0x00, 0x00, 0x01])),
            vec![0x02, 0x01, 0x01]
        );
        assert_eq!(enc(|e| e.integer_unsigned(&[])), vec![0x02, 0x01, 0x00]);
    }

    #[test]
    fn boolean_and_null() {
        assert_eq!(enc(|e| e.boolean(true)), vec![0x01, 0x01, 0xff]);
        assert_eq!(enc(|e| e.boolean(false)), vec![0x01, 0x01, 0x00]);
        assert_eq!(enc(|e| e.null()), vec![0x05, 0x00]);
    }

    #[test]
    fn nested_sequence() {
        let der = enc(|e| {
            e.sequence(|e| {
                e.integer_i64(1);
                e.sequence(|e| e.boolean(true));
            })
        });
        assert_eq!(
            der,
            vec![0x30, 0x08, 0x02, 0x01, 0x01, 0x30, 0x03, 0x01, 0x01, 0xff]
        );
    }

    #[test]
    fn bit_string_prefixes_unused_count() {
        assert_eq!(enc(|e| e.bit_string(&[0xaa])), vec![0x03, 0x02, 0x00, 0xaa]);
    }

    #[test]
    fn explicit_wrapper() {
        let der = enc(|e| e.explicit(0, |e| e.integer_i64(5)));
        assert_eq!(der, vec![0xa0, 0x03, 0x02, 0x01, 0x05]);
    }

    #[test]
    fn enumerated_uses_enum_tag() {
        assert_eq!(enc(|e| e.enumerated(1)), vec![0x0a, 0x01, 0x01]);
    }
}
