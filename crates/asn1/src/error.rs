//! Typed decoding/encoding errors.

use core::fmt;

/// Everything that can go wrong while reading (or, rarely, writing) DER.
///
/// The variants are deliberately fine-grained: the measurement pipeline
/// classifies broken OCSP responses by *what kind* of damage they carry, so
/// the decoder must report more than "bad input".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended before a complete TLV could be read.
    Truncated,
    /// A tag byte was expected but a different one was found.
    UnexpectedTag {
        /// The tag the caller asked for.
        expected: u8,
        /// The tag actually present in the input.
        found: u8,
    },
    /// A length field is not valid DER (non-minimal, reserved form 0xFF,
    /// or longer than the library supports).
    InvalidLength,
    /// The declared length overruns the enclosing value or input buffer.
    LengthOverrun,
    /// An INTEGER used a non-minimal encoding (leading 0x00/0xFF padding).
    NonCanonicalInteger,
    /// A BOOLEAN carried a value other than 0x00 or 0xFF, or a wrong length.
    InvalidBoolean,
    /// An OBJECT IDENTIFIER was empty or had a truncated base-128 arc.
    InvalidOid,
    /// A BIT STRING declared more than 7 unused bits or was empty.
    InvalidBitString,
    /// A time value (UTCTime/GeneralizedTime) was syntactically invalid or
    /// denoted a non-existent calendar date.
    InvalidTime,
    /// A string type carried bytes invalid for its character set.
    InvalidString,
    /// A value was structurally valid DER but violated a constraint of the
    /// caller (e.g. an integer too large for the requested width).
    ValueOutOfRange,
    /// Trailing bytes remained after the caller finished reading a
    /// container that DER requires to be fully consumed.
    TrailingData,
    /// An element that the schema marks as required was absent.
    MissingField(&'static str),
    /// Recursion depth limit exceeded while parsing nested containers.
    DepthExceeded,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "input truncated mid-TLV"),
            Error::UnexpectedTag { expected, found } => {
                write!(
                    f,
                    "unexpected tag: expected {expected:#04x}, found {found:#04x}"
                )
            }
            Error::InvalidLength => write!(f, "invalid DER length encoding"),
            Error::LengthOverrun => write!(f, "declared length overruns buffer"),
            Error::NonCanonicalInteger => write!(f, "non-canonical INTEGER encoding"),
            Error::InvalidBoolean => write!(f, "invalid BOOLEAN encoding"),
            Error::InvalidOid => write!(f, "invalid OBJECT IDENTIFIER encoding"),
            Error::InvalidBitString => write!(f, "invalid BIT STRING encoding"),
            Error::InvalidTime => write!(f, "invalid time value"),
            Error::InvalidString => write!(f, "invalid character string"),
            Error::ValueOutOfRange => write!(f, "value out of range for requested type"),
            Error::TrailingData => write!(f, "trailing data after DER value"),
            Error::MissingField(name) => write!(f, "missing required field `{name}`"),
            Error::DepthExceeded => write!(f, "nesting depth limit exceeded"),
        }
    }
}

impl std::error::Error for Error {}
